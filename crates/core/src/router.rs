//! Adaptive per-instance backend routing.
//!
//! PR 1 made the sub-problem solver pluggable; until now every request still ran
//! whatever single [`SolverBackend`] its configuration was built with, even though the
//! four built-in backends occupy very different points on the size/latency/quality
//! trade-off (Held–Karp is optimal but exponential in the sub-problem size; NN+2-opt
//! is cheap but lossy; the Ising macro models the paper's hardware). This module
//! closes that gap: an [`AdaptiveRouter`] picks the backend **per instance**, from
//! measured profiles rather than configuration.
//!
//! The decision pipeline is
//!
//! ```text
//! instance ──▶ InstanceFeatures ──▶ BackendProfiler ──▶ RoutingDecision
//!              (city count,          (per-backend ×       (deadline-feasible,
//!               dispersion,           per-size-bucket      quality-first exploit
//!               cluster depth,        EWMA latency +       or ε-greedy explore)
//!               size bucket)          quality ratios)
//! ```
//!
//! * **Features** are deliberately cheap — one O(n) pass over the coordinates — so
//!   routing never costs a meaningful fraction of a solve.
//! * **Profiles** are online: every routed solve feeds its measured latency and its
//!   tour-cost **quality ratio** back into the profiler. Quality is measured against
//!   a *shadow reference*: the exact Held–Karp optimum for instances small enough to
//!   solve exactly ([`RouterConfig::shadow_exact_limit`]), and the best cost seen so
//!   far for that geometry (any backend) above it.
//! * **Decisions** obey a deadline-feasibility rule — a backend whose profiled p95
//!   latency for the instance's size bucket exceeds the remaining slack is never
//!   chosen while a feasible alternative exists — and an ε-greedy exploration arm
//!   keeps every profile cell fresh. All randomness comes from one seeded RNG, so a
//!   router replayed over the same decision sequence makes the same choices.
//!
//! The router is engaged by [`BackendChoice::Adaptive`](crate::BackendChoice) (both
//! in [`TaxiSolver::solve`](crate::TaxiSolver::solve) and in the dispatch service)
//! or explicitly through [`TaxiSolver::solve_routed`](crate::TaxiSolver::solve_routed).
//! A routed solve is **bit-identical** to solving with the chosen backend directly:
//! routing only selects the backend, it never alters the pipeline.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use taxi_baselines::exact::HELD_KARP_LIMIT;
use taxi_snap::{RecordReader, RecordWriter, SnapError};
use taxi_tsplib::fingerprint::{canonical_fingerprint_into, FingerprintScratch};
use taxi_tsplib::TspInstance;

use crate::backend::SolverBackend;

/// Number of instance-size buckets the profiler distinguishes.
const BUCKETS: usize = 8;

/// Upper (inclusive) city-count bound of every bucket except the open-ended last.
const BUCKET_BOUNDS: [usize; BUCKETS - 1] = [16, 32, 64, 128, 256, 512, 1024];

/// An instance-size bucket: profiles are kept per backend **and** per bucket, because
/// backend latency and quality scale very differently with instance size (what is
/// instant at 20 cities can be the slowest choice at 500).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SizeBucket(usize);

impl SizeBucket {
    /// Number of distinct buckets.
    pub const COUNT: usize = BUCKETS;

    /// The bucket holding instances with `cities` cities.
    ///
    /// # Example
    ///
    /// ```
    /// use taxi::router::SizeBucket;
    ///
    /// assert_eq!(SizeBucket::of(10), SizeBucket::of(16));
    /// assert_ne!(SizeBucket::of(16), SizeBucket::of(17));
    /// assert_eq!(SizeBucket::of(5000), SizeBucket::of(100_000));
    /// ```
    pub fn of(cities: usize) -> Self {
        let index = BUCKET_BOUNDS
            .iter()
            .position(|&bound| cities <= bound)
            .unwrap_or(BUCKETS - 1);
        Self(index)
    }

    /// The bucket's index (`0..COUNT`), usable for flat per-bucket tables.
    pub fn index(self) -> usize {
        self.0
    }

    /// Short stable label (used in benchmark output), e.g. `"<=64"` or `">1024"`.
    pub fn label(self) -> &'static str {
        const LABELS: [&str; BUCKETS] = [
            "<=16", "<=32", "<=64", "<=128", "<=256", "<=512", "<=1024", ">1024",
        ];
        LABELS[self.0]
    }
}

impl std::fmt::Display for SizeBucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Cheap per-instance features the router extracts before deciding (one O(n) pass;
/// no distance matrix, no clustering).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceFeatures {
    /// Number of cities.
    pub cities: usize,
    /// Spatial dispersion: RMS distance of the cities from their centroid, normalised
    /// by the bounding-box diagonal (`0.0` for degenerate/explicit-matrix instances,
    /// up to ~`0.5` for mass concentrated at the corners). Uniform scatter sits near
    /// `0.25`; tightly clustered blobs sit lower.
    pub dispersion: f64,
    /// Estimated depth of the cluster hierarchy the pipeline will build: the number
    /// of contraction levels until at most `cluster_capacity` entities remain.
    pub cluster_depth: usize,
    /// The profile bucket the instance falls into.
    pub bucket: SizeBucket,
}

impl InstanceFeatures {
    /// Extracts the features of `instance` under the given macro capacity
    /// (`TaxiConfig::max_cluster_size`).
    ///
    /// # Example
    ///
    /// ```
    /// use taxi::router::InstanceFeatures;
    /// use taxi_tsplib::generator::clustered_instance;
    ///
    /// let features = InstanceFeatures::extract(&clustered_instance("f", 90, 5, 1), 12);
    /// assert_eq!(features.cities, 90);
    /// assert_eq!(features.cluster_depth, 1); // 90 cities → 8 clusters ≤ one macro
    /// assert!(features.dispersion > 0.0 && features.dispersion < 0.5);
    /// ```
    pub fn extract(instance: &TspInstance, cluster_capacity: usize) -> Self {
        let cities = instance.dimension();
        let dispersion = instance
            .coordinates()
            .map(dispersion_of)
            .unwrap_or_default();
        let capacity = cluster_capacity.max(2);
        let mut depth = 0usize;
        let mut entities = cities;
        while entities > capacity {
            entities = entities.div_ceil(capacity);
            depth += 1;
        }
        Self {
            cities,
            dispersion,
            cluster_depth: depth,
            bucket: SizeBucket::of(cities),
        }
    }
}

/// RMS centroid distance over bounding-box diagonal (0 for fewer than two cities or a
/// degenerate box).
fn dispersion_of(coords: &[(f64, f64)]) -> f64 {
    if coords.len() < 2 {
        return 0.0;
    }
    let n = coords.len() as f64;
    let (sx, sy) = coords
        .iter()
        .fold((0.0, 0.0), |(sx, sy), &(x, y)| (sx + x, sy + y));
    let (cx, cy) = (sx / n, sy / n);
    let mut rms = 0.0;
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in coords {
        rms += (x - cx).powi(2) + (y - cy).powi(2);
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    let diagonal = ((max_x - min_x).powi(2) + (max_y - min_y).powi(2)).sqrt();
    if diagonal <= 0.0 {
        return 0.0;
    }
    (rms / n).sqrt() / diagonal
}

/// One profile cell's exponentially weighted statistics.
#[derive(Debug, Clone, Copy, Default)]
struct Cell {
    samples: u64,
    /// EWMA of the solve latency, in microseconds.
    latency_us: f64,
    /// EWMA of the squared latency deviation (µs²), for the p95 estimate.
    latency_var_us2: f64,
    quality_samples: u64,
    /// EWMA of the tour-cost quality ratio (cost / shadow reference, ≥ 1).
    quality: f64,
}

impl Cell {
    fn record(&mut self, alpha: f64, latency: Duration, quality: Option<f64>) {
        let us = latency.as_secs_f64() * 1e6;
        if self.samples == 0 {
            self.latency_us = us;
            self.latency_var_us2 = 0.0;
        } else {
            let dev = us - self.latency_us;
            // West's incremental EWMA variance: update the variance with the
            // pre-update mean's deviation, then move the mean.
            self.latency_var_us2 = (1.0 - alpha) * (self.latency_var_us2 + alpha * dev * dev);
            self.latency_us += alpha * dev;
        }
        self.samples += 1;
        if let Some(ratio) = quality {
            if self.quality_samples == 0 {
                self.quality = ratio;
            } else {
                self.quality += alpha * (ratio - self.quality);
            }
            self.quality_samples += 1;
        }
    }
}

/// A read-only copy of one profile cell, as consumed by routing decisions (and
/// exported into `BENCH_router.json`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BackendStats {
    /// Latency observations recorded into this cell.
    pub samples: u64,
    /// EWMA mean solve latency.
    pub mean_latency: Duration,
    /// Conservative p95 latency estimate (`mean + 2σ` from the EWMA variance — a
    /// normal-tail bound that deliberately over- rather than under-estimates, since
    /// the feasibility rule uses it to *exclude* backends).
    pub p95_latency: Duration,
    /// Quality observations recorded into this cell (≤ `samples`: a ratio needs a
    /// shadow reference, which the first observation of a fresh geometry seeds).
    pub quality_samples: u64,
    /// EWMA mean quality ratio (tour cost / shadow reference; 1.0 is reference
    /// quality, 1.05 is 5% worse).
    pub mean_quality: f64,
}

impl From<Cell> for BackendStats {
    fn from(cell: Cell) -> Self {
        let mean_us = cell.latency_us.max(0.0);
        let p95_us = mean_us + 2.0 * cell.latency_var_us2.max(0.0).sqrt();
        Self {
            samples: cell.samples,
            mean_latency: Duration::from_secs_f64(mean_us * 1e-6),
            p95_latency: Duration::from_secs_f64(p95_us * 1e-6),
            quality_samples: cell.quality_samples,
            mean_quality: cell.quality,
        }
    }
}

/// A shadow quality reference for one canonical geometry.
#[derive(Debug, Clone, Copy)]
struct Reference {
    cost: f64,
    /// Exact references (Held–Karp optimum) are final; best-seen references only
    /// ever decrease.
    exact: bool,
    /// Bitmask (by [`SolverBackend::index`]) of backends observed on this geometry.
    observed: u8,
    /// The backend that achieved `cost` (for exact references: that matched it).
    best_backend: Option<SolverBackend>,
}

/// Online per-backend, per-size-bucket latency and quality profiles.
///
/// Thread-safe: cells are individually locked, counters are atomic, and the shadow
/// reference table is one mutex-guarded map — every operation is O(1) short critical
/// sections, safe to call from every dispatch worker concurrently.
#[derive(Debug)]
pub struct BackendProfiler {
    alpha: f64,
    shadow_exact_limit: usize,
    reference_capacity: usize,
    cells: [[Mutex<Cell>; BUCKETS]; SolverBackend::ALL.len()],
    /// Canonical fingerprint → best-known cost for that geometry.
    references: Mutex<HashMap<u128, Reference>>,
    /// Reused canonicalisation scratch (fingerprints are computed per routed
    /// request, not per sub-problem, but there is no reason to allocate for them).
    fingerprint_scratch: Mutex<FingerprintScratch>,
    observations: AtomicU64,
}

impl BackendProfiler {
    fn new(alpha: f64, shadow_exact_limit: usize, reference_capacity: usize) -> Self {
        Self {
            alpha,
            shadow_exact_limit,
            reference_capacity,
            cells: std::array::from_fn(|_| std::array::from_fn(|_| Mutex::new(Cell::default()))),
            references: Mutex::new(HashMap::new()),
            fingerprint_scratch: Mutex::new(FingerprintScratch::new()),
            observations: AtomicU64::new(0),
        }
    }

    fn cell(&self, backend: SolverBackend, bucket: SizeBucket) -> &Mutex<Cell> {
        &self.cells[backend.index()][bucket.index()]
    }

    /// The instance's canonical-geometry key, via the shared reusable scratch.
    fn canonical_key(&self, instance: &TspInstance) -> u128 {
        canonical_fingerprint_into(instance, &mut lock_recovering(&self.fingerprint_scratch))
            .as_u128()
    }

    /// Total observations recorded.
    pub fn observations(&self) -> u64 {
        self.observations.load(Ordering::Relaxed)
    }

    /// The current statistics of one (backend, bucket) profile cell.
    pub fn stats(&self, backend: SolverBackend, bucket: SizeBucket) -> BackendStats {
        BackendStats::from(*lock_recovering(self.cell(backend, bucket)))
    }

    /// Records one routed solve: measured `latency` and, when a shadow reference is
    /// available, the quality ratio (also returned, for metrics).
    ///
    /// The shadow reference for the instance's canonical geometry is the Held–Karp
    /// optimum when `instance` is small enough
    /// ([`RouterConfig::shadow_exact_limit`], memoised per geometry), and the best
    /// cost seen so far otherwise. The very first observation of a large geometry
    /// seeds its reference and scores ratio 1.0.
    pub fn record(
        &self,
        instance: &TspInstance,
        backend: SolverBackend,
        latency: Duration,
        tour_cost: f64,
    ) -> Option<f64> {
        let quality = self.quality_ratio(instance, backend, tour_cost);
        let bucket = SizeBucket::of(instance.dimension());
        lock_recovering(self.cell(backend, bucket)).record(self.alpha, latency, quality);
        self.observations.fetch_add(1, Ordering::Relaxed);
        quality
    }

    /// The per-geometry routing signal for this exact geometry, when the reference
    /// table has seen it under **at least two** backends (a "best" needs a
    /// comparison). This is the profiler's sharpest knowledge: repeat-heavy
    /// traffic (popular routes, recurring panels) converges to the per-geometry
    /// winner instead of the per-size-bucket average.
    pub fn geometry_signal(&self, instance: &TspInstance) -> Option<GeometrySignal> {
        let key = self.canonical_key(instance);
        let references = lock_recovering(&self.references);
        references.get(&key).map(|reference| GeometrySignal {
            best: reference.best_backend,
            observed: reference.observed,
        })
    }

    /// The backend known to produce the best tour for this exact geometry, once at
    /// least two backends have been compared on it (see
    /// [`geometry_signal`](Self::geometry_signal)).
    pub fn geometry_best(&self, instance: &TspInstance) -> Option<SolverBackend> {
        self.geometry_signal(instance)
            .filter(|signal| signal.observed_count() >= 2)
            .and_then(|signal| signal.best)
    }

    /// Latency-only variant of [`record`](Self::record) for callers that cannot
    /// produce a cost (failed solves still teach the profiler how long the attempt
    /// took is deliberately **not** done — errors are not representative latencies).
    pub fn record_latency(&self, backend: SolverBackend, bucket: SizeBucket, latency: Duration) {
        lock_recovering(self.cell(backend, bucket)).record(self.alpha, latency, None);
        self.observations.fetch_add(1, Ordering::Relaxed);
    }

    /// Serialises the profiler's learned state into `writer` (the payload of a
    /// `taxi-snap` snapshot section): every (backend, bucket) EWMA cell, the
    /// per-geometry shadow-reference table (sorted by key, so the byte stream is
    /// deterministic), and the observation count. Configuration (α, shadow
    /// limits, capacities) is *not* persisted — it belongs to the restoring
    /// process.
    pub fn snapshot_into(&self, writer: &mut RecordWriter) {
        writer.write_u32(SolverBackend::ALL.len() as u32);
        writer.write_u32(BUCKETS as u32);
        for backend_cells in &self.cells {
            for cell in backend_cells {
                let cell = *lock_recovering(cell);
                writer.write_u64(cell.samples);
                writer.write_f64_bits(cell.latency_us);
                writer.write_f64_bits(cell.latency_var_us2);
                writer.write_u64(cell.quality_samples);
                writer.write_f64_bits(cell.quality);
            }
        }
        let references = lock_recovering(&self.references);
        let mut sorted: Vec<(&u128, &Reference)> = references.iter().collect();
        sorted.sort_unstable_by_key(|(key, _)| **key);
        writer.write_u64(sorted.len() as u64);
        for (key, reference) in sorted {
            writer.write_u128(*key);
            writer.write_f64_bits(reference.cost);
            writer.write_u8(u8::from(reference.exact));
            writer.write_u8(reference.observed);
            writer.write_u8(
                reference
                    .best_backend
                    .map_or(u8::MAX, |backend| backend.index() as u8),
            );
        }
        writer.write_u64(self.observations.load(Ordering::Relaxed));
    }

    /// Restores state serialised by [`snapshot_into`](Self::snapshot_into),
    /// **replacing** the profiler's cells and reference table. Returns the
    /// number of shadow references restored.
    ///
    /// Validate-fully-then-apply: the whole payload is decoded and semantically
    /// checked (cell layout must match this build, EWMA statistics must be
    /// finite and non-negative, observed-backend bitmasks and backend indices
    /// must be in range) before anything is touched; any failure leaves the
    /// profiler exactly as it was. References beyond
    /// [`RouterConfig::reference_capacity`] are dropped (lowest keys kept — the
    /// table refuses new geometries at capacity anyway).
    pub fn restore_from(&self, reader: &mut RecordReader<'_>) -> Result<usize, SnapError> {
        let backends = reader.read_u32()? as usize;
        let buckets = reader.read_u32()? as usize;
        if backends != SolverBackend::ALL.len() || buckets != BUCKETS {
            return Err(SnapError::Corrupt {
                context: "profiler cell layout mismatch",
            });
        }
        let mut cells = Vec::with_capacity(backends * buckets);
        for _ in 0..backends * buckets {
            let cell = Cell {
                samples: reader.read_u64()?,
                latency_us: reader.read_f64_bits()?,
                latency_var_us2: reader.read_f64_bits()?,
                quality_samples: reader.read_u64()?,
                quality: reader.read_f64_bits()?,
            };
            let stats_valid = cell.latency_us.is_finite()
                && cell.latency_us >= 0.0
                && cell.latency_var_us2.is_finite()
                && cell.latency_var_us2 >= 0.0
                && cell.quality.is_finite()
                && cell.quality >= 0.0
                && cell.quality_samples <= cell.samples;
            if !stats_valid {
                return Err(SnapError::Corrupt {
                    context: "profiler cell statistics",
                });
            }
            cells.push(cell);
        }
        let reference_count = reader.read_u64()?;
        let mut references =
            Vec::with_capacity(usize::try_from(reference_count).unwrap_or(0).min(4096));
        for _ in 0..reference_count {
            let key = reader.read_u128()?;
            let cost = reader.read_f64_bits()?;
            let exact = match reader.read_u8()? {
                0 => false,
                1 => true,
                _ => {
                    return Err(SnapError::Corrupt {
                        context: "profiler reference exact flag",
                    })
                }
            };
            let observed = reader.read_u8()?;
            let best = reader.read_u8()?;
            let best_backend = match best {
                u8::MAX => None,
                index if (index as usize) < SolverBackend::ALL.len() => {
                    Some(SolverBackend::ALL[index as usize])
                }
                _ => {
                    return Err(SnapError::Corrupt {
                        context: "profiler reference backend index",
                    })
                }
            };
            if !cost.is_finite() || observed >= 1 << SolverBackend::ALL.len() {
                return Err(SnapError::Corrupt {
                    context: "profiler reference",
                });
            }
            references.push((
                key,
                Reference {
                    cost,
                    exact,
                    observed,
                    best_backend,
                },
            ));
        }
        let observations = reader.read_u64()?;
        if !reader.is_empty() {
            return Err(SnapError::Corrupt {
                context: "trailing bytes after profiler state",
            });
        }
        // Everything validated: apply atomically enough (cell locks are taken one
        // at a time, but no decode error can fire past this point).
        for (backend_index, backend_cells) in self.cells.iter().enumerate() {
            for (bucket_index, cell) in backend_cells.iter().enumerate() {
                *lock_recovering(cell) = cells[backend_index * BUCKETS + bucket_index];
            }
        }
        let mut table = lock_recovering(&self.references);
        table.clear();
        let restored = references.len().min(self.reference_capacity);
        table.extend(references.into_iter().take(self.reference_capacity));
        drop(table);
        self.observations.store(observations, Ordering::Relaxed);
        Ok(restored)
    }

    /// Resolves the quality ratio of `tour_cost` (achieved by `backend`) against
    /// the instance's shadow reference, creating or improving the reference — and
    /// its best-backend attribution — as a side effect. `None` when the
    /// observation carries no quality information: the reference table is at
    /// capacity, the cost is non-finite, or this observation **seeds** a
    /// best-seen reference (a cost compared against itself would always score a
    /// meaningless 1.0, silently flattering whichever backend happens to see a
    /// geometry first).
    fn quality_ratio(
        &self,
        instance: &TspInstance,
        backend: SolverBackend,
        tour_cost: f64,
    ) -> Option<f64> {
        if !tour_cost.is_finite() || tour_cost <= 0.0 {
            return None;
        }
        let key = self.canonical_key(instance);
        let mut references = lock_recovering(&self.references);
        let mut seeded = false;
        let entry = match references.get_mut(&key) {
            Some(entry) => entry,
            None => {
                if references.len() >= self.reference_capacity {
                    // Table full: stop learning new geometries rather than evict
                    // (references must stay stable for ratios to be comparable).
                    return None;
                }
                let n = instance.dimension();
                let reference = if n >= 2 && n <= self.shadow_exact_limit {
                    let exact = taxi_baselines::held_karp(&instance.full_distance_matrix()).ok();
                    match exact {
                        Some(solution) => Reference {
                            cost: solution.length,
                            exact: true,
                            observed: 0,
                            best_backend: None,
                        },
                        None => Reference {
                            cost: tour_cost,
                            exact: false,
                            observed: 0,
                            best_backend: None,
                        },
                    }
                } else {
                    Reference {
                        cost: tour_cost,
                        exact: false,
                        observed: 0,
                        best_backend: None,
                    }
                };
                // A freshly seeded best-seen reference is the observation itself:
                // no comparison happened, so no ratio is reported.
                seeded = !reference.exact;
                references.entry(key).or_insert(reference)
            }
        };
        entry.observed |= 1 << backend.index();
        if entry.cost <= 0.0 {
            // A zero-length reference (e.g. all cities coincident) admits no
            // meaningful ratio.
            entry.best_backend.get_or_insert(backend);
            return None;
        }
        if !entry.exact && tour_cost < entry.cost {
            entry.cost = tour_cost;
            entry.best_backend = Some(backend);
        } else if tour_cost <= entry.cost * (1.0 + 1e-9) && entry.best_backend.is_none() {
            // First backend to match the reference (an exact optimum, or the
            // geometry's own seeding cost) claims the attribution.
            entry.best_backend = Some(backend);
        }
        if seeded {
            return None;
        }
        Some((tour_cost / entry.cost).max(1.0))
    }
}

/// Per-geometry routing knowledge: the best backend observed for one exact
/// geometry, plus which backends have been compared on it. A pin only takes
/// effect once every *non-dominated feasible* candidate appears in its comparison
/// set — the router sweeps the remaining candidates over the geometry's first
/// repeats, so partial early evidence can never permanently lock a better backend
/// out, and the pin it converges to is the geometry's true per-route winner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeometrySignal {
    /// The backend that achieved the best known cost for this geometry, when one
    /// has been attributed.
    pub best: Option<SolverBackend>,
    /// Bitmask (by [`SolverBackend::index`]) of backends observed on the geometry.
    observed: u8,
}

impl GeometrySignal {
    /// Whether `backend` has been observed (compared) on this geometry.
    pub fn has_observed(&self, backend: SolverBackend) -> bool {
        self.observed & (1 << backend.index()) != 0
    }

    /// Number of distinct backends observed on this geometry.
    pub fn observed_count(&self) -> u32 {
        self.observed.count_ones()
    }
}

/// Recovers a poisoned cell/reference lock: profile state is plain numeric data,
/// valid at every point, so a panicking peer must not disable routing.
fn lock_recovering<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Configuration of an [`AdaptiveRouter`].
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// Exploration probability of the ε-greedy arm (clamped to `0.0..=1.0`).
    pub epsilon: f64,
    /// Seed of the router's decision RNG (exploration is deterministic in the seed
    /// and the decision sequence).
    pub seed: u64,
    /// EWMA smoothing factor for the profile statistics (clamped to `(0, 1]`).
    pub ewma_alpha: f64,
    /// Minimum samples in a profile cell before its statistics are trusted for
    /// exploitation and feasibility filtering; colder cells are visited first.
    pub min_samples: u64,
    /// Bounded-regret exploration: a **trusted** cell whose mean quality ratio
    /// exceeds the best trusted feasible cell's by more than this bound is
    /// excluded from the ε-greedy draw (it is strongly dominated — re-sampling it
    /// costs real quality and cannot change the ranking of static backends).
    /// Cold and near-best cells always stay explorable. Raise to `f64::INFINITY`
    /// for classic uniform ε-greedy.
    pub exploration_regret: f64,
    /// Instances up to this many cities get an **exact** (Held–Karp) shadow quality
    /// reference, memoised per geometry; larger ones use best-seen cost. `0`
    /// disables exact references. Capped at
    /// [`HELD_KARP_LIMIT`].
    pub shadow_exact_limit: usize,
    /// Macro capacity used for the cluster-depth feature (mirrors
    /// `TaxiConfig::max_cluster_size`).
    pub cluster_capacity: usize,
    /// Bound on distinct geometries the shadow reference table tracks.
    pub reference_capacity: usize,
    /// The backends the router chooses among (defaults to all four built-ins).
    pub candidates: Vec<SolverBackend>,
}

impl RouterConfig {
    /// Defaults: ε = 0.08, α = 0.2, 3 samples to trust a cell, exact shadow
    /// references up to 12 cities, all four backends as candidates.
    pub fn new() -> Self {
        Self {
            epsilon: 0.08,
            seed: 0x0007_07E5,
            ewma_alpha: 0.2,
            min_samples: 3,
            exploration_regret: 0.05,
            shadow_exact_limit: 12,
            cluster_capacity: 12,
            reference_capacity: 65_536,
            candidates: SolverBackend::ALL.to_vec(),
        }
    }

    /// Sets the exploration probability (clamped to `0.0..=1.0`).
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = if epsilon.is_finite() {
            epsilon.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self
    }

    /// Sets the decision RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the EWMA smoothing factor (clamped to `(0, 1]`).
    #[must_use]
    pub fn with_ewma_alpha(mut self, alpha: f64) -> Self {
        self.ewma_alpha = if alpha.is_finite() {
            alpha.clamp(f64::EPSILON, 1.0)
        } else {
            0.2
        };
        self
    }

    /// Sets the trust threshold (minimum samples per cell).
    #[must_use]
    pub fn with_min_samples(mut self, min_samples: u64) -> Self {
        self.min_samples = min_samples.max(1);
        self
    }

    /// Sets the bounded-regret exploration margin (negative values clamp to 0;
    /// `f64::INFINITY` restores uniform ε-greedy).
    #[must_use]
    pub fn with_exploration_regret(mut self, regret: f64) -> Self {
        self.exploration_regret = if regret.is_nan() {
            0.05
        } else {
            regret.max(0.0)
        };
        self
    }

    /// Sets the exact shadow-reference limit (capped at [`HELD_KARP_LIMIT`]; `0`
    /// disables exact references).
    #[must_use]
    pub fn with_shadow_exact_limit(mut self, limit: usize) -> Self {
        self.shadow_exact_limit = limit.min(HELD_KARP_LIMIT);
        self
    }

    /// Sets the macro capacity used for the cluster-depth feature.
    #[must_use]
    pub fn with_cluster_capacity(mut self, capacity: usize) -> Self {
        self.cluster_capacity = capacity.max(2);
        self
    }

    /// Sets the per-geometry shadow-reference table capacity. Also caps how many
    /// references a snapshot restore will re-admit.
    #[must_use]
    pub fn with_reference_capacity(mut self, capacity: usize) -> Self {
        self.reference_capacity = capacity;
        self
    }

    /// Restricts the candidate backends.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    #[must_use]
    pub fn with_candidates(mut self, candidates: Vec<SolverBackend>) -> Self {
        assert!(
            !candidates.is_empty(),
            "router needs at least one candidate"
        );
        self.candidates = candidates;
        self
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// How a [`RoutingDecision`] was reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// Best profiled backend among the deadline-feasible candidates
    /// (lowest mean quality ratio, latency as tie-break).
    Exploit,
    /// ε-greedy exploration: a uniformly random deadline-feasible candidate.
    Explore,
    /// Not enough trusted profile data: the least-sampled feasible candidate, so
    /// cold cells fill deterministically (tiny instances prefer `Exact`, which is
    /// provably optimal there).
    ColdStart,
    /// No candidate's profiled p95 fits the remaining slack: the fastest profiled
    /// backend is chosen as damage control (routing never refuses to answer).
    DeadlineInfeasible,
}

impl DecisionKind {
    /// Short stable label (used in bench output).
    pub fn label(self) -> &'static str {
        match self {
            DecisionKind::Exploit => "exploit",
            DecisionKind::Explore => "explore",
            DecisionKind::ColdStart => "cold-start",
            DecisionKind::DeadlineInfeasible => "deadline-infeasible",
        }
    }

    /// Stable numeric code (packed into trace span attributes).
    pub fn code(self) -> u8 {
        match self {
            DecisionKind::Exploit => 0,
            DecisionKind::Explore => 1,
            DecisionKind::ColdStart => 2,
            DecisionKind::DeadlineInfeasible => 3,
        }
    }
}

/// One routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingDecision {
    /// The backend to solve with.
    pub backend: SolverBackend,
    /// The profile bucket the decision consulted.
    pub bucket: SizeBucket,
    /// How the decision was reached.
    pub kind: DecisionKind,
    /// Bitmask (by [`SolverBackend::index`]) of candidates excluded by the
    /// deadline-feasibility filter: profiled p95 latency above the remaining
    /// slack with at least `min_samples` of evidence. Zero when no deadline was
    /// given or everything fit; under [`DecisionKind::DeadlineInfeasible`] it
    /// covers every candidate.
    pub excluded: u8,
}

impl RoutingDecision {
    /// Whether this decision came from the exploration arm.
    pub fn explored(self) -> bool {
        self.kind == DecisionKind::Explore
    }
}

/// The adaptive backend router: features in, [`RoutingDecision`] out, profiles
/// updated by every observed solve.
///
/// Shareable across threads (`Arc<AdaptiveRouter>`): decisions serialise only on the
/// RNG lock, observations on one profile-cell lock each.
///
/// # Example
///
/// ```
/// use taxi::router::{AdaptiveRouter, RouterConfig};
/// use taxi::{TaxiConfig, TaxiSolver};
/// use taxi_tsplib::generator::clustered_instance;
///
/// let router = AdaptiveRouter::new(RouterConfig::new().with_seed(9));
/// let solver = TaxiSolver::new(TaxiConfig::new().with_seed(9));
/// let instance = clustered_instance("routed", 60, 4, 3);
/// let routed = solver.solve_routed(&instance, &router, None)?;
/// assert!(routed.solution.tour.is_valid_for(&instance));
/// // The solve fed the profiler:
/// assert_eq!(router.profiler().observations(), 1);
/// # Ok::<(), taxi::TaxiError>(())
/// ```
pub struct AdaptiveRouter {
    config: RouterConfig,
    profiler: BackendProfiler,
    rng: Mutex<ChaCha8Rng>,
    decisions: AtomicU64,
    explored: AtomicU64,
}

impl std::fmt::Debug for AdaptiveRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveRouter")
            .field("config", &self.config)
            .field("decisions", &self.decisions.load(Ordering::Relaxed))
            .field("explored", &self.explored.load(Ordering::Relaxed))
            .field("observations", &self.profiler.observations())
            .finish_non_exhaustive()
    }
}

impl AdaptiveRouter {
    /// Creates a router from `config`.
    pub fn new(config: RouterConfig) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        let profiler = BackendProfiler::new(
            config.ewma_alpha.clamp(f64::EPSILON, 1.0),
            config.shadow_exact_limit.min(HELD_KARP_LIMIT),
            config.reference_capacity,
        );
        Self {
            config,
            profiler,
            rng: Mutex::new(rng),
            decisions: AtomicU64::new(0),
            explored: AtomicU64::new(0),
        }
    }

    /// Creates a router with the default configuration.
    pub fn with_defaults() -> Self {
        Self::new(RouterConfig::new())
    }

    /// The router's configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// The online profiles backing the decisions.
    pub fn profiler(&self) -> &BackendProfiler {
        &self.profiler
    }

    /// Total decisions made.
    pub fn decisions(&self) -> u64 {
        self.decisions.load(Ordering::Relaxed)
    }

    /// Decisions made by the exploration arm.
    pub fn explored(&self) -> u64 {
        self.explored.load(Ordering::Relaxed)
    }

    /// Serialises the router's learned profile (see
    /// [`BackendProfiler::snapshot_into`]). The exploration RNG and the
    /// decision/exploration counters are deliberately **not** persisted: the
    /// RNG stream is a per-process exploration schedule, and the counters
    /// describe this process's traffic, not transferable knowledge.
    pub fn snapshot_into(&self, writer: &mut RecordWriter) {
        self.profiler.snapshot_into(writer);
    }

    /// Restores a profile serialised by [`snapshot_into`](Self::snapshot_into),
    /// replacing the profiler's state. Returns the number of per-geometry
    /// references restored. On error the router is left untouched.
    pub fn restore_from(&self, reader: &mut RecordReader<'_>) -> Result<usize, SnapError> {
        self.profiler.restore_from(reader)
    }

    /// Extracts features and decides in one call (the common serving-path entry
    /// point). `slack` is the remaining latency budget; `None` means no deadline.
    ///
    /// Unlike a bare [`decide`](Self::decide), this also consults the profiler's
    /// **per-geometry** memory ([`BackendProfiler::geometry_best`]): a geometry the
    /// profiler has already compared across backends exploits the known per-route
    /// winner — the signal that makes repeat-heavy traffic converge past any single
    /// fixed backend's quality.
    pub fn route(&self, instance: &TspInstance, slack: Option<Duration>) -> RoutingDecision {
        let features = InstanceFeatures::extract(instance, self.config.cluster_capacity);
        self.decide_with_hint(&features, slack, self.profiler.geometry_signal(instance))
    }

    /// Decides the backend for an instance with the given features and remaining
    /// deadline slack.
    ///
    /// The rule, in order:
    ///
    /// 1. **Feasibility** — candidates whose profiled p95 latency for
    ///    `features.bucket` exceeds `slack` are excluded (cells below
    ///    [`RouterConfig::min_samples`] are optimistically feasible: exclusion
    ///    requires evidence).
    /// 2. If nothing is feasible, the fastest profiled candidate is returned as
    ///    [`DecisionKind::DeadlineInfeasible`] damage control.
    /// 3. **Explore** with probability ε: a uniformly random feasible candidate.
    /// 4. **Exploit** otherwise: the feasible candidate with the lowest mean quality
    ///    ratio among trusted cells (mean latency breaks ties); if no feasible cell
    ///    is trusted yet, the least-sampled feasible candidate
    ///    ([`DecisionKind::ColdStart`]), preferring `Exact` for instances small
    ///    enough that Held–Karp is provably optimal and fast.
    pub fn decide(&self, features: &InstanceFeatures, slack: Option<Duration>) -> RoutingDecision {
        self.decide_with_hint(features, slack, None)
    }

    /// [`decide`](Self::decide) with a per-geometry signal (the backend known to
    /// produce the best tour for this exact geometry, from
    /// [`BackendProfiler::geometry_signal`]). The pin wins the exploit arm when it
    /// is deadline-feasible, the bucket already has trusted cells, **and** the
    /// bucket-level favourite has itself been compared on the geometry (otherwise
    /// the favourite is routed so the comparison happens); exploration,
    /// feasibility filtering and cold-start sweeping are unaffected — a pin never
    /// stops the profiles from staying fresh.
    pub fn decide_with_hint(
        &self,
        features: &InstanceFeatures,
        slack: Option<Duration>,
        hint: Option<GeometrySignal>,
    ) -> RoutingDecision {
        let bucket = features.bucket;
        let candidates: Vec<(SolverBackend, BackendStats)> = self
            .config
            .candidates
            .iter()
            .map(|&backend| (backend, self.profiler.stats(backend, bucket)))
            .collect();
        let min_samples = self.config.min_samples;
        let mut excluded = 0u8;
        let mut feasible: Vec<&(SolverBackend, BackendStats)> =
            Vec::with_capacity(candidates.len());
        for candidate in &candidates {
            let (backend, stats) = candidate;
            let fits = match slack {
                Some(slack) => stats.samples < min_samples || stats.p95_latency <= slack,
                None => true,
            };
            if fits {
                feasible.push(candidate);
            } else {
                excluded |= 1 << backend.index();
            }
        }

        let decision = if feasible.is_empty() {
            // Damage control: nothing fits the budget, so minimise the overrun.
            let backend = candidates
                .iter()
                .filter(|(_, stats)| stats.samples > 0)
                .min_by(|a, b| {
                    total_cmp(a.1.p95_latency.as_secs_f64(), b.1.p95_latency.as_secs_f64())
                })
                .map(|(backend, _)| *backend)
                .unwrap_or(self.config.candidates[0]);
            RoutingDecision {
                backend,
                bucket,
                kind: DecisionKind::DeadlineInfeasible,
                excluded,
            }
        } else {
            let explore = self.config.epsilon > 0.0 && {
                let mut rng = lock_recovering(&self.rng);
                rng.gen_bool(self.config.epsilon)
            };
            // Bounded-regret exploration pool: cold cells and near-best cells.
            // A trusted cell strongly dominated on quality is pruned — backends
            // are static, so re-sampling a known-bad one buys no information and
            // costs real quality.
            let explore_pool: Vec<&&(SolverBackend, BackendStats)> = {
                let best_quality = feasible
                    .iter()
                    .filter(|(_, stats)| stats.samples >= min_samples && stats.quality_samples > 0)
                    .map(|(_, stats)| stats.mean_quality)
                    .fold(None, |best: Option<f64>, q| {
                        Some(best.map_or(q, |b| if q < b { q } else { b }))
                    });
                feasible
                    .iter()
                    .filter(|(_, stats)| {
                        stats.samples < min_samples
                            || stats.quality_samples == 0
                            || match best_quality {
                                None => true,
                                Some(best) => {
                                    stats.mean_quality <= best + self.config.exploration_regret
                                }
                            }
                    })
                    .collect()
            };
            if explore && !explore_pool.is_empty() {
                let index = {
                    let mut rng = lock_recovering(&self.rng);
                    rng.gen_range(0..explore_pool.len())
                };
                RoutingDecision {
                    backend: explore_pool[index].0,
                    bucket,
                    kind: DecisionKind::Explore,
                    excluded,
                }
            } else {
                let trusted: Vec<&&(SolverBackend, BackendStats)> = feasible
                    .iter()
                    .filter(|(_, stats)| stats.samples >= min_samples && stats.quality_samples > 0)
                    .collect();
                let bucket_best = trusted
                    .iter()
                    .min_by(|a, b| {
                        total_cmp(a.1.mean_quality, b.1.mean_quality).then_with(|| {
                            total_cmp(
                                a.1.mean_latency.as_secs_f64(),
                                b.1.mean_latency.as_secs_f64(),
                            )
                        })
                    })
                    .map(|(backend, _)| *backend);
                // Per-geometry sweep-then-pin. Once the bucket is warm enough to
                // exploit at all, a geometry the profiler is tracking first gets
                // each non-dominated feasible candidate routed to it once (in
                // candidate order, over its first repeats); after full coverage,
                // its measured winner is pinned. Repeat-heavy traffic thereby
                // converges to the *per-route* optimum — strictly better than any
                // single backend when routes disagree on their winner — while
                // one-off geometries simply take the bucket favourite.
                let exploit = match (bucket_best, &hint) {
                    (Some(favourite), Some(signal)) => {
                        let unswept = explore_pool
                            .iter()
                            .map(|(backend, _)| *backend)
                            .find(|&backend| !signal.has_observed(backend));
                        match unswept {
                            Some(candidate) => Some(candidate),
                            None => signal
                                .best
                                .filter(|best| feasible.iter().any(|(b, _)| b == best))
                                .or(Some(favourite)),
                        }
                    }
                    (bucket_best, _) => bucket_best,
                };
                match exploit {
                    Some(backend) => RoutingDecision {
                        backend,
                        bucket,
                        kind: DecisionKind::Exploit,
                        excluded,
                    },
                    None => {
                        // Cold start: fill the emptiest cell first. Tiny instances
                        // prefer the exact backend — provably optimal and cheap
                        // below the DP limit — so early traffic is well served
                        // while profiles warm.
                        let prefer_exact = features.cities <= HELD_KARP_LIMIT
                            && feasible.iter().any(|(b, _)| *b == SolverBackend::Exact);
                        let backend = if prefer_exact {
                            let exact_samples = feasible
                                .iter()
                                .find(|(b, _)| *b == SolverBackend::Exact)
                                .map(|(_, s)| s.samples)
                                .unwrap_or(u64::MAX);
                            if exact_samples < min_samples {
                                SolverBackend::Exact
                            } else {
                                least_sampled(&feasible)
                            }
                        } else {
                            least_sampled(&feasible)
                        };
                        RoutingDecision {
                            backend,
                            bucket,
                            kind: DecisionKind::ColdStart,
                            excluded,
                        }
                    }
                }
            }
        };

        self.decisions.fetch_add(1, Ordering::Relaxed);
        if decision.explored() {
            self.explored.fetch_add(1, Ordering::Relaxed);
        }
        decision
    }

    /// Feeds one observed solve back into the profiles and returns the quality
    /// ratio when a shadow reference was available (see
    /// [`BackendProfiler::record`]).
    pub fn observe(
        &self,
        instance: &TspInstance,
        backend: SolverBackend,
        latency: Duration,
        tour_cost: f64,
    ) -> Option<f64> {
        self.profiler.record(instance, backend, latency, tour_cost)
    }
}

fn least_sampled(feasible: &[&(SolverBackend, BackendStats)]) -> SolverBackend {
    feasible
        .iter()
        .min_by_key(|(_, stats)| stats.samples)
        .map(|(backend, _)| *backend)
        .expect("least_sampled called with a non-empty feasible set")
}

/// `f64::total_cmp` shim with NaN pushed last (profile means are never NaN, but the
/// router must not panic if they ever were).
fn total_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxi_tsplib::generator::{clustered_instance, random_uniform_instance};

    fn features(cities: usize) -> InstanceFeatures {
        InstanceFeatures {
            cities,
            dispersion: 0.2,
            cluster_depth: 1,
            bucket: SizeBucket::of(cities),
        }
    }

    /// Primes one profile cell with `n` identical observations.
    fn prime(
        router: &AdaptiveRouter,
        backend: SolverBackend,
        bucket: SizeBucket,
        latency: Duration,
        n: u64,
    ) {
        for _ in 0..n {
            router.profiler.record_latency(backend, bucket, latency);
        }
    }

    #[test]
    fn buckets_partition_all_sizes() {
        assert_eq!(SizeBucket::of(1).index(), 0);
        assert_eq!(SizeBucket::of(16).index(), 0);
        assert_eq!(SizeBucket::of(17).index(), 1);
        assert_eq!(SizeBucket::of(1024).index(), SizeBucket::COUNT - 2);
        assert_eq!(SizeBucket::of(1025).index(), SizeBucket::COUNT - 1);
        assert_eq!(SizeBucket::of(usize::MAX).label(), ">1024");
    }

    #[test]
    fn features_are_cheap_and_sane() {
        let uniform = random_uniform_instance("u", 200, 1);
        let f = InstanceFeatures::extract(&uniform, 12);
        assert_eq!(f.cities, 200);
        assert!(
            f.dispersion > 0.1 && f.dispersion < 0.45,
            "{}",
            f.dispersion
        );
        // 200 → 17 → 2 → 1: two contraction levels until ≤ 12 entities.
        assert_eq!(f.cluster_depth, 2);
        // Single-city and explicit-matrix instances degrade gracefully.
        let one = random_uniform_instance("one", 1, 1);
        let f1 = InstanceFeatures::extract(&one, 12);
        assert_eq!((f1.cluster_depth, f1.dispersion), (0, 0.0));
        let matrix = TspInstance::from_matrix(
            "m",
            taxi_dist::DistanceMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap(),
        )
        .unwrap();
        assert_eq!(InstanceFeatures::extract(&matrix, 12).dispersion, 0.0);
    }

    #[test]
    fn clustered_instances_disperse_less_than_uniform_ones() {
        let uniform = random_uniform_instance("u", 300, 7);
        let clustered = clustered_instance("c", 300, 3, 7);
        let du = InstanceFeatures::extract(&uniform, 12).dispersion;
        let dc = InstanceFeatures::extract(&clustered, 12).dispersion;
        assert!(du > 0.0 && dc > 0.0);
    }

    #[test]
    fn ewma_profiles_converge_and_p95_dominates_the_mean() {
        let profiler = BackendProfiler::new(0.2, 12, 1024);
        let bucket = SizeBucket::of(50);
        for i in 0..50u64 {
            let us = if i % 10 == 0 { 900 } else { 100 };
            profiler.record_latency(SolverBackend::NnTwoOpt, bucket, Duration::from_micros(us));
        }
        let stats = profiler.stats(SolverBackend::NnTwoOpt, bucket);
        assert_eq!(stats.samples, 50);
        assert!(stats.mean_latency >= Duration::from_micros(90));
        assert!(stats.p95_latency > stats.mean_latency);
    }

    #[test]
    fn quality_uses_exact_reference_below_the_limit() {
        let profiler = BackendProfiler::new(0.5, 12, 1024);
        let instance = random_uniform_instance("q", 8, 3);
        let optimal = taxi_baselines::held_karp(&instance.full_distance_matrix())
            .unwrap()
            .length;
        let ratio = profiler
            .record(
                &instance,
                SolverBackend::NnTwoOpt,
                Duration::from_micros(10),
                optimal * 1.25,
            )
            .expect("exact reference available");
        assert!((ratio - 1.25).abs() < 1e-9, "ratio {ratio}");
        // A second observation at the optimum scores exactly 1.0.
        let ratio = profiler
            .record(
                &instance,
                SolverBackend::Exact,
                Duration::from_micros(10),
                optimal,
            )
            .unwrap();
        assert!((ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quality_uses_best_seen_above_the_limit() {
        let profiler = BackendProfiler::new(0.5, 12, 1024);
        let instance = random_uniform_instance("big", 60, 3);
        // First observation seeds the reference: no comparison, no ratio (a
        // self-comparison would flatter whichever backend arrives first).
        let first = profiler.record(
            &instance,
            SolverBackend::NnTwoOpt,
            Duration::from_micros(5),
            200.0,
        );
        assert_eq!(first, None);
        // A worse cost scores its ratio against the best seen.
        let worse = profiler
            .record(
                &instance,
                SolverBackend::GreedyEdge,
                Duration::from_micros(5),
                250.0,
            )
            .unwrap();
        assert!((worse - 1.25).abs() < 1e-12);
        // A better cost improves the reference and itself scores 1.0.
        let better = profiler
            .record(
                &instance,
                SolverBackend::Exact,
                Duration::from_micros(5),
                160.0,
            )
            .unwrap();
        assert!((better - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cold_start_routes_every_backend_eventually() {
        let router = AdaptiveRouter::new(RouterConfig::new().with_epsilon(0.0).with_seed(1));
        let f = features(60);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..8 {
            let decision = router.decide(&f, None);
            assert_eq!(decision.kind, DecisionKind::ColdStart);
            seen.insert(decision.backend);
            // Cold-start decisions only converge if the profiler hears back.
            router
                .profiler
                .record_latency(decision.backend, f.bucket, Duration::from_micros(100));
        }
        assert_eq!(seen.len(), SolverBackend::ALL.len(), "all backends visited");
    }

    #[test]
    fn tiny_cold_instances_prefer_the_exact_backend() {
        let router = AdaptiveRouter::new(RouterConfig::new().with_epsilon(0.0));
        let decision = router.decide(&features(10), None);
        assert_eq!(decision.backend, SolverBackend::Exact);
        assert_eq!(decision.kind, DecisionKind::ColdStart);
    }

    #[test]
    fn deadline_excludes_slow_backends() {
        let router = AdaptiveRouter::new(RouterConfig::new().with_epsilon(0.0));
        let f = features(60);
        // IsingMacro profiled slow, NnTwoOpt fast; both trusted.
        prime(
            &router,
            SolverBackend::IsingMacro,
            f.bucket,
            Duration::from_millis(50),
            5,
        );
        prime(
            &router,
            SolverBackend::NnTwoOpt,
            f.bucket,
            Duration::from_micros(300),
            5,
        );
        prime(
            &router,
            SolverBackend::GreedyEdge,
            f.bucket,
            Duration::from_millis(40),
            5,
        );
        prime(
            &router,
            SolverBackend::Exact,
            f.bucket,
            Duration::from_millis(45),
            5,
        );
        let decision = router.decide(&f, Some(Duration::from_millis(2)));
        assert_eq!(decision.backend, SolverBackend::NnTwoOpt);
        assert_ne!(decision.kind, DecisionKind::DeadlineInfeasible);
        // The exclusion mask names exactly the three backends the filter dropped.
        let expected: u8 = [
            SolverBackend::IsingMacro,
            SolverBackend::GreedyEdge,
            SolverBackend::Exact,
        ]
        .iter()
        .map(|b| 1 << b.index())
        .sum();
        assert_eq!(decision.excluded, expected);

        // Without a deadline nothing is excluded.
        assert_eq!(router.decide(&f, None).excluded, 0);
    }

    #[test]
    fn infeasible_deadline_falls_back_to_the_fastest_profile() {
        let router = AdaptiveRouter::new(RouterConfig::new().with_epsilon(0.0));
        let f = features(60);
        for backend in SolverBackend::ALL {
            let millis = 10 + 10 * backend.index() as u64;
            prime(&router, backend, f.bucket, Duration::from_millis(millis), 5);
        }
        // 1µs of slack: nothing fits. IsingMacro (10ms) is the fastest profile.
        let decision = router.decide(&f, Some(Duration::from_micros(1)));
        assert_eq!(decision.kind, DecisionKind::DeadlineInfeasible);
        assert_eq!(decision.backend, SolverBackend::IsingMacro);
        // Damage control: the mask records that every candidate was excluded.
        let all: u8 = SolverBackend::ALL.iter().map(|b| 1 << b.index()).sum();
        assert_eq!(decision.excluded, all);
    }

    #[test]
    fn cold_cells_are_optimistically_feasible() {
        let router = AdaptiveRouter::new(RouterConfig::new().with_epsilon(0.0));
        let f = features(60);
        // Only one backend profiled, and profiled too slow for the slack — the
        // unprofiled ones must stay in the running.
        prime(
            &router,
            SolverBackend::Exact,
            f.bucket,
            Duration::from_millis(50),
            5,
        );
        let decision = router.decide(&f, Some(Duration::from_micros(10)));
        assert_ne!(decision.backend, SolverBackend::Exact);
        assert_eq!(decision.kind, DecisionKind::ColdStart);
    }

    #[test]
    fn exploit_prefers_quality_then_latency() {
        let router = AdaptiveRouter::new(RouterConfig::new().with_epsilon(0.0));
        let instance = random_uniform_instance("exploit", 60, 3);
        // Pin the best-seen reference at 100 first (Exact observes it), then give
        // every backend a distinct quality profile at equal latency: ratios are
        // cost / 100 throughout.
        for (backend, cost) in [
            (SolverBackend::Exact, 100.0),
            (SolverBackend::IsingMacro, 130.0),
            (SolverBackend::NnTwoOpt, 110.0),
            (SolverBackend::GreedyEdge, 120.0),
        ] {
            for _ in 0..5 {
                router
                    .profiler
                    .record(&instance, backend, Duration::from_micros(500), cost);
            }
        }
        let decision = router.decide(&features(60), None);
        assert_eq!(decision.kind, DecisionKind::Exploit);
        assert_eq!(decision.backend, SolverBackend::Exact);
    }

    #[test]
    fn geometry_best_pins_repeat_traffic_to_the_per_route_winner() {
        let router = AdaptiveRouter::new(RouterConfig::new().with_epsilon(0.0));
        let instance = random_uniform_instance("route", 60, 3);
        // No comparison yet → no geometry signal.
        router.profiler.record(
            &instance,
            SolverBackend::Exact,
            Duration::from_micros(700),
            120.0,
        );
        assert_eq!(router.profiler.geometry_best(&instance), None);
        // A second backend beats the first on this geometry: signal appears.
        router.profiler.record(
            &instance,
            SolverBackend::NnTwoOpt,
            Duration::from_micros(90),
            110.0,
        );
        assert_eq!(
            router.profiler.geometry_best(&instance),
            Some(SolverBackend::NnTwoOpt)
        );
        // Warm the bucket so exploit engages, with Exact as the *bucket-level*
        // quality winner on other geometries, and IsingMacro/GreedyEdge strongly
        // dominated (outside the regret bound) so the per-geometry sweep does not
        // ask for them.
        let other = random_uniform_instance("other", 60, 9);
        for _ in 0..5 {
            for (backend, cost) in [
                (SolverBackend::Exact, 100.0),
                (SolverBackend::NnTwoOpt, 105.0),
                (SolverBackend::GreedyEdge, 140.0),
                (SolverBackend::IsingMacro, 150.0),
            ] {
                router
                    .profiler
                    .record(&other, backend, Duration::from_micros(100), cost);
            }
        }
        assert_eq!(
            router.decide(&features(60), None).backend,
            SolverBackend::Exact,
            "bucket-level exploit prefers Exact"
        );
        // ...yet the known per-geometry winner overrides it for this route.
        assert_eq!(
            router.route(&instance, None).backend,
            SolverBackend::NnTwoOpt,
            "geometry memory pins the route to its winner"
        );
    }

    #[test]
    fn strongly_dominated_backends_are_pruned_from_exploration() {
        let router = AdaptiveRouter::new(
            RouterConfig::new()
                .with_epsilon(1.0) // always explore
                .with_seed(7)
                .with_exploration_regret(0.05),
        );
        let instance = random_uniform_instance("dominated", 60, 3);
        // Pin the reference at 100, then profile IsingMacro 30% above it and the
        // rest at/near it — IsingMacro becomes strongly dominated.
        for (backend, cost) in [
            (SolverBackend::Exact, 100.0),
            (SolverBackend::NnTwoOpt, 101.0),
            (SolverBackend::GreedyEdge, 102.0),
            (SolverBackend::IsingMacro, 130.0),
        ] {
            for _ in 0..5 {
                router
                    .profiler
                    .record(&instance, backend, Duration::from_micros(100), cost);
            }
        }
        for _ in 0..60 {
            let decision = router.decide(&features(60), None);
            assert_eq!(decision.kind, DecisionKind::Explore);
            assert_ne!(
                decision.backend,
                SolverBackend::IsingMacro,
                "a 30%-worse backend must not be re-explored under a 5% regret bound"
            );
        }
    }

    #[test]
    fn exploration_is_deterministic_in_the_seed() {
        let run = |seed: u64| -> Vec<SolverBackend> {
            let router = AdaptiveRouter::new(RouterConfig::new().with_epsilon(0.5).with_seed(seed));
            let f = features(60);
            (0..40)
                .map(|_| {
                    let d = router.decide(&f, None);
                    router
                        .profiler
                        .record_latency(d.backend, f.bucket, Duration::from_micros(100));
                    d.backend
                })
                .collect()
        };
        assert_eq!(run(7), run(7), "same seed, same decision stream");
        assert_ne!(run(7), run(8), "different seeds explore differently");
    }

    #[test]
    fn exploration_share_tracks_epsilon() {
        let router = AdaptiveRouter::new(RouterConfig::new().with_epsilon(0.3).with_seed(3));
        let f = features(60);
        for _ in 0..400 {
            let d = router.decide(&f, None);
            router.profiler.record(
                &random_uniform_instance("s", 60, 1),
                d.backend,
                Duration::from_micros(50),
                100.0,
            );
        }
        let share = router.explored() as f64 / router.decisions() as f64;
        assert!((0.18..0.42).contains(&share), "share {share}");
    }

    /// Trains a profiler with real traffic so its cells and reference table are
    /// non-trivial, then returns it alongside the instances that populated it.
    fn trained_router() -> (AdaptiveRouter, Vec<TspInstance>) {
        let router = AdaptiveRouter::new(RouterConfig::new().with_seed(11));
        let instances: Vec<TspInstance> = (0..6)
            .map(|i| random_uniform_instance("train", 20 + i * 13, i as u64))
            .collect();
        for (i, instance) in instances.iter().enumerate() {
            for (j, backend) in SolverBackend::ALL.iter().enumerate() {
                router.profiler.record(
                    instance,
                    *backend,
                    Duration::from_micros(40 + 10 * (i as u64 + j as u64)),
                    100.0 + (i * 7 + j) as f64,
                );
            }
        }
        (router, instances)
    }

    #[test]
    fn profiler_snapshot_restore_is_lossless() {
        let (router, instances) = trained_router();
        let mut writer = RecordWriter::new();
        router.snapshot_into(&mut writer);
        let bytes = writer.into_bytes();

        let restored = AdaptiveRouter::new(RouterConfig::new().with_seed(99));
        let refs = restored
            .restore_from(&mut RecordReader::new(&bytes))
            .expect("restore");
        assert!(refs > 0, "trained table must carry references");
        assert_eq!(
            restored.profiler.observations(),
            router.profiler.observations()
        );
        for backend in SolverBackend::ALL {
            for bucket_cities in [10usize, 33, 100, 2000] {
                let bucket = SizeBucket::of(bucket_cities);
                let a = router.profiler.stats(backend, bucket);
                let b = restored.profiler.stats(backend, bucket);
                assert_eq!(a.samples, b.samples);
                assert_eq!(a.quality_samples, b.quality_samples);
                assert_eq!(a.mean_latency, b.mean_latency);
                assert_eq!(a.p95_latency, b.p95_latency);
                assert_eq!(a.mean_quality.to_bits(), b.mean_quality.to_bits());
            }
        }
        // The sharpest knowledge survives: per-geometry winners are identical.
        for instance in &instances {
            assert_eq!(
                restored.profiler.geometry_best(instance),
                router.profiler.geometry_best(instance),
            );
            assert_eq!(
                restored
                    .profiler
                    .geometry_signal(instance)
                    .map(|s| s.observed),
                router
                    .profiler
                    .geometry_signal(instance)
                    .map(|s| s.observed),
            );
        }
        // And a second snapshot of the restored state is byte-identical: the
        // sorted reference table makes the format deterministic.
        let mut again = RecordWriter::new();
        restored.snapshot_into(&mut again);
        assert_eq!(again.into_bytes(), bytes);
    }

    #[test]
    fn profiler_restore_rejects_corruption_without_partial_state() {
        let (router, _) = trained_router();
        let mut writer = RecordWriter::new();
        router.snapshot_into(&mut writer);
        let bytes = writer.into_bytes();

        let assert_untouched = |victim: &AdaptiveRouter| {
            assert_eq!(victim.profiler.observations(), 0, "no partial state");
            for backend in SolverBackend::ALL {
                assert_eq!(
                    victim.profiler.stats(backend, SizeBucket::of(20)).samples,
                    0
                );
            }
        };

        // Wrong cell-grid dimensions: a snapshot from an incompatible build.
        let mut skewed = bytes.clone();
        skewed[0] = 9;
        let victim = AdaptiveRouter::new(RouterConfig::new());
        assert!(matches!(
            victim.restore_from(&mut RecordReader::new(&skewed)),
            Err(SnapError::Corrupt { context }) if context.contains("layout")
        ));
        assert_untouched(&victim);

        // Non-finite EWMA latency in the first cell (offset: 8-byte dimension
        // header + samples u64 → latency bits start at 16).
        let mut nan = bytes.clone();
        nan[16..24].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        let victim = AdaptiveRouter::new(RouterConfig::new());
        assert!(matches!(
            victim.restore_from(&mut RecordReader::new(&nan)),
            Err(SnapError::Corrupt { context }) if context.contains("statistics")
        ));
        assert_untouched(&victim);

        // Truncation mid-stream.
        let victim = AdaptiveRouter::new(RouterConfig::new());
        assert!(matches!(
            victim.restore_from(&mut RecordReader::new(&bytes[..bytes.len() - 3])),
            Err(SnapError::Truncated { .. })
        ));
        assert_untouched(&victim);

        // Trailing garbage.
        let mut padded = bytes.clone();
        padded.push(0);
        let victim = AdaptiveRouter::new(RouterConfig::new());
        assert!(matches!(
            victim.restore_from(&mut RecordReader::new(&padded)),
            Err(SnapError::Corrupt { context }) if context.contains("trailing")
        ));
        assert_untouched(&victim);

        // The pristine bytes still restore after all those rejections.
        let victim = AdaptiveRouter::new(RouterConfig::new());
        victim
            .restore_from(&mut RecordReader::new(&bytes))
            .expect("pristine snapshot restores");
    }

    #[test]
    fn profiler_restore_respects_reference_capacity() {
        let (router, _) = trained_router();
        let mut writer = RecordWriter::new();
        router.snapshot_into(&mut writer);
        let bytes = writer.into_bytes();
        let small = AdaptiveRouter::new(RouterConfig::new().with_reference_capacity(2));
        let refs = small
            .restore_from(&mut RecordReader::new(&bytes))
            .expect("restore");
        assert_eq!(refs, 2, "capacity caps the restored table");
    }
}
