//! Neuro-Ising surrogate (the paper's ref. \[5\]), the state-of-the-art clustering-based
//! Ising solver TAXI is benchmarked against.
//!
//! Two facets are modelled:
//!
//! * a **latency model** reproducing the relative comparison of Fig. 6b (TAXI is 8×
//!   faster on average, with the gap widening for larger instances), and
//! * a **quality surrogate** that actually runs: k-means clustering plus sequential,
//!   localized sub-solves without endpoint fixing, whose solution quality degrades with
//!   problem size in the same qualitative way the paper reports for Neuro-Ising.

use taxi_tsplib::{Tour, TspInstance, TsplibError};

use crate::hvc::{HvcBaseline, HvcConfig};
use crate::reported::{NEURO_ISING_LATENCY_RATIO, PROBLEM_SIZES};

/// Latency/quality model of the Neuro-Ising solver.
///
/// # Example
///
/// ```
/// use taxi_baselines::NeuroIsingModel;
///
/// let model = NeuroIsingModel::new();
/// // If TAXI needs 10 s on a 33 810-city instance, Neuro-Ising needs about 130 s.
/// let latency = model.latency_seconds(33_810, 10.0);
/// assert!(latency > 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NeuroIsingModel;

impl NeuroIsingModel {
    /// Creates the model.
    pub fn new() -> Self {
        Self
    }

    /// Latency ratio of Neuro-Ising to TAXI for an `n`-city instance, interpolated from
    /// the per-instance ratios adapted from the paper's Fig. 6b.
    pub fn latency_ratio(&self, n: usize) -> f64 {
        let sizes = &PROBLEM_SIZES;
        if n <= sizes[0] {
            return NEURO_ISING_LATENCY_RATIO[0];
        }
        if n >= sizes[sizes.len() - 1] {
            return NEURO_ISING_LATENCY_RATIO[sizes.len() - 1];
        }
        // Linear interpolation in log(problem size).
        let x = (n as f64).ln();
        for w in 0..sizes.len() - 1 {
            let (a, b) = (sizes[w], sizes[w + 1]);
            if n >= a && n <= b {
                let (xa, xb) = ((a as f64).ln(), (b as f64).ln());
                let t = (x - xa) / (xb - xa);
                return NEURO_ISING_LATENCY_RATIO[w]
                    + t * (NEURO_ISING_LATENCY_RATIO[w + 1] - NEURO_ISING_LATENCY_RATIO[w]);
            }
        }
        NEURO_ISING_LATENCY_RATIO[sizes.len() - 1]
    }

    /// Projected Neuro-Ising latency given TAXI's latency on the same instance.
    pub fn latency_seconds(&self, n: usize, taxi_latency_seconds: f64) -> f64 {
        self.latency_ratio(n) * taxi_latency_seconds
    }

    /// Runs the quality surrogate: k-means clustering with sequential localized
    /// sub-solves and no endpoint fixing.
    ///
    /// # Errors
    ///
    /// Returns a [`TsplibError`] for explicit-matrix instances (the surrogate needs
    /// coordinates).
    pub fn solve_surrogate(
        &self,
        instance: &TspInstance,
        max_cluster_size: usize,
    ) -> Result<(Tour, f64), TsplibError> {
        let solution =
            HvcBaseline::new(HvcConfig::new(max_cluster_size).with_seed(0x9E02)).solve(instance)?;
        Ok((solution.tour, solution.length))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxi_tsplib::generator::clustered_instance;

    #[test]
    fn latency_ratio_grows_with_problem_size() {
        let model = NeuroIsingModel::new();
        assert!(model.latency_ratio(100) < model.latency_ratio(10_000));
        assert!(model.latency_ratio(10_000) < model.latency_ratio(85_900));
    }

    #[test]
    fn latency_ratio_is_clamped_at_the_extremes() {
        let model = NeuroIsingModel::new();
        assert_eq!(model.latency_ratio(10), NEURO_ISING_LATENCY_RATIO[0]);
        assert_eq!(
            model.latency_ratio(1_000_000),
            NEURO_ISING_LATENCY_RATIO[NEURO_ISING_LATENCY_RATIO.len() - 1]
        );
    }

    #[test]
    fn latency_scales_taxi_latency() {
        let model = NeuroIsingModel::new();
        let t = model.latency_seconds(1_060, 2.0);
        assert!(t > 2.0 * 5.0 && t < 2.0 * 12.0);
    }

    #[test]
    fn surrogate_produces_valid_tours() {
        let instance = clustered_instance("neuro", 140, 6, 4);
        let model = NeuroIsingModel::new();
        let (tour, length) = model.solve_surrogate(&instance, 12).unwrap();
        assert!(tour.is_valid_for(&instance));
        assert!(length > 0.0);
    }
}
