//! Classical TSP construction heuristics and local search.
//!
//! These serve two purposes in the reproduction: they provide the *reference tour* used
//! as the optimal-ratio denominator on synthetic instances (where the published TSPLIB
//! optimum does not apply), and they are the comparison heuristics for the ablation
//! benches.
//!
//! All entry points consume the flat [`DistanceMatrix`]; the tour/path length kernels
//! gather edge distances in [`LANES`]-wide chunks (array temporaries the autovectorizer
//! can lower to SIMD) while accumulating strictly sequentially, so results are
//! bit-identical to a scalar loop. Exhaustive 2-opt/Or-opt remain the default; the
//! `*_neighbors` variants prune move generation to k-nearest candidate lists
//! ([`NeighborLists`]) and are opt-in (they may visit moves in a different order, so
//! their tours can differ from — but never invalidate — the exhaustive search).

use taxi_dist::{DistanceMatrix, NeighborLists, LANES};

/// Reusable scratch buffers for the construction heuristics and local searches.
///
/// One scratch per worker turns the whole heuristic stack (`nearest_neighbor_*`,
/// `greedy_edge_tour`, Or-opt relocation) into zero-allocation operations once the
/// buffers have grown to the largest sub-problem seen; the `*_into` / `*_with` variants
/// below consume it. Results are identical to the allocating entry points.
#[derive(Debug, Clone, Default)]
pub struct HeuristicScratch {
    visited: Vec<bool>,
    // Or-opt relocation buffers.
    segment: Vec<usize>,
    trial: Vec<usize>,
    candidate: Vec<usize>,
    // Greedy-edge construction buffers.
    edges: Vec<(u32, u32)>,
    degree: Vec<u8>,
    component: Vec<u32>,
    /// Cycle adjacency: every vertex ends with degree ≤ 2.
    adjacency: Vec<[u32; 2]>,
    adj_len: Vec<u8>,
    // Neighbor-pruned local-search buffers (used only when a neighbor limit is set).
    neighbors: NeighborLists,
    knn_scratch: Vec<(f64, u32)>,
    position: Vec<u32>,
}

impl HeuristicScratch {
    /// Creates an empty (cold) scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Length of the closed tour `order` under `distances`.
///
/// The edge distances are gathered [`LANES`] at a time into an array temporary, but the
/// accumulation is strictly sequential (edge 0, edge 1, ...), so the sum is bit-identical
/// to the scalar loop for every input.
///
/// # Panics
///
/// Panics if `order` references cities outside the matrix.
pub fn tour_length(distances: &DistanceMatrix, order: &[usize]) -> f64 {
    let n = order.len();
    if n < 2 {
        return 0.0;
    }
    let mut sum = path_length(distances, order);
    sum += distances.get(order[n - 1], order[0]);
    sum
}

/// Length of the open path `order` under `distances` (same chunked-gather, sequential-sum
/// scheme as [`tour_length`]).
///
/// # Panics
///
/// Panics if `order` references cities outside the matrix.
pub fn path_length(distances: &DistanceMatrix, order: &[usize]) -> f64 {
    let n = order.len();
    if n < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut gathered = [0.0f64; LANES];
    let edges = n - 1;
    let mut i = 0;
    while i + LANES <= edges {
        for l in 0..LANES {
            gathered[l] = distances.get(order[i + l], order[i + l + 1]);
        }
        for &g in &gathered {
            sum += g;
        }
        i += LANES;
    }
    while i < edges {
        sum += distances.get(order[i], order[i + 1]);
        i += 1;
    }
    sum
}

/// Index of the nearest unvisited city from `row` (first minimum wins; NaN distances are
/// never selected while a non-NaN candidate exists). Returns `None` when every city is
/// visited.
fn nearest_unvisited(row: &[f64], visited: &[bool]) -> Option<usize> {
    let mut best = f64::NAN;
    let mut best_idx = None;
    for (c, (&d, &seen)) in row.iter().zip(visited).enumerate() {
        if seen {
            continue;
        }
        if best_idx.is_none() || d.total_cmp(&best) == std::cmp::Ordering::Less {
            best = d;
            best_idx = Some(c);
        }
    }
    best_idx
}

/// Nearest-neighbour construction starting at `start`.
///
/// # Panics
///
/// Panics if the matrix is empty or `start` is out of range.
pub fn nearest_neighbor_tour(distances: &DistanceMatrix, start: usize) -> Vec<usize> {
    let mut order = Vec::with_capacity(distances.n());
    nearest_neighbor_tour_into(distances, start, &mut HeuristicScratch::new(), &mut order);
    order
}

/// Buffer-reusing form of [`nearest_neighbor_tour`]: writes the order into `out`
/// (cleared first).
///
/// # Panics
///
/// Panics if the matrix is empty or `start` is out of range.
pub fn nearest_neighbor_tour_into(
    distances: &DistanceMatrix,
    start: usize,
    scratch: &mut HeuristicScratch,
    out: &mut Vec<usize>,
) {
    let n = distances.n();
    assert!(n > 0 && start < n, "start city must exist");
    scratch.visited.clear();
    scratch.visited.resize(n, false);
    out.clear();
    let mut current = start;
    scratch.visited[current] = true;
    out.push(current);
    for _ in 1..n {
        let next = nearest_unvisited(distances.row(current), &scratch.visited)
            .expect("an unvisited city remains");
        scratch.visited[next] = true;
        out.push(next);
        current = next;
    }
}

/// Greedy-edge construction: repeatedly adds the shortest edge that keeps the partial
/// solution a set of simple paths, then closes the cycle.
///
/// # Panics
///
/// Panics if the matrix is empty.
pub fn greedy_edge_tour(distances: &DistanceMatrix) -> Vec<usize> {
    let mut order = Vec::with_capacity(distances.n());
    greedy_edge_tour_into(distances, &mut HeuristicScratch::new(), &mut order);
    order
}

/// Buffer-reusing form of [`greedy_edge_tour`]: the edge list, union-find and adjacency
/// tables come from `scratch`, and the tour is written into `out` (cleared first).
///
/// # Panics
///
/// Panics if the matrix is empty.
pub fn greedy_edge_tour_into(
    distances: &DistanceMatrix,
    scratch: &mut HeuristicScratch,
    out: &mut Vec<usize>,
) {
    let n = distances.n();
    assert!(n > 0, "instance must have at least one city");
    out.clear();
    if n == 1 {
        out.push(0);
        return;
    }
    let edges = &mut scratch.edges;
    edges.clear();
    edges.extend((0..n).flat_map(|i| ((i + 1)..n).map(move |j| (i as u32, j as u32))));
    // Tie-break equal-length edges by (a, b): identical to a stable sort of the
    // lexicographically generated list, without the merge-sort scratch allocation.
    edges.sort_unstable_by(|&(a, b), &(c, d)| {
        distances
            .get(a as usize, b as usize)
            .total_cmp(&distances.get(c as usize, d as usize))
            .then_with(|| (a, b).cmp(&(c, d)))
    });
    scratch.degree.clear();
    scratch.degree.resize(n, 0);
    scratch.component.clear();
    scratch.component.extend(0..n as u32);
    scratch.adjacency.clear();
    scratch.adjacency.resize(n, [u32::MAX; 2]);
    scratch.adj_len.clear();
    scratch.adj_len.resize(n, 0);
    fn find(component: &mut [u32], x: u32) -> u32 {
        // Iterative find with full path compression.
        let mut root = x;
        while component[root as usize] != root {
            root = component[root as usize];
        }
        let mut walk = x;
        while component[walk as usize] != root {
            let next = component[walk as usize];
            component[walk as usize] = root;
            walk = next;
        }
        root
    }
    let push_edge = |adjacency: &mut [[u32; 2]], adj_len: &mut [u8], a: u32, b: u32| {
        adjacency[a as usize][adj_len[a as usize] as usize] = b;
        adj_len[a as usize] += 1;
    };
    let mut added = 0usize;
    for idx in 0..edges.len() {
        let (a, b) = edges[idx];
        if added == n - 1 {
            break;
        }
        if scratch.degree[a as usize] >= 2 || scratch.degree[b as usize] >= 2 {
            continue;
        }
        let (ra, rb) = (
            find(&mut scratch.component, a),
            find(&mut scratch.component, b),
        );
        if ra == rb {
            continue;
        }
        scratch.component[rb as usize] = ra;
        scratch.degree[a as usize] += 1;
        scratch.degree[b as usize] += 1;
        push_edge(&mut scratch.adjacency, &mut scratch.adj_len, a, b);
        push_edge(&mut scratch.adjacency, &mut scratch.adj_len, b, a);
        added += 1;
    }
    // Close the cycle: connect the two remaining endpoints (degree 1).
    let mut first_endpoint = u32::MAX;
    let mut second_endpoint = u32::MAX;
    let mut endpoint_count = 0usize;
    for c in 0..n {
        if scratch.degree[c] <= 1 {
            endpoint_count += 1;
            if first_endpoint == u32::MAX {
                first_endpoint = c as u32;
            } else if second_endpoint == u32::MAX {
                second_endpoint = c as u32;
            }
        }
    }
    if endpoint_count == 2 {
        push_edge(
            &mut scratch.adjacency,
            &mut scratch.adj_len,
            first_endpoint,
            second_endpoint,
        );
        push_edge(
            &mut scratch.adjacency,
            &mut scratch.adj_len,
            second_endpoint,
            first_endpoint,
        );
    }
    // Walk the cycle.
    let mut prev = u32::MAX;
    let mut current = 0u32;
    for _ in 0..n {
        out.push(current as usize);
        let neighbors = &scratch.adjacency[current as usize];
        let len = scratch.adj_len[current as usize] as usize;
        let next = neighbors[..len]
            .iter()
            .copied()
            .find(|&c| c != prev)
            .unwrap_or_else(|| neighbors[0]);
        prev = current;
        current = next;
    }
}

/// 2-opt local search: repeatedly reverses tour segments while that shortens the tour,
/// up to `max_passes` full passes. Returns the number of improving moves applied.
pub fn two_opt(distances: &DistanceMatrix, order: &mut [usize], max_passes: usize) -> usize {
    let n = order.len();
    if n < 4 {
        return 0;
    }
    let mut improvements = 0usize;
    for _ in 0..max_passes {
        let mut improved = false;
        for i in 0..n - 1 {
            // Reversing order[i+1..=j] never moves order[i], so row a is loop-invariant
            // across the j-scan: the inner loop walks one contiguous row instead of
            // chasing per-row heap pointers. order[i+1] *does* change after a reversal,
            // so b is re-read each iteration, exactly like the original scan.
            let a = order[i];
            let row_a = distances.row(a);
            for j in i + 2..n {
                if i == 0 && j == n - 1 {
                    continue;
                }
                let b = order[i + 1];
                let c = order[j];
                let d = order[(j + 1) % n];
                let delta = row_a[c] + distances.get(b, d) - row_a[b] - distances.get(c, d);
                if delta < -1e-12 {
                    order[i + 1..=j].reverse();
                    improvements += 1;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    improvements
}

/// Or-opt local search: relocates segments of 1–3 consecutive cities while that shortens
/// the tour, up to `max_passes` passes. Returns the number of improving moves applied.
pub fn or_opt(distances: &DistanceMatrix, order: &mut Vec<usize>, max_passes: usize) -> usize {
    or_opt_with(distances, order, max_passes, &mut HeuristicScratch::new())
}

/// Buffer-reusing form of [`or_opt`]: the segment/trial/candidate relocation buffers come
/// from `scratch`, so steady-state local search allocates nothing. Results are identical
/// to [`or_opt`].
pub fn or_opt_with(
    distances: &DistanceMatrix,
    order: &mut Vec<usize>,
    max_passes: usize,
    scratch: &mut HeuristicScratch,
) -> usize {
    let n = order.len();
    if n < 5 {
        return 0;
    }
    let mut improvements = 0usize;
    for _ in 0..max_passes {
        let mut improved = false;
        for seg_len in 1..=3usize {
            let mut i = 0;
            while i + seg_len < order.len() {
                if relocate_segment(distances, order, i, seg_len, false, scratch).is_some() {
                    improvements += 1;
                    improved = true;
                }
                i += 1;
            }
        }
        if !improved {
            break;
        }
    }
    improvements
}

/// One Or-opt relocation attempt for `order[i..i + seg_len]`; shared by the cyclic and
/// open-path searches (`path_mode` pins the first/last positions). Returns the chosen
/// insertion position when an improving move was applied.
fn relocate_segment(
    distances: &DistanceMatrix,
    order: &mut Vec<usize>,
    i: usize,
    seg_len: usize,
    path_mode: bool,
    scratch: &mut HeuristicScratch,
) -> Option<usize> {
    let length_of = |o: &[usize]| {
        if path_mode {
            path_length(distances, o)
        } else {
            tour_length(distances, o)
        }
    };
    let HeuristicScratch {
        segment,
        trial,
        candidate,
        ..
    } = scratch;
    let before = length_of(order);
    segment.clear();
    segment.extend_from_slice(&order[i..i + seg_len]);
    trial.clear();
    trial.extend(order.iter().copied().filter(|c| !segment.contains(c)));
    let mut best_len = before;
    let mut best_pos = None;
    let (first_pos, last_pos) = if path_mode {
        (1, trial.len().saturating_sub(1))
    } else {
        (0, trial.len())
    };
    for pos in first_pos..=last_pos {
        candidate.clear();
        candidate.extend_from_slice(trial);
        for (offset, &c) in segment.iter().enumerate() {
            candidate.insert(pos + offset, c);
        }
        let len = length_of(candidate);
        if len < best_len - 1e-12 {
            best_len = len;
            best_pos = Some(pos);
        }
    }
    if let Some(pos) = best_pos {
        for (offset, &c) in segment.iter().enumerate() {
            trial.insert(pos + offset, c);
        }
        order.clear();
        order.extend_from_slice(trial);
    }
    best_pos
}

/// Nearest-neighbour open-path construction from `start`, forced to terminate at `end`.
///
/// # Panics
///
/// Panics if the matrix is empty, either endpoint is out of range, or `start == end` on
/// a multi-city matrix (a Hamiltonian path cannot start and end at the same city).
pub fn nearest_neighbor_path(distances: &DistanceMatrix, start: usize, end: usize) -> Vec<usize> {
    let mut order = Vec::with_capacity(distances.n());
    nearest_neighbor_path_into(
        distances,
        start,
        end,
        &mut HeuristicScratch::new(),
        &mut order,
    );
    order
}

/// Buffer-reusing form of [`nearest_neighbor_path`]: writes the order into `out`
/// (cleared first).
///
/// # Panics
///
/// Same panic conditions as [`nearest_neighbor_path`].
pub fn nearest_neighbor_path_into(
    distances: &DistanceMatrix,
    start: usize,
    end: usize,
    scratch: &mut HeuristicScratch,
    out: &mut Vec<usize>,
) {
    let n = distances.n();
    assert!(n > 0 && start < n && end < n, "endpoints must exist");
    assert!(
        n == 1 || start != end,
        "start and end must differ for multi-city paths"
    );
    out.clear();
    if n == 1 {
        out.push(start);
        return;
    }
    scratch.visited.clear();
    scratch.visited.resize(n, false);
    scratch.visited[start] = true;
    scratch.visited[end] = true;
    out.push(start);
    let mut current = start;
    for _ in 0..n.saturating_sub(2) {
        let next = nearest_unvisited(distances.row(current), &scratch.visited)
            .expect("an unvisited interior city remains");
        scratch.visited[next] = true;
        out.push(next);
        current = next;
    }
    out.push(end);
}

/// 2-opt local search on an open path: reverses interior segments while that shortens the
/// path, keeping the first and last cities pinned. Returns the number of improving moves.
pub fn two_opt_path(distances: &DistanceMatrix, order: &mut [usize], max_passes: usize) -> usize {
    let n = order.len();
    if n < 4 {
        return 0;
    }
    let mut improvements = 0usize;
    for _ in 0..max_passes {
        let mut improved = false;
        // Reversing order[i+1..=j] replaces edges (i, i+1) and (j, j+1); both stay inside
        // the path, so the endpoints order[0] and order[n-1] are never moved.
        for i in 0..n - 2 {
            for j in i + 2..n - 1 {
                let a = order[i];
                let b = order[i + 1];
                let c = order[j];
                let d = order[j + 1];
                let delta = distances.get(a, c) + distances.get(b, d)
                    - distances.get(a, b)
                    - distances.get(c, d);
                if delta < -1e-12 {
                    order[i + 1..=j].reverse();
                    improvements += 1;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    improvements
}

/// Or-opt local search on an open path: relocates interior segments of 1–3 consecutive
/// cities while that shortens the path, keeping the endpoints pinned. Returns the number
/// of improving moves applied.
pub fn or_opt_path(distances: &DistanceMatrix, order: &mut Vec<usize>, max_passes: usize) -> usize {
    or_opt_path_with(distances, order, max_passes, &mut HeuristicScratch::new())
}

/// Buffer-reusing form of [`or_opt_path`]; insertion positions keep the pinned endpoints
/// in place. Results are identical to [`or_opt_path`].
pub fn or_opt_path_with(
    distances: &DistanceMatrix,
    order: &mut Vec<usize>,
    max_passes: usize,
    scratch: &mut HeuristicScratch,
) -> usize {
    let n = order.len();
    if n < 5 {
        return 0;
    }
    let mut improvements = 0usize;
    for _ in 0..max_passes {
        let mut improved = false;
        for seg_len in 1..=3usize {
            let mut i = 1;
            while i + seg_len < order.len() {
                if relocate_segment(distances, order, i, seg_len, true, scratch).is_some() {
                    improvements += 1;
                    improved = true;
                }
                i += 1;
            }
        }
        if !improved {
            break;
        }
    }
    improvements
}

// ---------------------------------------------------------------------------
// Neighbor-pruned local search (opt-in).
// ---------------------------------------------------------------------------

/// Rebuilds `position` so `position[city] = index in order`.
fn index_positions(order: &[usize], position: &mut Vec<u32>, n: usize) {
    position.clear();
    position.resize(n, 0);
    for (idx, &c) in order.iter().enumerate() {
        position[c] = idx as u32;
    }
}

/// Neighbor-pruned 2-opt on a closed tour: only moves whose removed-edge endpoint pairs
/// are k-nearest neighbors are examined, making one pass O(n·k) instead of O(n²). The
/// move *order* differs from the exhaustive scan, so the resulting tour may differ from
/// [`two_opt`]; it is always a valid permutation and never longer than the input.
pub fn two_opt_neighbors(
    distances: &DistanceMatrix,
    order: &mut [usize],
    max_passes: usize,
    lists: &NeighborLists,
    position: &mut Vec<u32>,
) -> usize {
    let n = order.len();
    if n < 4 {
        return 0;
    }
    let mut improvements = 0usize;
    for _ in 0..max_passes {
        let mut improved = false;
        index_positions(order, position, distances.n());
        for i in 0..n - 1 {
            let a = order[i];
            let b = order[i + 1];
            let row_a = distances.row(a);
            let d_ab = row_a[b];
            for &cand in lists.neighbors(a) {
                let c = cand as usize;
                let j = position[c] as usize;
                if j < i + 2 || (i == 0 && j == n - 1) || j >= n {
                    continue;
                }
                // Candidates are sorted ascending: once d(a, c) ≥ d(a, b) no further
                // candidate can pay for the reversal through the a-side edge.
                if row_a[c] >= d_ab {
                    break;
                }
                let d = order[(j + 1) % n];
                let delta = row_a[c] + distances.get(b, d) - d_ab - distances.get(c, d);
                if delta < -1e-12 {
                    order[i + 1..=j].reverse();
                    for (idx, &city) in order.iter().enumerate().take(j + 1).skip(i + 1) {
                        position[city] = idx as u32;
                    }
                    improvements += 1;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            break;
        }
    }
    improvements
}

/// Neighbor-pruned 2-opt on an open path (endpoints pinned); the path-mode counterpart
/// of [`two_opt_neighbors`].
pub fn two_opt_path_neighbors(
    distances: &DistanceMatrix,
    order: &mut [usize],
    max_passes: usize,
    lists: &NeighborLists,
    position: &mut Vec<u32>,
) -> usize {
    let n = order.len();
    if n < 4 {
        return 0;
    }
    let mut improvements = 0usize;
    for _ in 0..max_passes {
        let mut improved = false;
        index_positions(order, position, distances.n());
        for i in 0..n - 2 {
            let a = order[i];
            let b = order[i + 1];
            let row_a = distances.row(a);
            let d_ab = row_a[b];
            for &cand in lists.neighbors(a) {
                let c = cand as usize;
                let j = position[c] as usize;
                if j < i + 2 || j >= n - 1 {
                    continue;
                }
                if row_a[c] >= d_ab {
                    break;
                }
                let d = order[j + 1];
                let delta = row_a[c] + distances.get(b, d) - d_ab - distances.get(c, d);
                if delta < -1e-12 {
                    order[i + 1..=j].reverse();
                    for (idx, &city) in order.iter().enumerate().take(j + 1).skip(i + 1) {
                        position[city] = idx as u32;
                    }
                    improvements += 1;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            break;
        }
    }
    improvements
}

/// Neighbor-pruned Or-opt (cyclic or path mode): single-city relocations next to a
/// k-nearest neighbor, evaluated by O(1) edge deltas instead of full-tour recomputation.
fn or_opt_neighbors_impl(
    distances: &DistanceMatrix,
    order: &mut Vec<usize>,
    max_passes: usize,
    lists: &NeighborLists,
    path_mode: bool,
    scratch: &mut HeuristicScratch,
) -> usize {
    let n = order.len();
    if n < 5 {
        return 0;
    }
    let mut improvements = 0usize;
    for _ in 0..max_passes {
        let mut improved = false;
        index_positions(order, &mut scratch.position, distances.n());
        let lo = usize::from(path_mode);
        let hi = if path_mode { n - 1 } else { n };
        for i in lo..hi {
            let s = order[i];
            let prev = order[(i + n - 1) % n];
            let next = order[(i + 1) % n];
            if path_mode && (i == 0 || i == n - 1) {
                continue;
            }
            // Cost of snipping s out of the tour.
            let removal_gain =
                distances.get(prev, s) + distances.get(s, next) - distances.get(prev, next);
            let mut best_delta = -1e-12;
            let mut best_after: Option<usize> = None;
            for &cand in lists.neighbors(s) {
                let u = cand as usize;
                let j = scratch.position[u] as usize;
                // Skip no-op anchors: u is s itself, or s already follows u.
                if j == i || (j + 1) % n == i {
                    continue;
                }
                // Insert s between u and its successor v (v must exist in path mode).
                if path_mode && j >= n - 1 {
                    continue;
                }
                let v = order[(j + 1) % n];
                if v == s {
                    continue;
                }
                let insertion_cost =
                    distances.get(u, s) + distances.get(s, v) - distances.get(u, v);
                let delta = insertion_cost - removal_gain;
                if delta < best_delta {
                    best_delta = delta;
                    best_after = Some(j);
                }
            }
            if let Some(j) = best_after {
                // Rebuild the order with s moved to sit after position j.
                let u = order[j];
                scratch.trial.clear();
                scratch
                    .trial
                    .extend(order.iter().copied().filter(|&c| c != s));
                let insert_at = scratch
                    .trial
                    .iter()
                    .position(|&c| c == u)
                    .expect("anchor city remains")
                    + 1;
                scratch.trial.insert(insert_at, s);
                order.clear();
                order.extend_from_slice(&scratch.trial);
                index_positions(order, &mut scratch.position, distances.n());
                improvements += 1;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    improvements
}

/// Reference open path between fixed endpoints: nearest-neighbour construction followed
/// by bounded path-preserving 2-opt and Or-opt.
///
/// # Panics
///
/// Panics if the matrix is empty, either endpoint is out of range, or `start == end` on
/// a multi-city matrix (see [`nearest_neighbor_path`]).
pub fn reference_path(distances: &DistanceMatrix, start: usize, end: usize) -> Vec<usize> {
    let mut order = Vec::with_capacity(distances.n());
    reference_path_into(
        distances,
        start,
        end,
        &mut HeuristicScratch::new(),
        &mut order,
    );
    order
}

/// Buffer-reusing form of [`reference_path`]: writes the path into `out` (cleared
/// first); once `scratch` and `out` are warm the whole construction + local search runs
/// without heap allocation.
///
/// # Panics
///
/// Same panic conditions as [`reference_path`].
pub fn reference_path_into(
    distances: &DistanceMatrix,
    start: usize,
    end: usize,
    scratch: &mut HeuristicScratch,
    out: &mut Vec<usize>,
) {
    nearest_neighbor_path_into(distances, start, end, scratch, out);
    two_opt_path(distances, out, 8);
    if distances.n() <= 400 {
        or_opt_path_with(distances, out, 2, scratch);
        two_opt_path(distances, out, 4);
    }
}

/// Reference tour used as the optimal-ratio denominator on synthetic instances:
/// nearest-neighbour construction followed by 2-opt (and Or-opt for small instances).
///
/// The local-search effort is bounded so that even the largest benchmark instances finish
/// in reasonable time; for instances above `two_opt_limit` cities only the construction
/// heuristic plus a single bounded 2-opt pass is applied.
pub fn reference_tour(distances: &DistanceMatrix) -> Vec<usize> {
    let mut order = Vec::with_capacity(distances.n());
    reference_tour_into(distances, &mut HeuristicScratch::new(), &mut order);
    order
}

/// Buffer-reusing form of [`reference_tour`]: writes the tour into `out` (cleared
/// first); once `scratch` and `out` are warm the whole construction + local search runs
/// without heap allocation.
pub fn reference_tour_into(
    distances: &DistanceMatrix,
    scratch: &mut HeuristicScratch,
    out: &mut Vec<usize>,
) {
    let n = distances.n();
    nearest_neighbor_tour_into(distances, 0, scratch, out);
    let two_opt_limit = 3_000;
    if n <= two_opt_limit {
        two_opt(distances, out, 8);
        if n <= 400 {
            or_opt_with(distances, out, 2, scratch);
            two_opt(distances, out, 4);
        }
    } else {
        two_opt(distances, out, 1);
    }
}

/// Like [`reference_tour_into`], but with neighbor-pruned local search when
/// `neighbor_limit > 0`: a k-nearest candidate list is built (reusing scratch buffers)
/// and 2-opt/Or-opt only examine neighbor moves, making each pass O(n·k). A limit of 0
/// is exactly [`reference_tour_into`] (exhaustive, bit-identical legacy behaviour).
pub fn reference_tour_into_limited(
    distances: &DistanceMatrix,
    scratch: &mut HeuristicScratch,
    out: &mut Vec<usize>,
    neighbor_limit: usize,
) {
    let n = distances.n();
    if neighbor_limit == 0 || n <= neighbor_limit + 2 {
        reference_tour_into(distances, scratch, out);
        return;
    }
    nearest_neighbor_tour_into(distances, 0, scratch, out);
    let HeuristicScratch {
        neighbors,
        knn_scratch,
        ..
    } = scratch;
    neighbors.rebuild_from_matrix(distances, neighbor_limit, knn_scratch);
    let lists = std::mem::take(&mut scratch.neighbors);
    two_opt_neighbors(distances, out, 8, &lists, &mut scratch.position);
    if n <= 400 {
        or_opt_neighbors_impl(distances, out, 2, &lists, false, scratch);
        two_opt_neighbors(distances, out, 4, &lists, &mut scratch.position);
    }
    scratch.neighbors = lists;
}

/// Like [`two_opt`], but with neighbor-pruned candidate scans when `neighbor_limit > 0`
/// (k-nearest lists are rebuilt from `scratch`, making each pass O(n·k)). A limit of 0
/// is exactly [`two_opt`] with the same `max_passes` (exhaustive legacy behaviour).
pub fn two_opt_limited(
    distances: &DistanceMatrix,
    order: &mut [usize],
    max_passes: usize,
    scratch: &mut HeuristicScratch,
    neighbor_limit: usize,
) -> usize {
    let n = distances.n();
    if neighbor_limit == 0 || n <= neighbor_limit + 2 {
        return two_opt(distances, order, max_passes);
    }
    let HeuristicScratch {
        neighbors,
        knn_scratch,
        ..
    } = scratch;
    neighbors.rebuild_from_matrix(distances, neighbor_limit, knn_scratch);
    let lists = std::mem::take(&mut scratch.neighbors);
    let improvements =
        two_opt_neighbors(distances, order, max_passes, &lists, &mut scratch.position);
    scratch.neighbors = lists;
    improvements
}

/// Like [`reference_path_into`], but with neighbor-pruned local search when
/// `neighbor_limit > 0` (see [`reference_tour_into_limited`]). A limit of 0 is exactly
/// [`reference_path_into`].
///
/// # Panics
///
/// Same panic conditions as [`reference_path`].
pub fn reference_path_into_limited(
    distances: &DistanceMatrix,
    start: usize,
    end: usize,
    scratch: &mut HeuristicScratch,
    out: &mut Vec<usize>,
    neighbor_limit: usize,
) {
    let n = distances.n();
    if neighbor_limit == 0 || n <= neighbor_limit + 2 {
        reference_path_into(distances, start, end, scratch, out);
        return;
    }
    nearest_neighbor_path_into(distances, start, end, scratch, out);
    let HeuristicScratch {
        neighbors,
        knn_scratch,
        ..
    } = scratch;
    neighbors.rebuild_from_matrix(distances, neighbor_limit, knn_scratch);
    let lists = std::mem::take(&mut scratch.neighbors);
    two_opt_path_neighbors(distances, out, 8, &lists, &mut scratch.position);
    if n <= 400 {
        or_opt_neighbors_impl(distances, out, 2, &lists, true, scratch);
        two_opt_path_neighbors(distances, out, 4, &lists, &mut scratch.position);
    }
    scratch.neighbors = lists;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> (DistanceMatrix, f64) {
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let a = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                (a.cos(), a.sin())
            })
            .collect();
        let d = DistanceMatrix::from_fn(n, |i, j| {
            let (x1, y1) = pts[i];
            let (x2, y2) = pts[j];
            ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt()
        });
        let opt = (0..n).map(|i| d.get(i, (i + 1) % n)).sum();
        (d, opt)
    }

    fn is_permutation(order: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        order.len() == n
            && order.iter().all(|&c| {
                if c < n && !seen[c] {
                    seen[c] = true;
                    true
                } else {
                    false
                }
            })
    }

    #[test]
    fn nearest_neighbor_returns_permutation() {
        let (d, _) = ring(15);
        let t = nearest_neighbor_tour(&d, 3);
        assert!(is_permutation(&t, 15));
        assert_eq!(t[0], 3);
    }

    #[test]
    fn greedy_edge_returns_permutation() {
        let (d, _) = ring(20);
        let t = greedy_edge_tour(&d);
        assert!(is_permutation(&t, 20));
    }

    #[test]
    fn greedy_edge_is_optimal_on_a_ring() {
        let (d, opt) = ring(16);
        let t = greedy_edge_tour(&d);
        assert!((tour_length(&d, &t) - opt).abs() < 1e-9);
    }

    #[test]
    fn two_opt_removes_crossings() {
        let (d, opt) = ring(12);
        // Start from a deliberately scrambled tour.
        let mut order: Vec<usize> = (0..12).map(|i| (i * 5) % 12).collect();
        assert!(is_permutation(&order, 12));
        let before = tour_length(&d, &order);
        let moves = two_opt(&d, &mut order, 50);
        let after = tour_length(&d, &order);
        assert!(moves > 0);
        assert!(after < before);
        assert!(
            (after - opt).abs() / opt < 0.05,
            "2-opt should nearly close a ring"
        );
        assert!(is_permutation(&order, 12));
    }

    #[test]
    fn or_opt_never_worsens_the_tour() {
        let (d, _) = ring(10);
        let mut order: Vec<usize> = (0..10).map(|i| (i * 3) % 10).collect();
        let before = tour_length(&d, &order);
        or_opt(&d, &mut order, 3);
        let after = tour_length(&d, &order);
        assert!(after <= before + 1e-9);
        assert!(is_permutation(&order, 10));
    }

    #[test]
    fn reference_tour_is_close_to_exact_on_small_instances() {
        let (d, opt) = ring(14);
        let reference = reference_tour(&d);
        let len = tour_length(&d, &reference);
        assert!(len <= opt * 1.05);
    }

    #[test]
    fn tour_length_of_trivial_tours_is_zero() {
        let d = DistanceMatrix::zeros(1);
        assert_eq!(tour_length(&d, &[0]), 0.0);
    }

    /// The chunked-gather length kernels must match a naive scalar sum bit-for-bit for
    /// every length, including remainders shorter than the lane width.
    #[test]
    fn chunked_lengths_are_bit_identical_to_scalar_reference() {
        for n in 2..24usize {
            let (d, _) = ring(n);
            let order: Vec<usize> = (0..n).map(|i| (i * 7) % n).collect();
            if !is_permutation(&order, n) {
                continue;
            }
            let scalar_tour: f64 = (0..n).map(|i| d.get(order[i], order[(i + 1) % n])).sum();
            let scalar_path: f64 = order.windows(2).map(|p| d.get(p[0], p[1])).sum();
            assert_eq!(tour_length(&d, &order), scalar_tour, "tour n={n}");
            assert_eq!(path_length(&d, &order), scalar_path, "path n={n}");
        }
    }

    #[test]
    fn two_opt_leaves_small_tours_untouched() {
        let (d, _) = ring(3);
        let mut order = vec![0, 1, 2];
        assert_eq!(two_opt(&d, &mut order, 10), 0);
        assert_eq!(order, vec![0, 1, 2]);
    }

    /// Cities on a line: the optimal 0→(n-1) path is the sorted sweep of length n-1.
    fn line(n: usize) -> DistanceMatrix {
        DistanceMatrix::from_fn(n, |i, j| (i as f64 - j as f64).abs())
    }

    #[test]
    fn path_variants_pin_endpoints_and_improve() {
        let d = line(9);
        let mut order = nearest_neighbor_path(&d, 0, 8);
        assert_eq!(order[0], 0);
        assert_eq!(*order.last().unwrap(), 8);
        assert!(is_permutation(&order, 9));
        // Scramble the interior, then let the path local search repair it.
        order = vec![0, 5, 2, 7, 1, 6, 3, 4, 8];
        let before = path_length(&d, &order);
        two_opt_path(&d, &mut order, 50);
        or_opt_path(&d, &mut order, 3);
        let after = path_length(&d, &order);
        assert!(after < before);
        assert_eq!(order[0], 0);
        assert_eq!(*order.last().unwrap(), 8);
        assert!(is_permutation(&order, 9));
    }

    #[test]
    fn reference_path_is_optimal_on_a_line() {
        let d = line(10);
        let order = reference_path(&d, 0, 9);
        assert!((path_length(&d, &order) - 9.0).abs() < 1e-9);
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn reference_path_handles_interior_endpoints() {
        let d = line(8);
        let order = reference_path(&d, 3, 5);
        assert_eq!(order[0], 3);
        assert_eq!(*order.last().unwrap(), 5);
        assert!(is_permutation(&order, 8));
    }

    #[test]
    #[should_panic(expected = "start and end must differ")]
    fn path_construction_rejects_equal_endpoints_on_multi_city_matrices() {
        let d = line(5);
        nearest_neighbor_path(&d, 2, 2);
    }

    /// The scratch-based variants must be behaviourally transparent: same tours as the
    /// allocating entry points, including on tie-heavy symmetric instances where the
    /// greedy-edge sort order matters.
    #[test]
    fn scratch_variants_match_allocating_entry_points() {
        let mut scratch = HeuristicScratch::new();
        let mut out = Vec::new();
        for n in [6usize, 11, 16] {
            let (d, _) = ring(n);
            greedy_edge_tour_into(&d, &mut scratch, &mut out);
            assert_eq!(out, greedy_edge_tour(&d), "greedy-edge n={n}");
            nearest_neighbor_tour_into(&d, 2 % n, &mut scratch, &mut out);
            assert_eq!(out, nearest_neighbor_tour(&d, 2 % n), "nn n={n}");
            reference_tour_into(&d, &mut scratch, &mut out);
            assert_eq!(out, reference_tour(&d), "reference n={n}");
            reference_path_into(&d, 0, n - 1, &mut scratch, &mut out);
            assert_eq!(out, reference_path(&d, 0, n - 1), "reference path n={n}");
        }
        let d = line(9);
        let mut a = vec![0, 5, 2, 7, 1, 6, 3, 4, 8];
        let mut b = a.clone();
        let moves_a = or_opt_path(&d, &mut a, 3);
        let moves_b = or_opt_path_with(&d, &mut b, 3, &mut scratch);
        assert_eq!(a, b);
        assert_eq!(moves_a, moves_b);
    }

    /// A neighbor limit of zero must route through the exhaustive legacy search and
    /// produce bit-identical tours; a nonzero limit must still produce valid tours that
    /// 2-opt actually improved.
    #[test]
    fn limited_reference_tours_are_valid_and_legacy_at_zero() {
        let mut scratch = HeuristicScratch::new();
        let mut out = Vec::new();
        for n in [10usize, 17, 40] {
            let (d, opt) = ring(n);
            reference_tour_into_limited(&d, &mut scratch, &mut out, 0);
            assert_eq!(out, reference_tour(&d), "limit=0 must be legacy, n={n}");
            for limit in [4usize, 8] {
                reference_tour_into_limited(&d, &mut scratch, &mut out, limit);
                assert!(is_permutation(&out, n), "n={n} limit={limit}");
                let len = tour_length(&d, &out);
                assert!(
                    len <= opt * 1.2 + 1e-9,
                    "pruned search strayed too far on a ring: n={n} limit={limit} {len} vs {opt}"
                );
                reference_path_into_limited(&d, 0, n - 1, &mut scratch, &mut out, limit);
                assert!(is_permutation(&out, n));
                assert_eq!(out[0], 0);
                assert_eq!(*out.last().unwrap(), n - 1);
            }
        }
    }

    #[test]
    fn held_karp_into_matches_held_karp() {
        use crate::exact::{held_karp_into, held_karp_path_into, HeldKarpScratch};
        let mut scratch = HeldKarpScratch::new();
        let mut out = Vec::new();
        for n in [5usize, 9, 12] {
            let (d, _) = ring(n);
            let fresh = crate::held_karp(&d).unwrap();
            let length = held_karp_into(&d, &mut scratch, &mut out).unwrap();
            assert_eq!(out, fresh.order);
            assert_eq!(length, fresh.length);
            let fresh = crate::held_karp_path(&d, 1, n - 2).unwrap();
            let length = held_karp_path_into(&d, 1, n - 2, &mut scratch, &mut out).unwrap();
            assert_eq!(out, fresh.order);
            assert_eq!(length, fresh.length);
        }
    }

    #[test]
    fn path_length_matches_manual_sum() {
        let d = line(4);
        assert!((path_length(&d, &[0, 2, 1, 3]) - 5.0).abs() < 1e-12);
        assert_eq!(path_length(&d, &[2]), 0.0);
    }
}
