//! Classical TSP construction heuristics and local search.
//!
//! These serve two purposes in the reproduction: they provide the *reference tour* used
//! as the optimal-ratio denominator on synthetic instances (where the published TSPLIB
//! optimum does not apply), and they are the comparison heuristics for the ablation
//! benches.

/// Length of the closed tour `order` under `distances`.
///
/// # Panics
///
/// Panics if `order` references cities outside the matrix.
pub fn tour_length(distances: &[Vec<f64>], order: &[usize]) -> f64 {
    let n = order.len();
    if n < 2 {
        return 0.0;
    }
    (0..n)
        .map(|i| distances[order[i]][order[(i + 1) % n]])
        .sum()
}

/// Nearest-neighbour construction starting at `start`.
///
/// # Panics
///
/// Panics if the matrix is empty or `start` is out of range.
pub fn nearest_neighbor_tour(distances: &[Vec<f64>], start: usize) -> Vec<usize> {
    let n = distances.len();
    assert!(n > 0 && start < n, "start city must exist");
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut current = start;
    visited[current] = true;
    order.push(current);
    for _ in 1..n {
        let next = (0..n)
            .filter(|&c| !visited[c])
            .min_by(|&a, &b| {
                distances[current][a]
                    .partial_cmp(&distances[current][b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("an unvisited city remains");
        visited[next] = true;
        order.push(next);
        current = next;
    }
    order
}

/// Greedy-edge construction: repeatedly adds the shortest edge that keeps the partial
/// solution a set of simple paths, then closes the cycle.
///
/// # Panics
///
/// Panics if the matrix is empty.
pub fn greedy_edge_tour(distances: &[Vec<f64>]) -> Vec<usize> {
    let n = distances.len();
    assert!(n > 0, "instance must have at least one city");
    if n == 1 {
        return vec![0];
    }
    let mut edges: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .collect();
    edges.sort_by(|&(a, b), &(c, d)| {
        distances[a][b]
            .partial_cmp(&distances[c][d])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut degree = vec![0usize; n];
    let mut component: Vec<usize> = (0..n).collect();
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
    fn find(component: &mut Vec<usize>, x: usize) -> usize {
        if component[x] != x {
            let root = find(component, component[x]);
            component[x] = root;
        }
        component[x]
    }
    let mut added = 0usize;
    for (a, b) in edges {
        if added == n - 1 {
            break;
        }
        if degree[a] >= 2 || degree[b] >= 2 {
            continue;
        }
        let (ra, rb) = (find(&mut component, a), find(&mut component, b));
        if ra == rb {
            continue;
        }
        component[rb] = ra;
        degree[a] += 1;
        degree[b] += 1;
        adjacency[a].push(b);
        adjacency[b].push(a);
        added += 1;
    }
    // Close the cycle: connect the two remaining endpoints (degree 1).
    let endpoints: Vec<usize> = (0..n).filter(|&c| degree[c] <= 1).collect();
    if endpoints.len() == 2 {
        adjacency[endpoints[0]].push(endpoints[1]);
        adjacency[endpoints[1]].push(endpoints[0]);
    }
    // Walk the cycle.
    let mut order = Vec::with_capacity(n);
    let mut prev = usize::MAX;
    let mut current = 0usize;
    for _ in 0..n {
        order.push(current);
        let next = adjacency[current]
            .iter()
            .copied()
            .find(|&c| c != prev)
            .unwrap_or_else(|| adjacency[current][0]);
        prev = current;
        current = next;
    }
    order
}

/// 2-opt local search: repeatedly reverses tour segments while that shortens the tour,
/// up to `max_passes` full passes. Returns the number of improving moves applied.
pub fn two_opt(distances: &[Vec<f64>], order: &mut [usize], max_passes: usize) -> usize {
    let n = order.len();
    if n < 4 {
        return 0;
    }
    let mut improvements = 0usize;
    for _ in 0..max_passes {
        let mut improved = false;
        for i in 0..n - 1 {
            for j in i + 2..n {
                if i == 0 && j == n - 1 {
                    continue;
                }
                let a = order[i];
                let b = order[i + 1];
                let c = order[j];
                let d = order[(j + 1) % n];
                let delta = distances[a][c] + distances[b][d] - distances[a][b] - distances[c][d];
                if delta < -1e-12 {
                    order[i + 1..=j].reverse();
                    improvements += 1;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    improvements
}

/// Or-opt local search: relocates segments of 1–3 consecutive cities while that shortens
/// the tour, up to `max_passes` passes. Returns the number of improving moves applied.
pub fn or_opt(distances: &[Vec<f64>], order: &mut Vec<usize>, max_passes: usize) -> usize {
    let n = order.len();
    if n < 5 {
        return 0;
    }
    let mut improvements = 0usize;
    for _ in 0..max_passes {
        let mut improved = false;
        for seg_len in 1..=3usize {
            let mut i = 0;
            while i + seg_len < order.len() {
                let before = tour_length(distances, order);
                let segment: Vec<usize> = order[i..i + seg_len].to_vec();
                let mut trial: Vec<usize> = order
                    .iter()
                    .copied()
                    .filter(|c| !segment.contains(c))
                    .collect();
                let mut best_len = before;
                let mut best_pos = None;
                for pos in 0..=trial.len() {
                    let mut candidate = trial.clone();
                    for (offset, &c) in segment.iter().enumerate() {
                        candidate.insert(pos + offset, c);
                    }
                    let len = tour_length(distances, &candidate);
                    if len < best_len - 1e-12 {
                        best_len = len;
                        best_pos = Some(pos);
                    }
                }
                if let Some(pos) = best_pos {
                    for (offset, &c) in segment.iter().enumerate() {
                        trial.insert(pos + offset, c);
                    }
                    *order = trial;
                    improvements += 1;
                    improved = true;
                }
                i += 1;
            }
        }
        if !improved {
            break;
        }
    }
    improvements
}

/// Length of the open path `order` under `distances`.
///
/// # Panics
///
/// Panics if `order` references cities outside the matrix.
pub fn path_length(distances: &[Vec<f64>], order: &[usize]) -> f64 {
    order
        .windows(2)
        .map(|pair| distances[pair[0]][pair[1]])
        .sum()
}

/// Nearest-neighbour open-path construction from `start`, forced to terminate at `end`.
///
/// # Panics
///
/// Panics if the matrix is empty, either endpoint is out of range, or `start == end` on
/// a multi-city matrix (a Hamiltonian path cannot start and end at the same city).
pub fn nearest_neighbor_path(distances: &[Vec<f64>], start: usize, end: usize) -> Vec<usize> {
    let n = distances.len();
    assert!(n > 0 && start < n && end < n, "endpoints must exist");
    assert!(
        n == 1 || start != end,
        "start and end must differ for multi-city paths"
    );
    if n == 1 {
        return vec![start];
    }
    let mut visited = vec![false; n];
    visited[start] = true;
    visited[end] = true;
    let mut order = vec![start];
    let mut current = start;
    for _ in 0..n.saturating_sub(2) {
        let next = (0..n)
            .filter(|&c| !visited[c])
            .min_by(|&a, &b| {
                distances[current][a]
                    .partial_cmp(&distances[current][b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("an unvisited interior city remains");
        visited[next] = true;
        order.push(next);
        current = next;
    }
    order.push(end);
    order
}

/// 2-opt local search on an open path: reverses interior segments while that shortens the
/// path, keeping the first and last cities pinned. Returns the number of improving moves.
pub fn two_opt_path(distances: &[Vec<f64>], order: &mut [usize], max_passes: usize) -> usize {
    let n = order.len();
    if n < 4 {
        return 0;
    }
    let mut improvements = 0usize;
    for _ in 0..max_passes {
        let mut improved = false;
        // Reversing order[i+1..=j] replaces edges (i, i+1) and (j, j+1); both stay inside
        // the path, so the endpoints order[0] and order[n-1] are never moved.
        for i in 0..n - 2 {
            for j in i + 2..n - 1 {
                let a = order[i];
                let b = order[i + 1];
                let c = order[j];
                let d = order[j + 1];
                let delta = distances[a][c] + distances[b][d] - distances[a][b] - distances[c][d];
                if delta < -1e-12 {
                    order[i + 1..=j].reverse();
                    improvements += 1;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    improvements
}

/// Or-opt local search on an open path: relocates interior segments of 1–3 consecutive
/// cities while that shortens the path, keeping the endpoints pinned. Returns the number
/// of improving moves applied.
pub fn or_opt_path(distances: &[Vec<f64>], order: &mut Vec<usize>, max_passes: usize) -> usize {
    let n = order.len();
    if n < 5 {
        return 0;
    }
    let mut improvements = 0usize;
    for _ in 0..max_passes {
        let mut improved = false;
        for seg_len in 1..=3usize {
            let mut i = 1;
            while i + seg_len < order.len() {
                let before = path_length(distances, order);
                let segment: Vec<usize> = order[i..i + seg_len].to_vec();
                let mut trial: Vec<usize> = order
                    .iter()
                    .copied()
                    .filter(|c| !segment.contains(c))
                    .collect();
                let mut best_len = before;
                let mut best_pos = None;
                // Insertion positions 1..len keep the pinned endpoints in place.
                for pos in 1..trial.len() {
                    let mut candidate = trial.clone();
                    for (offset, &c) in segment.iter().enumerate() {
                        candidate.insert(pos + offset, c);
                    }
                    let len = path_length(distances, &candidate);
                    if len < best_len - 1e-12 {
                        best_len = len;
                        best_pos = Some(pos);
                    }
                }
                if let Some(pos) = best_pos {
                    for (offset, &c) in segment.iter().enumerate() {
                        trial.insert(pos + offset, c);
                    }
                    *order = trial;
                    improvements += 1;
                    improved = true;
                }
                i += 1;
            }
        }
        if !improved {
            break;
        }
    }
    improvements
}

/// Reference open path between fixed endpoints: nearest-neighbour construction followed
/// by bounded path-preserving 2-opt and Or-opt.
///
/// # Panics
///
/// Panics if the matrix is empty, either endpoint is out of range, or `start == end` on
/// a multi-city matrix (see [`nearest_neighbor_path`]).
pub fn reference_path(distances: &[Vec<f64>], start: usize, end: usize) -> Vec<usize> {
    let mut order = nearest_neighbor_path(distances, start, end);
    two_opt_path(distances, &mut order, 8);
    if distances.len() <= 400 {
        or_opt_path(distances, &mut order, 2);
        two_opt_path(distances, &mut order, 4);
    }
    order
}

/// Reference tour used as the optimal-ratio denominator on synthetic instances:
/// nearest-neighbour construction followed by 2-opt (and Or-opt for small instances).
///
/// The local-search effort is bounded so that even the largest benchmark instances finish
/// in reasonable time; for instances above `two_opt_limit` cities only the construction
/// heuristic plus a single bounded 2-opt pass is applied.
pub fn reference_tour(distances: &[Vec<f64>]) -> Vec<usize> {
    let n = distances.len();
    let mut order = nearest_neighbor_tour(distances, 0);
    let two_opt_limit = 3_000;
    if n <= two_opt_limit {
        two_opt(distances, &mut order, 8);
        if n <= 400 {
            or_opt(distances, &mut order, 2);
            two_opt(distances, &mut order, 4);
        }
    } else {
        two_opt(distances, &mut order, 1);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> (Vec<Vec<f64>>, f64) {
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let a = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                (a.cos(), a.sin())
            })
            .collect();
        let d: Vec<Vec<f64>> = pts
            .iter()
            .map(|&(x1, y1)| {
                pts.iter()
                    .map(|&(x2, y2)| ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt())
                    .collect()
            })
            .collect();
        let opt = (0..n).map(|i| d[i][(i + 1) % n]).sum();
        (d, opt)
    }

    fn is_permutation(order: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        order.len() == n
            && order.iter().all(|&c| {
                if c < n && !seen[c] {
                    seen[c] = true;
                    true
                } else {
                    false
                }
            })
    }

    #[test]
    fn nearest_neighbor_returns_permutation() {
        let (d, _) = ring(15);
        let t = nearest_neighbor_tour(&d, 3);
        assert!(is_permutation(&t, 15));
        assert_eq!(t[0], 3);
    }

    #[test]
    fn greedy_edge_returns_permutation() {
        let (d, _) = ring(20);
        let t = greedy_edge_tour(&d);
        assert!(is_permutation(&t, 20));
    }

    #[test]
    fn greedy_edge_is_optimal_on_a_ring() {
        let (d, opt) = ring(16);
        let t = greedy_edge_tour(&d);
        assert!((tour_length(&d, &t) - opt).abs() < 1e-9);
    }

    #[test]
    fn two_opt_removes_crossings() {
        let (d, opt) = ring(12);
        // Start from a deliberately scrambled tour.
        let mut order: Vec<usize> = (0..12).map(|i| (i * 5) % 12).collect();
        assert!(is_permutation(&order, 12));
        let before = tour_length(&d, &order);
        let moves = two_opt(&d, &mut order, 50);
        let after = tour_length(&d, &order);
        assert!(moves > 0);
        assert!(after < before);
        assert!(
            (after - opt).abs() / opt < 0.05,
            "2-opt should nearly close a ring"
        );
        assert!(is_permutation(&order, 12));
    }

    #[test]
    fn or_opt_never_worsens_the_tour() {
        let (d, _) = ring(10);
        let mut order: Vec<usize> = (0..10).map(|i| (i * 3) % 10).collect();
        let before = tour_length(&d, &order);
        or_opt(&d, &mut order, 3);
        let after = tour_length(&d, &order);
        assert!(after <= before + 1e-9);
        assert!(is_permutation(&order, 10));
    }

    #[test]
    fn reference_tour_is_close_to_exact_on_small_instances() {
        let (d, opt) = ring(14);
        let reference = reference_tour(&d);
        let len = tour_length(&d, &reference);
        assert!(len <= opt * 1.05);
    }

    #[test]
    fn tour_length_of_trivial_tours_is_zero() {
        let d = vec![vec![0.0]];
        assert_eq!(tour_length(&d, &[0]), 0.0);
    }

    #[test]
    fn two_opt_leaves_small_tours_untouched() {
        let (d, _) = ring(3);
        let mut order = vec![0, 1, 2];
        assert_eq!(two_opt(&d, &mut order, 10), 0);
        assert_eq!(order, vec![0, 1, 2]);
    }

    /// Cities on a line: the optimal 0→(n-1) path is the sorted sweep of length n-1.
    fn line(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| (0..n).map(|j| (i as f64 - j as f64).abs()).collect())
            .collect()
    }

    #[test]
    fn path_variants_pin_endpoints_and_improve() {
        let d = line(9);
        let mut order = nearest_neighbor_path(&d, 0, 8);
        assert_eq!(order[0], 0);
        assert_eq!(*order.last().unwrap(), 8);
        assert!(is_permutation(&order, 9));
        // Scramble the interior, then let the path local search repair it.
        order = vec![0, 5, 2, 7, 1, 6, 3, 4, 8];
        let before = path_length(&d, &order);
        two_opt_path(&d, &mut order, 50);
        or_opt_path(&d, &mut order, 3);
        let after = path_length(&d, &order);
        assert!(after < before);
        assert_eq!(order[0], 0);
        assert_eq!(*order.last().unwrap(), 8);
        assert!(is_permutation(&order, 9));
    }

    #[test]
    fn reference_path_is_optimal_on_a_line() {
        let d = line(10);
        let order = reference_path(&d, 0, 9);
        assert!((path_length(&d, &order) - 9.0).abs() < 1e-9);
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn reference_path_handles_interior_endpoints() {
        let d = line(8);
        let order = reference_path(&d, 3, 5);
        assert_eq!(order[0], 3);
        assert_eq!(*order.last().unwrap(), 5);
        assert!(is_permutation(&order, 8));
    }

    #[test]
    #[should_panic(expected = "start and end must differ")]
    fn path_construction_rejects_equal_endpoints_on_multi_city_matrices() {
        let d = line(5);
        nearest_neighbor_path(&d, 2, 2);
    }

    #[test]
    fn path_length_matches_manual_sum() {
        let d = line(4);
        assert!((path_length(&d, &[0, 2, 1, 3]) - 5.0).abs() < 1e-12);
        assert_eq!(path_length(&d, &[2]), 0.0);
    }
}
