//! Exact TSP solving (Held–Karp) and a Concorde-style exact-solver projection model.

use taxi_dist::DistanceMatrix;

use crate::BaselineError;

/// Maximum instance size accepted by [`held_karp`] (the DP table is `2^n · n`).
pub const HELD_KARP_LIMIT: usize = 20;

/// An exact solution produced by [`held_karp`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExactSolution {
    /// Optimal visiting order (a cycle starting at city 0).
    pub order: Vec<usize>,
    /// Optimal cycle length.
    pub length: f64,
}

/// Reusable DP tables for [`held_karp_into`] / [`held_karp_path_into`].
///
/// The Held–Karp table is `2^n · n` entries — by far the largest allocation on the exact
/// solve path — so reusing it across sub-problems matters: once the tables have grown to
/// the largest size seen, every subsequent exact solve allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct HeldKarpScratch {
    dp: Vec<f64>,
    parent: Vec<u32>,
}

impl HeldKarpScratch {
    /// Creates an empty (cold) scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears and resizes the tables for an `n`-city solve.
    fn prepare(&mut self, n: usize) {
        let cells = (1usize << n) * n;
        self.dp.clear();
        self.dp.resize(cells, f64::INFINITY);
        self.parent.clear();
        self.parent.resize(cells, u32::MAX);
    }
}

/// Solves the TSP exactly with the Held–Karp dynamic program.
///
/// # Errors
///
/// Returns [`BaselineError::TooLargeForExact`] for more than [`HELD_KARP_LIMIT`] cities
/// and [`BaselineError::InvalidProblem`] for an empty or non-square matrix.
///
/// # Example
///
/// ```
/// use taxi_baselines::held_karp;
/// use taxi_dist::DistanceMatrix;
///
/// // Unit square: the optimal cycle is the perimeter of length 4.
/// let d = DistanceMatrix::from_rows(&[
///     vec![0.0, 1.0, 1.4142135623730951, 1.0],
///     vec![1.0, 0.0, 1.0, 1.4142135623730951],
///     vec![1.4142135623730951, 1.0, 0.0, 1.0],
///     vec![1.0, 1.4142135623730951, 1.0, 0.0],
/// ])
/// .expect("square matrix");
/// let solution = held_karp(&d)?;
/// assert!((solution.length - 4.0).abs() < 1e-9);
/// # Ok::<(), taxi_baselines::BaselineError>(())
/// ```
pub fn held_karp(distances: &DistanceMatrix) -> Result<ExactSolution, BaselineError> {
    let mut order = Vec::with_capacity(distances.n());
    let length = held_karp_into(distances, &mut HeldKarpScratch::new(), &mut order)?;
    Ok(ExactSolution { order, length })
}

/// Buffer-reusing form of [`held_karp`]: DP tables come from `scratch`, the optimal
/// order is written into `out` (cleared first), and the optimal length is returned.
///
/// # Errors
///
/// Same error conditions as [`held_karp`].
pub fn held_karp_into(
    distances: &DistanceMatrix,
    scratch: &mut HeldKarpScratch,
    out: &mut Vec<usize>,
) -> Result<f64, BaselineError> {
    let n = distances.n();
    if n == 0 {
        return Err(BaselineError::InvalidProblem {
            reason: "distance matrix must be non-empty".to_string(),
        });
    }
    if n > HELD_KARP_LIMIT {
        return Err(BaselineError::TooLargeForExact {
            cities: n,
            limit: HELD_KARP_LIMIT,
        });
    }
    out.clear();
    if n == 1 {
        out.push(0);
        return Ok(0.0);
    }
    if n == 2 {
        out.extend([0, 1]);
        return Ok(distances.get(0, 1) + distances.get(1, 0));
    }

    // dp[mask][j] = shortest path starting at 0, visiting exactly the cities in `mask`
    // (which always contains 0 and j), ending at j.
    let full: usize = 1 << n;
    scratch.prepare(n);
    let HeldKarpScratch { dp, parent } = scratch;
    dp[n] = 0.0; // mask = {0}, end = 0
    for mask in 1..full {
        if mask & 1 == 0 {
            continue;
        }
        for last in 0..n {
            if mask & (1 << last) == 0 {
                continue;
            }
            let cur = dp[mask * n + last];
            if !cur.is_finite() {
                continue;
            }
            for next in 1..n {
                if mask & (1 << next) != 0 {
                    continue;
                }
                let new_mask = mask | (1 << next);
                let cand = cur + distances.get(last, next);
                if cand < dp[new_mask * n + next] {
                    dp[new_mask * n + next] = cand;
                    parent[new_mask * n + next] = last as u32;
                }
            }
        }
    }
    let all = full - 1;
    let (mut best_last, mut best_len) = (usize::MAX, f64::INFINITY);
    for last in 1..n {
        let cand = dp[all * n + last] + distances.get(last, 0);
        if cand < best_len {
            best_len = cand;
            best_last = last;
        }
    }
    // Reconstruct.
    let mut mask = all;
    let mut last = best_last;
    while last != usize::MAX && last != 0 {
        out.push(last);
        let prev = parent[mask * n + last];
        mask &= !(1 << last);
        last = if prev == u32::MAX {
            usize::MAX
        } else {
            prev as usize
        };
    }
    out.push(0);
    out.reverse();
    Ok(best_len)
}

/// Solves the fixed-endpoint open-path TSP exactly with a Held–Karp-style dynamic
/// program: the shortest Hamiltonian path that starts at `start`, visits every city
/// exactly once, and ends at `end`.
///
/// # Errors
///
/// Returns [`BaselineError::TooLargeForExact`] above [`HELD_KARP_LIMIT`] cities and
/// [`BaselineError::InvalidProblem`] for a malformed matrix, out-of-range endpoints, or
/// `start == end` on a multi-city instance.
///
/// # Example
///
/// ```
/// use taxi_baselines::held_karp_path;
/// use taxi_dist::DistanceMatrix;
///
/// // Four cities on a line: the optimal 0 → 3 path sweeps left to right.
/// let d = DistanceMatrix::from_fn(4, |i, j| (i as f64 - j as f64).abs());
/// let solution = held_karp_path(&d, 0, 3)?;
/// assert_eq!(solution.order, vec![0, 1, 2, 3]);
/// assert!((solution.length - 3.0).abs() < 1e-9);
/// # Ok::<(), taxi_baselines::BaselineError>(())
/// ```
pub fn held_karp_path(
    distances: &DistanceMatrix,
    start: usize,
    end: usize,
) -> Result<ExactSolution, BaselineError> {
    let mut order = Vec::with_capacity(distances.n());
    let length = held_karp_path_into(
        distances,
        start,
        end,
        &mut HeldKarpScratch::new(),
        &mut order,
    )?;
    Ok(ExactSolution { order, length })
}

/// Buffer-reusing form of [`held_karp_path`]: DP tables come from `scratch`, the optimal
/// order is written into `out` (cleared first), and the optimal length is returned.
///
/// # Errors
///
/// Same error conditions as [`held_karp_path`].
pub fn held_karp_path_into(
    distances: &DistanceMatrix,
    start: usize,
    end: usize,
    scratch: &mut HeldKarpScratch,
    out: &mut Vec<usize>,
) -> Result<f64, BaselineError> {
    let n = distances.n();
    if n == 0 {
        return Err(BaselineError::InvalidProblem {
            reason: "distance matrix must be non-empty".to_string(),
        });
    }
    if start >= n || end >= n {
        return Err(BaselineError::InvalidProblem {
            reason: format!("endpoints ({start}, {end}) out of range for {n} cities"),
        });
    }
    if n > 1 && start == end {
        return Err(BaselineError::InvalidProblem {
            reason: "start and end must differ for multi-city paths".to_string(),
        });
    }
    if n > HELD_KARP_LIMIT {
        return Err(BaselineError::TooLargeForExact {
            cities: n,
            limit: HELD_KARP_LIMIT,
        });
    }
    out.clear();
    if n == 1 {
        out.push(start);
        return Ok(0.0);
    }

    // dp[mask][j] = shortest path starting at `start`, visiting exactly the cities in
    // `mask` (which always contains `start` and j), ending at j.
    let full: usize = 1 << n;
    scratch.prepare(n);
    let HeldKarpScratch { dp, parent } = scratch;
    dp[(1 << start) * n + start] = 0.0;
    for mask in 1..full {
        if mask & (1 << start) == 0 {
            continue;
        }
        for last in 0..n {
            if mask & (1 << last) == 0 {
                continue;
            }
            let cur = dp[mask * n + last];
            if !cur.is_finite() {
                continue;
            }
            for next in 0..n {
                if mask & (1 << next) != 0 {
                    continue;
                }
                let new_mask = mask | (1 << next);
                let cand = cur + distances.get(last, next);
                if cand < dp[new_mask * n + next] {
                    dp[new_mask * n + next] = cand;
                    parent[new_mask * n + next] = last as u32;
                }
            }
        }
    }
    let all = full - 1;
    let length = dp[all * n + end];
    if !length.is_finite() {
        return Err(BaselineError::InvalidProblem {
            reason: "no Hamiltonian path exists under the given matrix".to_string(),
        });
    }
    let mut mask = all;
    let mut last = end;
    loop {
        out.push(last);
        let prev = parent[mask * n + last];
        mask &= !(1 << last);
        if prev == u32::MAX {
            break;
        }
        last = prev as usize;
    }
    out.reverse();
    debug_assert_eq!(out[0], start);
    Ok(length)
}

/// Projection model of an exact (Concorde-style) solver running on one CPU core.
///
/// The paper compares TAXI's total latency against an exact solver whose runtime on
/// `pla85900` is projected at 136 years (≈ 4.3·10⁹ s) and whose energy is 3.82·10¹¹ J —
/// an average CPU power of ≈ 89 W. This model follows the same shape: runtime grows
/// exponentially in `sqrt(n)` (the empirical Concorde scaling law), anchored so that the
/// 85 900-city projection matches the paper.
///
/// # Example
///
/// ```
/// use taxi_baselines::ExactSolverProjection;
///
/// let model = ExactSolverProjection::paper_calibrated();
/// let small = model.latency_seconds(101);
/// let large = model.latency_seconds(85_900);
/// assert!(large / small > 1e6, "exact solving must blow up with size");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactSolverProjection {
    /// Base runtime coefficient, in seconds.
    t0: f64,
    /// Exponential growth coefficient applied to sqrt(n).
    k: f64,
    /// Average single-core CPU power, in watts.
    cpu_power_watts: f64,
}

impl ExactSolverProjection {
    /// The model calibrated to the paper's pla85900 projection (≈ 4.3·10⁹ s, 3.82·10¹¹ J)
    /// and a ~10 s solve of a 1 000-city instance.
    pub fn paper_calibrated() -> Self {
        let sqrt_small = (1_000.0f64).sqrt();
        let sqrt_large = (85_900.0f64).sqrt();
        let t_small = 10.0f64;
        let t_large = 4.28e9f64;
        let k = (t_large / t_small).ln() / (sqrt_large - sqrt_small);
        let t0 = t_small / (k * sqrt_small).exp();
        Self {
            t0,
            k,
            cpu_power_watts: 89.3,
        }
    }

    /// Projected single-core runtime for an `n`-city instance, in seconds.
    pub fn latency_seconds(&self, n: usize) -> f64 {
        self.t0 * (self.k * (n as f64).sqrt()).exp()
    }

    /// Projected energy for an `n`-city instance, in joules.
    pub fn energy_joules(&self, n: usize) -> f64 {
        self.latency_seconds(n) * self.cpu_power_watts
    }

    /// The assumed average CPU power, in watts.
    pub fn cpu_power_watts(&self) -> f64 {
        self.cpu_power_watts
    }
}

impl Default for ExactSolverProjection {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> DistanceMatrix {
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let a = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                (a.cos(), a.sin())
            })
            .collect();
        DistanceMatrix::from_fn(n, |i, j| {
            let (x1, y1) = pts[i];
            let (x2, y2) = pts[j];
            ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt()
        })
    }

    #[test]
    fn held_karp_solves_a_ring_optimally() {
        let d = ring(8);
        let expected: f64 = (0..8).map(|i| d.get(i, (i + 1) % 8)).sum();
        let sol = held_karp(&d).unwrap();
        assert!((sol.length - expected).abs() < 1e-9);
        assert_eq!(sol.order.len(), 8);
        assert_eq!(sol.order[0], 0);
    }

    #[test]
    fn held_karp_finds_known_optimum_on_asymmetric_costs() {
        // Small instance: the three possible cycles have lengths 13, 12 and 17, so the
        // optimum is the 0-1-3-2-0 cycle of length 12.
        let d = DistanceMatrix::from_rows(&[
            vec![0.0, 1.0, 6.0, 4.0],
            vec![1.0, 0.0, 5.0, 2.0],
            vec![6.0, 5.0, 0.0, 3.0],
            vec![4.0, 2.0, 3.0, 0.0],
        ])
        .unwrap();
        let sol = held_karp(&d).unwrap();
        assert!((sol.length - 12.0).abs() < 1e-9);
    }

    #[test]
    fn held_karp_tour_is_a_permutation() {
        let d = ring(11);
        let sol = held_karp(&d).unwrap();
        let mut sorted = sol.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn held_karp_rejects_large_and_invalid_instances() {
        let d = ring(HELD_KARP_LIMIT + 1);
        assert!(matches!(
            held_karp(&d),
            Err(BaselineError::TooLargeForExact { .. })
        ));
        assert!(held_karp(&DistanceMatrix::default()).is_err());
    }

    #[test]
    fn held_karp_handles_trivial_sizes() {
        assert_eq!(held_karp(&DistanceMatrix::zeros(1)).unwrap().length, 0.0);
        let two = DistanceMatrix::from_rows(&[vec![0.0, 3.0], vec![3.0, 0.0]]).unwrap();
        assert_eq!(held_karp(&two).unwrap().length, 6.0);
    }

    #[test]
    fn held_karp_path_is_optimal_on_a_line() {
        let d = DistanceMatrix::from_fn(7, |i, j| (i as f64 - j as f64).abs());
        let sol = held_karp_path(&d, 0, 6).unwrap();
        assert_eq!(sol.order, (0..7).collect::<Vec<_>>());
        assert!((sol.length - 6.0).abs() < 1e-9);
        // Interior endpoints force a detour; the path must still visit everything once.
        let sol = held_karp_path(&d, 2, 4).unwrap();
        assert_eq!(sol.order[0], 2);
        assert_eq!(*sol.order.last().unwrap(), 4);
        let mut sorted = sol.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn held_karp_path_never_beats_the_cycle_bound() {
        // A path between the cycle's two endpoints can never be longer than the optimal
        // cycle (the cycle is a path plus one closing edge).
        let d = ring(9);
        let cycle = held_karp(&d).unwrap();
        let path = held_karp_path(&d, 0, 1).unwrap();
        assert!(path.length <= cycle.length + 1e-9);
    }

    #[test]
    fn held_karp_path_rejects_bad_inputs() {
        let d = ring(5);
        assert!(held_karp_path(&d, 0, 9).is_err());
        assert!(held_karp_path(&d, 3, 3).is_err());
        assert!(held_karp_path(&DistanceMatrix::default(), 0, 0).is_err());
        let big = ring(HELD_KARP_LIMIT + 1);
        assert!(matches!(
            held_karp_path(&big, 0, 1),
            Err(BaselineError::TooLargeForExact { .. })
        ));
        assert_eq!(
            held_karp_path(&DistanceMatrix::zeros(1), 0, 0)
                .unwrap()
                .order,
            vec![0]
        );
    }

    #[test]
    fn projection_matches_paper_anchor() {
        let model = ExactSolverProjection::paper_calibrated();
        let t = model.latency_seconds(85_900);
        assert!((t / 4.28e9 - 1.0).abs() < 0.05, "pla85900 projection: {t}");
        let e = model.energy_joules(85_900);
        assert!((e / 3.82e11 - 1.0).abs() < 0.1, "pla85900 energy: {e}");
    }

    #[test]
    fn projection_is_monotonic_in_size() {
        let model = ExactSolverProjection::paper_calibrated();
        let mut prev = 0.0;
        for n in [76usize, 1002, 11849, 85900] {
            let t = model.latency_seconds(n);
            assert!(t > prev);
            prev = t;
        }
    }
}
