//! Baseline TSP solvers and published comparison data for the TAXI reproduction.
//!
//! The paper compares TAXI against several reference points; this crate implements or
//! models all of them:
//!
//! * [`exact`] — a Held–Karp exact solver for small instances (the "optimal" reference on
//!   sub-problems and tiny TSPs) and a latency/energy projection model of the Concorde
//!   exact solver on a single-core CPU (the paper's Fig. 6b comparison line).
//! * [`heuristics`] — nearest-neighbour, greedy-edge, 2-opt and Or-opt local search. The
//!   combination (NN + 2-opt + Or-opt) is the *reference tour* used as the optimal-ratio
//!   denominator when the original TSPLIB optimum does not apply (synthetic instances).
//! * [`hvc`] — an HVC-style clustered baseline (k-means, no endpoint fixing, software
//!   annealing) used for the clustering/fixing ablations.
//! * [`neuro_ising`] — a latency/quality surrogate of the Neuro-Ising solver, the
//!   state-of-the-art clustering-based Ising solver the paper claims an 8× average
//!   speed-up over.
//! * [`reported`] — numbers quoted directly from the paper (Fig. 5c series, Table II
//!   energies, headline claims) so every figure can draw the published reference lines.
//!
//! # Example
//!
//! ```
//! use taxi_baselines::exact::held_karp;
//! use taxi_baselines::heuristics::{nearest_neighbor_tour, two_opt};
//! use taxi_tsplib::generator::random_uniform_instance;
//!
//! let instance = random_uniform_instance("small", 9, 3);
//! let matrix = instance.full_distance_matrix();
//! let exact = held_karp(&matrix).unwrap();
//! let mut heuristic = nearest_neighbor_tour(&matrix, 0);
//! two_opt(&matrix, &mut heuristic, 1_000);
//! let heuristic_len: f64 = (0..9)
//!     .map(|i| matrix.get(heuristic[i], heuristic[(i + 1) % 9]))
//!     .sum();
//! assert!(exact.length <= heuristic_len + 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod exact;
pub mod heuristics;
pub mod hvc;
pub mod neuro_ising;
pub mod reported;

pub use error::BaselineError;
pub use exact::{
    held_karp, held_karp_into, held_karp_path, held_karp_path_into, ExactSolution,
    ExactSolverProjection, HeldKarpScratch,
};
pub use heuristics::{
    greedy_edge_tour, greedy_edge_tour_into, nearest_neighbor_path, nearest_neighbor_path_into,
    nearest_neighbor_tour, nearest_neighbor_tour_into, or_opt, or_opt_path, or_opt_path_with,
    or_opt_with, path_length, reference_path, reference_path_into, reference_path_into_limited,
    reference_tour, reference_tour_into, reference_tour_into_limited, tour_length, two_opt,
    two_opt_limited, two_opt_neighbors, two_opt_path, two_opt_path_neighbors, HeuristicScratch,
};
pub use hvc::{HvcBaseline, HvcConfig};
pub use neuro_ising::NeuroIsingModel;
