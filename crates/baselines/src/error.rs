//! Error type for baseline solvers.

use std::error::Error;
use std::fmt;

/// Errors returned by the baseline solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The instance is too large for the requested exact algorithm.
    TooLargeForExact {
        /// Number of cities requested.
        cities: usize,
        /// Maximum supported by the algorithm.
        limit: usize,
    },
    /// The problem definition was invalid (empty or non-square matrix).
    InvalidProblem {
        /// Explanation of the problem.
        reason: String,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::TooLargeForExact { cities, limit } => write!(
                f,
                "instance with {cities} cities exceeds the exact-solver limit of {limit}"
            ),
            BaselineError::InvalidProblem { reason } => write!(f, "invalid problem: {reason}"),
        }
    }
}

impl Error for BaselineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = BaselineError::TooLargeForExact {
            cities: 50,
            limit: 20,
        };
        assert!(err.to_string().contains("50"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BaselineError>();
    }
}
