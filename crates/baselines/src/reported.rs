//! Numbers quoted from the paper, used as reference series in the regenerated figures.
//!
//! The paper adapts the results of HVC, IMA, CIMA and Neuro-Ising from their original
//! publications for its Fig. 5c / Fig. 6b / Table II comparisons. The exact per-instance
//! values are only shown graphically, so the series below are approximate digitisations
//! of those plots anchored to every number the text states explicitly (e.g. TAXI being
//! 3 % better than CIMA on 33 810 cities and 31 % better than Neuro-Ising on 85 900
//! cities). They are reference lines for plots — not measurements of this codebase.

/// Problem sizes of the 20-instance suite, in the order used by every series below.
pub const PROBLEM_SIZES: [usize; 20] = [
    76, 101, 200, 262, 318, 442, 575, 666, 783, 1002, 1060, 2392, 3038, 4461, 5915, 5934, 11849,
    18512, 33810, 85900,
];

/// Optimal ratios of TAXI reported in Fig. 5c (cluster size 12, 4-bit precision).
/// The two largest values are stated in the text (1.22 and 1.20); the rest are
/// approximate digitisations in the 1.05–1.25 band shown in the figure.
pub const TAXI_REPORTED_OPTIMAL_RATIO: [f64; 20] = [
    1.06, 1.07, 1.09, 1.10, 1.10, 1.11, 1.12, 1.12, 1.13, 1.13, 1.14, 1.16, 1.17, 1.18, 1.18, 1.19,
    1.20, 1.21, 1.22, 1.20,
];

/// Approximate optimal ratios of Neuro-Ising (the paper's ref. \[5\]) adapted from Fig. 5c.
/// The final value follows from the text: TAXI's route on 85 900 cities is 31 % shorter.
pub const NEURO_ISING_REPORTED_OPTIMAL_RATIO: [Option<f64>; 20] = [
    Some(1.08),
    Some(1.09),
    Some(1.11),
    Some(1.12),
    Some(1.13),
    Some(1.15),
    Some(1.16),
    Some(1.17),
    Some(1.18),
    Some(1.20),
    Some(1.21),
    Some(1.26),
    Some(1.29),
    Some(1.33),
    Some(1.36),
    Some(1.37),
    Some(1.45),
    Some(1.52),
    Some(1.60),
    Some(1.74),
];

/// Approximate optimal ratios of HVC (ref. \[4\]); published only for the smaller
/// instances.
pub const HVC_REPORTED_OPTIMAL_RATIO: [Option<f64>; 20] = [
    Some(1.12),
    Some(1.13),
    Some(1.16),
    Some(1.18),
    Some(1.19),
    Some(1.21),
    Some(1.23),
    Some(1.24),
    Some(1.26),
    Some(1.28),
    Some(1.29),
    None,
    None,
    None,
    None,
    None,
    None,
    None,
    None,
    None,
];

/// Approximate optimal ratios of IMA (ref. \[6\]); published up to a few thousand cities.
pub const IMA_REPORTED_OPTIMAL_RATIO: [Option<f64>; 20] = [
    Some(1.09),
    Some(1.10),
    Some(1.12),
    Some(1.13),
    Some(1.14),
    Some(1.15),
    Some(1.16),
    Some(1.17),
    Some(1.18),
    Some(1.19),
    Some(1.20),
    Some(1.24),
    Some(1.27),
    None,
    None,
    None,
    None,
    None,
    None,
    None,
];

/// Approximate optimal ratios of CIMA (ref. \[7\]). The 33 810-city value follows from the
/// text: TAXI's route is 3 % shorter there.
pub const CIMA_REPORTED_OPTIMAL_RATIO: [Option<f64>; 20] = [
    Some(1.08),
    Some(1.09),
    Some(1.10),
    Some(1.11),
    Some(1.12),
    Some(1.13),
    Some(1.14),
    Some(1.15),
    Some(1.16),
    Some(1.17),
    Some(1.18),
    Some(1.21),
    Some(1.22),
    Some(1.23),
    Some(1.24),
    Some(1.24),
    Some(1.25),
    Some(1.26),
    Some(1.26),
    Some(1.28),
];

/// Average speed-up of TAXI over Neuro-Ising across the 20 benchmarks (the headline 8×).
pub const TAXI_SPEEDUP_OVER_NEURO_ISING: f64 = 8.0;

/// Per-instance latency ratio of Neuro-Ising to TAXI adapted from Fig. 6b: the advantage
/// grows with problem size around the 8× average.
pub const NEURO_ISING_LATENCY_RATIO: [f64; 20] = [
    3.0, 3.5, 4.0, 4.5, 5.0, 5.5, 6.0, 6.5, 7.0, 7.5, 7.5, 8.5, 9.0, 9.5, 10.0, 10.0, 11.0, 12.0,
    13.0, 14.0,
];

/// One row of the paper's Table II (energy comparison with the state of the art).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyComparisonRow {
    /// Work being compared (reference number in the paper).
    pub work: &'static str,
    /// Technology of that work.
    pub technology: &'static str,
    /// Problem size(s) the energy refers to.
    pub problem_size: usize,
    /// Energy in joules (excluding data transfer and mapping, as in the paper's Table II).
    pub energy_joules: f64,
}

/// The published rows of Table II, excluding this work's own numbers (which the
/// reproduction measures).
pub const TABLE2_PUBLISHED: [EnergyComparisonRow; 4] = [
    EnergyComparisonRow {
        work: "HVC [4]",
        technology: "CPU",
        problem_size: 101,
        energy_joules: 1.1,
    },
    EnergyComparisonRow {
        work: "IMA [6]",
        technology: "14nm FinFET",
        problem_size: 1060,
        energy_joules: 20.08e-6,
    },
    EnergyComparisonRow {
        work: "CIMA [7]",
        technology: "16/14nm CMOS",
        problem_size: 33_810,
        energy_joules: 20e-6,
    },
    EnergyComparisonRow {
        work: "CIMA [7]",
        technology: "16/14nm CMOS",
        problem_size: 85_900,
        energy_joules: 45e-6,
    },
];

/// TAXI's own Table II energies as published (joules, excluding mapping), for the
/// 1060 / 33 810 / 85 900-city instances.
pub const TAXI_TABLE2_ENERGY: [(usize, f64); 3] =
    [(1_060, 1.81e-6), (33_810, 2.67e-6), (85_900, 3.07e-6)];

/// TAXI's Table II energies including mapping (joules).
pub const TAXI_TABLE2_ENERGY_WITH_MAPPING: [(usize, f64); 3] =
    [(1_060, 38.7e-6), (33_810, 302e-6), (85_900, 952e-6)];

/// Headline claims of the paper for the largest instance (pla85900).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadlineClaims {
    /// TAXI's total latency on pla85900, in seconds.
    pub taxi_pla85900_latency_seconds: f64,
    /// TAXI's energy on pla85900, in joules.
    pub taxi_pla85900_energy_joules: f64,
    /// Projected exact-solver latency on pla85900, in seconds.
    pub exact_pla85900_latency_seconds: f64,
    /// Projected exact-solver energy on pla85900, in joules.
    pub exact_pla85900_energy_joules: f64,
    /// TAXI's optimal ratio on 33 810 cities.
    pub optimal_ratio_33810: f64,
    /// TAXI's optimal ratio on 85 900 cities.
    pub optimal_ratio_85900: f64,
}

/// The paper's headline claims.
pub const HEADLINE: HeadlineClaims = HeadlineClaims {
    taxi_pla85900_latency_seconds: 375.4,
    taxi_pla85900_energy_joules: 9.51e-4,
    exact_pla85900_latency_seconds: 4.28e9,
    exact_pla85900_energy_joules: 3.82e11,
    optimal_ratio_33810: 1.22,
    optimal_ratio_85900: 1.20,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_series_cover_twenty_instances() {
        assert_eq!(PROBLEM_SIZES.len(), 20);
        assert_eq!(TAXI_REPORTED_OPTIMAL_RATIO.len(), 20);
        assert_eq!(NEURO_ISING_REPORTED_OPTIMAL_RATIO.len(), 20);
        assert_eq!(HVC_REPORTED_OPTIMAL_RATIO.len(), 20);
        assert_eq!(IMA_REPORTED_OPTIMAL_RATIO.len(), 20);
        assert_eq!(CIMA_REPORTED_OPTIMAL_RATIO.len(), 20);
        assert_eq!(NEURO_ISING_LATENCY_RATIO.len(), 20);
    }

    #[test]
    fn taxi_beats_neuro_ising_on_the_largest_instances() {
        let last = PROBLEM_SIZES.len() - 1;
        let taxi = TAXI_REPORTED_OPTIMAL_RATIO[last];
        let neuro = NEURO_ISING_REPORTED_OPTIMAL_RATIO[last].unwrap();
        // The paper states TAXI's route is 31 % shorter on 85 900 cities.
        assert!((neuro / taxi - 1.0 / 0.69).abs() < 0.05);
    }

    #[test]
    fn taxi_beats_cima_by_three_percent_on_33810() {
        let idx = PROBLEM_SIZES.iter().position(|&n| n == 33_810).unwrap();
        let taxi = TAXI_REPORTED_OPTIMAL_RATIO[idx];
        let cima = CIMA_REPORTED_OPTIMAL_RATIO[idx].unwrap();
        assert!(cima > taxi);
        assert!((cima / taxi - 1.03).abs() < 0.02);
    }

    #[test]
    fn latency_ratios_average_to_roughly_eight() {
        let mean: f64 =
            NEURO_ISING_LATENCY_RATIO.iter().sum::<f64>() / NEURO_ISING_LATENCY_RATIO.len() as f64;
        assert!((mean - TAXI_SPEEDUP_OVER_NEURO_ISING).abs() < 0.5);
    }

    #[test]
    fn all_ratios_are_at_least_one() {
        for &r in &TAXI_REPORTED_OPTIMAL_RATIO {
            assert!(r >= 1.0);
        }
        for series in [
            &NEURO_ISING_REPORTED_OPTIMAL_RATIO,
            &HVC_REPORTED_OPTIMAL_RATIO,
            &IMA_REPORTED_OPTIMAL_RATIO,
            &CIMA_REPORTED_OPTIMAL_RATIO,
        ] {
            for r in series.iter().flatten() {
                assert!(*r >= 1.0);
            }
        }
    }

    #[test]
    fn headline_energy_gap_matches_paper_magnitude() {
        let ratio = HEADLINE.exact_pla85900_energy_joules / HEADLINE.taxi_pla85900_energy_joules;
        // The paper quotes 4.01e14× more energy for the exact solver.
        assert!(ratio > 1e14 && ratio < 1e15);
    }

    #[test]
    fn table2_has_positive_energies() {
        for row in &TABLE2_PUBLISHED {
            assert!(row.energy_joules > 0.0);
        }
        for &(_, e) in TAXI_TABLE2_ENERGY
            .iter()
            .chain(&TAXI_TABLE2_ENERGY_WITH_MAPPING)
        {
            assert!(e > 0.0);
        }
    }
}
