//! HVC-style clustered baseline (k-means, independent closed sub-tours, no endpoint
//! fixing).
//!
//! Hierarchical Vertex Clustering (the paper's ref. \[4\]) and its successors decompose the
//! TSP with k-means and solve the clusters without pinning the inter-cluster boundary
//! cities. This baseline reproduces that structure so the ablation benches can quantify
//! what TAXI's two algorithmic changes (Ward agglomerative clustering and fixed
//! endpoints) contribute.

use taxi_cluster::{kmeans_clusters, KMeansConfig, Point};
use taxi_dist::DistanceMatrix;
use taxi_tsplib::{Tour, TspInstance, TsplibError};

use crate::heuristics::{nearest_neighbor_tour, tour_length, two_opt};

/// Configuration of the HVC-style baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HvcConfig {
    /// Maximum cluster (sub-problem) size.
    pub max_cluster_size: usize,
    /// RNG seed for k-means.
    pub seed: u64,
}

impl HvcConfig {
    /// Creates a configuration with the given maximum cluster size.
    pub fn new(max_cluster_size: usize) -> Self {
        Self {
            max_cluster_size: max_cluster_size.max(4),
            seed: 0xBA5E,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for HvcConfig {
    fn default() -> Self {
        Self::new(12)
    }
}

/// Result of the HVC-style baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct HvcSolution {
    /// The stitched global tour.
    pub tour: Tour,
    /// Its length under the instance's distance convention.
    pub length: f64,
    /// Number of clusters used.
    pub num_clusters: usize,
}

/// The HVC-style baseline solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HvcBaseline {
    config: HvcConfig,
}

impl HvcBaseline {
    /// Creates a baseline solver with the given configuration.
    pub fn new(config: HvcConfig) -> Self {
        Self { config }
    }

    /// Solves `instance`: k-means clustering, a centroid-level tour, independent closed
    /// sub-tours per cluster, and naive stitching of consecutive sub-tours.
    ///
    /// # Errors
    ///
    /// Returns a [`TsplibError`] if the instance has no coordinates (explicit-matrix
    /// instances are not supported by this baseline) or the assembled tour is invalid.
    pub fn solve(&self, instance: &TspInstance) -> Result<HvcSolution, TsplibError> {
        let coords = instance
            .coordinates()
            .ok_or_else(|| TsplibError::Inconsistent {
                reason: "the HVC baseline requires coordinate-based instances".to_string(),
            })?;
        let n = coords.len();
        if n <= self.config.max_cluster_size {
            let matrix = instance.full_distance_matrix();
            let mut order = nearest_neighbor_tour(&matrix, 0);
            two_opt(&matrix, &mut order, 4);
            let length = tour_length(&matrix, &order);
            return Ok(HvcSolution {
                tour: Tour::new(order)?,
                length,
                num_clusters: 1,
            });
        }
        let points: Vec<Point> = coords.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let k = n.div_ceil(self.config.max_cluster_size);
        let kmeans_cfg = KMeansConfig::new(k)
            .expect("k is at least 1")
            .with_seed(self.config.seed);
        let clusters =
            kmeans_clusters(&points, &kmeans_cfg).map_err(|err| TsplibError::Inconsistent {
                reason: format!("k-means failed: {err}"),
            })?;

        // Order clusters by a nearest-neighbour walk over their centroids.
        let centroids: Vec<Point> = clusters
            .iter()
            .map(|members| Point::centroid_of_indices(&points, members))
            .collect();
        let centroid_matrix =
            DistanceMatrix::from_fn(centroids.len(), |i, j| centroids[i].distance(&centroids[j]));
        let cluster_order = nearest_neighbor_tour(&centroid_matrix, 0);

        // Solve each cluster independently as a *closed* cycle (no fixed endpoints) and
        // stitch consecutive clusters by rotating each sub-tour so it starts at the city
        // nearest to the previous cluster's last visited city.
        let mut global_order: Vec<usize> = Vec::with_capacity(n);
        for &cluster_idx in &cluster_order {
            let members = &clusters[cluster_idx];
            let sub_matrix = instance.distance_matrix_for(members)?;
            let mut sub_order = nearest_neighbor_tour(&sub_matrix, 0);
            two_opt(&sub_matrix, &mut sub_order, 4);
            let mut cities: Vec<usize> = sub_order.iter().map(|&local| members[local]).collect();
            if let Some(&last_city) = global_order.last() {
                let (px, py) = coords[last_city];
                let nearest_pos = cities
                    .iter()
                    .enumerate()
                    .min_by(|(_, &a), (_, &b)| {
                        let da = (coords[a].0 - px).hypot(coords[a].1 - py);
                        let db = (coords[b].0 - px).hypot(coords[b].1 - py);
                        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(pos, _)| pos)
                    .unwrap_or(0);
                cities.rotate_left(nearest_pos);
            }
            global_order.extend(cities);
        }
        let tour = Tour::new(global_order)?;
        let length = tour.length(instance);
        Ok(HvcSolution {
            tour,
            length,
            num_clusters: clusters.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taxi_tsplib::generator::clustered_instance;

    #[test]
    fn produces_a_valid_tour() {
        let instance = clustered_instance("hvc-test", 150, 6, 9);
        let solution = HvcBaseline::new(HvcConfig::new(12))
            .solve(&instance)
            .unwrap();
        assert!(solution.tour.is_valid_for(&instance));
        assert!(solution.length > 0.0);
        assert!(solution.num_clusters >= 150 / 12);
    }

    #[test]
    fn small_instances_bypass_clustering() {
        let instance = clustered_instance("small", 10, 2, 1);
        let solution = HvcBaseline::default().solve(&instance).unwrap();
        assert_eq!(solution.num_clusters, 1);
        assert!(solution.tour.is_valid_for(&instance));
    }

    #[test]
    fn explicit_matrix_instances_are_rejected() {
        let instance = TspInstance::from_matrix(
            "m",
            DistanceMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap(),
        )
        .unwrap();
        assert!(HvcBaseline::default().solve(&instance).is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let instance = clustered_instance("det", 120, 5, 2);
        let solver = HvcBaseline::new(HvcConfig::new(12).with_seed(7));
        let a = solver.solve(&instance).unwrap();
        let b = solver.solve(&instance).unwrap();
        assert_eq!(a.tour, b.tour);
    }
}
