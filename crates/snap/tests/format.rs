//! Format-level battery: byte-flip corruption across every offset class,
//! truncation at every length, version skew, and property-based round-trips.
//!
//! The contract under test: **no byte-level damage ever yields a successful
//! decode or a panic** — every mutation is a typed [`SnapError`] the consumer
//! maps to a cold start.

use proptest::prelude::*;
use taxi_snap::{
    checksum, RecordReader, RecordWriter, SnapError, Snapshot, SnapshotBuilder, FORMAT_VERSION,
    HEADER_LEN,
};

fn reference_bytes() -> Vec<u8> {
    let mut records = RecordWriter::new();
    records.write_u32(4);
    records.write_u128(0xDEAD_BEEF_CAFE);
    records.write_f64_bits(123.456);
    records.write_bytes(&[7, 8, 9]);
    let mut builder = SnapshotBuilder::new();
    builder.section(1, records.into_bytes());
    builder.section(2, vec![0xAA; 33]);
    builder.encode()
}

/// Human-readable offset class of byte `offset` in `bytes`, for failure messages
/// and for asserting the matrix covers every class the issue names.
fn offset_class(bytes: &[u8], offset: usize) -> &'static str {
    if offset < HEADER_LEN - 8 {
        "header"
    } else if offset < HEADER_LEN {
        "header checksum"
    } else if offset >= bytes.len() - 8 {
        "file checksum"
    } else {
        // Between the header and the trailer: section headers, payloads and
        // per-section checksums. Precise sub-classification is not needed — the
        // assertion is identical for all of them.
        "section"
    }
}

#[test]
fn every_single_byte_flip_is_rejected() {
    let bytes = reference_bytes();
    let mut classes_seen = std::collections::HashSet::new();
    for offset in 0..bytes.len() {
        for bit in [0x01u8, 0x80u8] {
            let mut mutated = bytes.clone();
            mutated[offset] ^= bit;
            let class = offset_class(&bytes, offset);
            classes_seen.insert(class);
            match Snapshot::from_bytes(&mutated) {
                Ok(_) => panic!("flip at offset {offset} ({class}) decoded successfully"),
                Err(
                    SnapError::BadMagic
                    | SnapError::UnsupportedVersion { .. }
                    | SnapError::Truncated { .. }
                    | SnapError::ChecksumMismatch { .. }
                    | SnapError::Corrupt { .. },
                ) => {}
                Err(other) => panic!("flip at offset {offset} ({class}): unexpected {other:?}"),
            }
        }
    }
    for class in ["header", "header checksum", "section", "file checksum"] {
        assert!(classes_seen.contains(class), "matrix never hit {class}");
    }
}

#[test]
fn every_truncation_is_rejected() {
    let bytes = reference_bytes();
    for len in 0..bytes.len() {
        assert!(
            Snapshot::from_bytes(&bytes[..len]).is_err(),
            "truncation to {len} bytes decoded successfully"
        );
    }
}

#[test]
fn every_extension_is_rejected() {
    let bytes = reference_bytes();
    for extra in 1..16 {
        let mut extended = bytes.clone();
        extended.extend(std::iter::repeat(0xCC).take(extra));
        assert!(
            Snapshot::from_bytes(&extended).is_err(),
            "{extra} trailing bytes decoded successfully"
        );
    }
}

#[test]
fn version_skew_is_typed_not_a_checksum_failure() {
    // A file from a "future" build: internally consistent (all checksums valid),
    // only the declared version differs. It must be rejected as version skew
    // specifically, so operators can tell skew from corruption.
    let mut builder = SnapshotBuilder::new().with_version(FORMAT_VERSION + 7);
    builder.section(3, vec![1, 2, 3]);
    assert!(matches!(
        Snapshot::from_bytes(&builder.encode()),
        Err(SnapError::UnsupportedVersion { found, .. }) if found == FORMAT_VERSION + 7
    ));
}

#[test]
fn checksum_is_stable_across_calls_and_inputs() {
    assert_eq!(checksum(b"taxi"), checksum(b"taxi"));
    assert_ne!(checksum(b"taxi"), checksum(b"taxj"));
    // Order matters (FNV is positional, not a bag-of-bytes sum).
    assert_ne!(checksum(b"ab"), checksum(b"ba"));
}

proptest! {
    /// Arbitrary section sets round-trip losslessly through encode → decode.
    #[test]
    fn arbitrary_sections_round_trip(
        sections in proptest::collection::vec(
            (0u32..16, proptest::collection::vec(0u8..=255, 0..256)),
            0..6,
        )
    ) {
        let mut builder = SnapshotBuilder::new();
        for (id, payload) in &sections {
            builder.section(*id, payload.clone());
        }
        let snapshot = Snapshot::from_bytes(&builder.encode()).unwrap();
        prop_assert_eq!(snapshot.section_count(), sections.len());
        // First-match semantics per id.
        for (id, payload) in &sections {
            let first = sections.iter().find(|(i, _)| i == id).unwrap();
            prop_assert_eq!(snapshot.section(*id).unwrap(), first.1.as_slice());
            let _ = payload;
        }
    }

    /// Arbitrary primitive streams round-trip bit-exactly through the record layer.
    #[test]
    fn arbitrary_records_round_trip(values in proptest::collection::vec(0u64..=u64::MAX, 0..64)) {
        let mut writer = RecordWriter::new();
        for &value in &values {
            writer.write_u64(value);
            writer.write_f64_bits(f64::from_bits(value));
        }
        let bytes = writer.into_bytes();
        let mut reader = RecordReader::new(&bytes);
        for &value in &values {
            prop_assert_eq!(reader.read_u64().unwrap(), value);
            prop_assert_eq!(reader.read_f64_bits().unwrap().to_bits(), value);
        }
        prop_assert!(reader.is_empty());
    }

    /// Decoding arbitrary garbage never panics and never succeeds by accident
    /// (a success would require forging three checksums).
    #[test]
    fn arbitrary_garbage_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        let _ = Snapshot::from_bytes(&bytes);
    }
}
