//! `taxi-snap`: a versioned, checksummed binary snapshot format for durable warm
//! restarts.
//!
//! Every shard restart used to discard the solution cache and the router's learned
//! latency/quality profiles — a cold ε-greedy re-exploration and a cache-miss storm
//! on every recycle. This crate is the persistence layer that fixes that: a
//! **std-only** binary container that higher layers (`taxi::cache`, `taxi::router`,
//! `taxi-dispatch`) serialise their warm state into and restore from on start.
//!
//! The format is deliberately paranoid, because a *wrong* restore is strictly worse
//! than a cold start:
//!
//! * **Magic + format version header** — a file from a future (or alien) format is
//!   rejected before any payload byte is interpreted.
//! * **Per-section checksums** — each section's payload carries its own FNV-1a 64
//!   digest, so corruption is localised to a typed error, never a misparse.
//! * **Whole-file checksum trailer** — catches truncation and trailer corruption
//!   that section checksums cannot see.
//! * **Atomic writes** — [`SnapshotBuilder::write_atomic`] writes `<path>.tmp` and
//!   renames over the destination, so a crash mid-write leaves the previous
//!   snapshot intact (rename is atomic on POSIX filesystems).
//! * **Length-prefixed records** — [`RecordWriter`]/[`RecordReader`] encode
//!   primitives little-endian with explicit bounds checking; every decode failure
//!   is a typed [`SnapError`], never a panic.
//!
//! Consumers follow one contract: **validate fully, then apply atomically**. A
//! snapshot that fails any check — bad magic, version skew, checksum mismatch,
//! truncation, or semantic validation in the consumer — must leave the consumer
//! exactly as cold as it started.
//!
//! # File layout (version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"TAXISNAP"
//! 8       4     format version (u32 LE)
//! 12      4     section count (u32 LE)
//! 16      8     header checksum: FNV-1a 64 over bytes [0, 16) (u64 LE)
//! --- per section ---
//!         4     section id (u32 LE)
//!         8     payload length (u64 LE)
//!         n     payload bytes
//!         8     payload checksum: FNV-1a 64 over the payload (u64 LE)
//! --- trailer ---
//!         8     file checksum: FNV-1a 64 over everything before it (u64 LE)
//! ```
//!
//! # Example
//!
//! ```
//! use taxi_snap::{RecordReader, RecordWriter, Snapshot, SnapshotBuilder};
//!
//! let mut records = RecordWriter::new();
//! records.write_u32(3);
//! records.write_f64_bits(1.5);
//!
//! let mut builder = SnapshotBuilder::new();
//! builder.section(7, records.into_bytes());
//! let bytes = builder.encode();
//!
//! let snapshot = Snapshot::from_bytes(&bytes)?;
//! let mut reader = RecordReader::new(snapshot.section(7).unwrap());
//! assert_eq!(reader.read_u32()?, 3);
//! assert_eq!(reader.read_f64_bits()?, 1.5);
//! assert!(reader.is_empty());
//! # Ok::<(), taxi_snap::SnapError>(())
//! ```

use std::fmt;
use std::fs;
use std::path::Path;

/// The eight magic bytes every snapshot file starts with.
pub const MAGIC: [u8; 8] = *b"TAXISNAP";

/// The format version this crate writes and accepts.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed byte length of the file header (magic + version + section count +
/// header checksum).
pub const HEADER_LEN: usize = 8 + 4 + 4 + 8;

/// FNV-1a 64-bit digest of `bytes` — the checksum used throughout the format.
/// Deterministic across processes and platforms; not cryptographic (the threat
/// model is bit rot and truncation, not adversaries).
///
/// # Example
///
/// ```
/// assert_ne!(taxi_snap::checksum(b"abc"), taxi_snap::checksum(b"abd"));
/// assert_eq!(taxi_snap::checksum(b""), 0xcbf2_9ce4_8422_2325);
/// ```
pub fn checksum(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Everything that can go wrong reading a snapshot. Every variant is a *typed*
/// rejection: consumers map any of them to a cold start, never to a partial or
/// wrong restore.
#[derive(Debug)]
pub enum SnapError {
    /// Filesystem-level failure (missing file, permissions, short write...).
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The file's format version is not one this build understands.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The byte stream ended before the structure it promised.
    Truncated {
        /// The structure that was being read when the bytes ran out.
        context: &'static str,
    },
    /// A stored checksum does not match the recomputed one.
    ChecksumMismatch {
        /// Which digest failed: `"header"`, `"section"`, or `"file"`.
        scope: &'static str,
    },
    /// The structure decoded but is semantically impossible (e.g. a stored
    /// permutation that is not a permutation, a non-finite cost, an
    /// out-of-range index).
    Corrupt {
        /// What failed validation.
        context: &'static str,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Io(err) => write!(f, "snapshot io error: {err}"),
            SnapError::BadMagic => write!(f, "snapshot magic bytes missing or wrong"),
            SnapError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} not supported (this build reads {supported})"
            ),
            SnapError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapError::ChecksumMismatch { scope } => {
                write!(f, "snapshot {scope} checksum mismatch")
            }
            SnapError::Corrupt { context } => {
                write!(f, "snapshot corrupt: {context}")
            }
        }
    }
}

impl std::error::Error for SnapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapError {
    fn from(err: std::io::Error) -> Self {
        SnapError::Io(err)
    }
}

impl SnapError {
    /// Whether this error is "the file is not there" — the one rejection that is
    /// *expected* (first boot, or snapshotting disabled previously) and should not
    /// be counted as a rejected snapshot.
    pub fn is_not_found(&self) -> bool {
        matches!(self, SnapError::Io(err) if err.kind() == std::io::ErrorKind::NotFound)
    }
}

/// Builds a snapshot file: sections in, encoded bytes (or an atomically written
/// file) out.
#[derive(Debug, Default)]
pub struct SnapshotBuilder {
    version: u32,
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// A builder writing the current [`FORMAT_VERSION`].
    pub fn new() -> Self {
        Self {
            version: FORMAT_VERSION,
            sections: Vec::new(),
        }
    }

    /// Overrides the format version written into the header (test hook for
    /// version-skew coverage; the checksums are computed over whatever version is
    /// written, so the skewed file is otherwise pristine).
    #[must_use]
    pub fn with_version(mut self, version: u32) -> Self {
        self.version = version;
        self
    }

    /// Appends one section. Section ids are consumer-defined; duplicate ids are
    /// allowed by the format but [`Snapshot::section`] returns the first match.
    pub fn section(&mut self, id: u32, payload: Vec<u8>) -> &mut Self {
        self.sections.push((id, payload));
        self
    }

    /// Encodes the snapshot into its byte representation (see the
    /// [module docs](self) for the layout).
    pub fn encode(&self) -> Vec<u8> {
        let payload_bytes: usize = self.sections.iter().map(|(_, p)| p.len()).sum();
        let mut out = Vec::with_capacity(HEADER_LEN + payload_bytes + self.sections.len() * 20 + 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let header_checksum = checksum(&out);
        out.extend_from_slice(&header_checksum.to_le_bytes());
        for (id, payload) in &self.sections {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(payload);
            out.extend_from_slice(&checksum(payload).to_le_bytes());
        }
        let file_checksum = checksum(&out);
        out.extend_from_slice(&file_checksum.to_le_bytes());
        out
    }

    /// Writes the encoded snapshot to `path` atomically: the bytes land in
    /// `<path>.tmp` first and are renamed over the destination, so a crash
    /// mid-write can never leave a torn snapshot where a reader looks. Parent
    /// directories are created as needed.
    pub fn write_atomic(&self, path: &Path) -> Result<(), SnapError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        fs::write(&tmp, self.encode())?;
        fs::rename(&tmp, path)?;
        Ok(())
    }
}

/// A fully verified, decoded snapshot: header checked, version accepted, every
/// section and file checksum recomputed and matched. Holding a `Snapshot` means
/// the *container* is sound; consumers still semantically validate their own
/// section payloads before applying them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    version: u32,
    sections: Vec<(u32, Vec<u8>)>,
}

impl Snapshot {
    /// Decodes and verifies `bytes`. Checks run in order: magic, header checksum,
    /// format version, section structure + per-section checksums, whole-file
    /// checksum. The first failure is returned as its typed [`SnapError`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapError> {
        if bytes.len() < 8 {
            return Err(SnapError::Truncated { context: "magic" });
        }
        if bytes[..8] != MAGIC {
            return Err(SnapError::BadMagic);
        }
        if bytes.len() < HEADER_LEN {
            return Err(SnapError::Truncated { context: "header" });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let section_count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        let stored_header = u64::from_le_bytes(bytes[16..HEADER_LEN].try_into().expect("8 bytes"));
        if checksum(&bytes[..16]) != stored_header {
            return Err(SnapError::ChecksumMismatch { scope: "header" });
        }
        if version != FORMAT_VERSION {
            return Err(SnapError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let mut sections = Vec::with_capacity(section_count as usize);
        let mut pos = HEADER_LEN;
        for _ in 0..section_count {
            if bytes.len() - pos < 12 {
                return Err(SnapError::Truncated {
                    context: "section header",
                });
            }
            let id = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
            let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
            pos += 12;
            let len = usize::try_from(len).map_err(|_| SnapError::Corrupt {
                context: "section length exceeds addressable memory",
            })?;
            if bytes.len() - pos < len + 8 {
                return Err(SnapError::Truncated {
                    context: "section payload",
                });
            }
            let payload = &bytes[pos..pos + len];
            let stored =
                u64::from_le_bytes(bytes[pos + len..pos + len + 8].try_into().expect("8 bytes"));
            if checksum(payload) != stored {
                return Err(SnapError::ChecksumMismatch { scope: "section" });
            }
            sections.push((id, payload.to_vec()));
            pos += len + 8;
        }
        if bytes.len() - pos < 8 {
            return Err(SnapError::Truncated {
                context: "file checksum",
            });
        }
        if bytes.len() - pos > 8 {
            return Err(SnapError::Corrupt {
                context: "trailing bytes after file checksum",
            });
        }
        let stored_file = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8 bytes"));
        if checksum(&bytes[..pos]) != stored_file {
            return Err(SnapError::ChecksumMismatch { scope: "file" });
        }
        Ok(Self { version, sections })
    }

    /// Reads and verifies the snapshot at `path`
    /// (see [`from_bytes`](Self::from_bytes)).
    pub fn read(path: &Path) -> Result<Self, SnapError> {
        Self::from_bytes(&fs::read(path)?)
    }

    /// The format version the file declared.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Number of sections.
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }

    /// The payload of the first section with `id`, if present.
    pub fn section(&self, id: u32) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(section_id, _)| *section_id == id)
            .map(|(_, payload)| payload.as_slice())
    }
}

/// Appends little-endian primitives and length-prefixed byte strings to a
/// growable buffer — the encoder half of the record layer section payloads are
/// built from.
#[derive(Debug, Default)]
pub struct RecordWriter {
    buf: Vec<u8>,
}

impl RecordWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn write_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends a `u32`, little-endian.
    pub fn write_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn write_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `u128`, little-endian.
    pub fn write_u128(&mut self, value: u128) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends an `f64` as its raw IEEE-754 bit pattern — the representation
    /// round-trips **bit-for-bit**, including NaN payloads and signed zeros (the
    /// consumer's validation, not the transport, decides what values are
    /// acceptable).
    pub fn write_f64_bits(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// Appends a `u64`-length-prefixed byte string.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer into its buffer (typically handed to
    /// [`SnapshotBuilder::section`]).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked decoder over a record byte slice — every read past the end is
/// a typed [`SnapError::Truncated`], never a panic.
#[derive(Debug)]
pub struct RecordReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> RecordReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapError> {
        if self.bytes.len() - self.pos < n {
            return Err(SnapError::Truncated { context });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(
            self.take(4, "u32")?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(
            self.take(8, "u64")?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `u128`.
    pub fn read_u128(&mut self) -> Result<u128, SnapError> {
        Ok(u128::from_le_bytes(
            self.take(16, "u128")?.try_into().expect("16 bytes"),
        ))
    }

    /// Reads an `f64` from its raw bit pattern (see
    /// [`RecordWriter::write_f64_bits`]).
    pub fn read_f64_bits(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads a `u64`-length-prefixed byte string.
    pub fn read_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let len = self.read_u64()?;
        let len = usize::try_from(len).map_err(|_| SnapError::Corrupt {
            context: "byte-string length exceeds addressable memory",
        })?;
        self.take(len, "byte string")
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether every byte has been consumed (consumers check this after decoding
    /// a section: leftover bytes mean the payload is not what it claims).
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_section_bytes() -> Vec<u8> {
        let mut builder = SnapshotBuilder::new();
        builder.section(1, vec![1, 2, 3, 4]);
        builder.section(2, b"payload".to_vec());
        builder.encode()
    }

    #[test]
    fn encode_decode_round_trip() {
        let bytes = two_section_bytes();
        let snapshot = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snapshot.version(), FORMAT_VERSION);
        assert_eq!(snapshot.section_count(), 2);
        assert_eq!(snapshot.section(1), Some(&[1u8, 2, 3, 4][..]));
        assert_eq!(snapshot.section(2), Some(&b"payload"[..]));
        assert_eq!(snapshot.section(3), None);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let bytes = SnapshotBuilder::new().encode();
        let snapshot = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snapshot.section_count(), 0);
    }

    #[test]
    fn record_primitives_round_trip() {
        let mut writer = RecordWriter::new();
        writer.write_u8(7);
        writer.write_u32(u32::MAX);
        writer.write_u64(u64::MAX - 1);
        writer.write_u128(u128::MAX / 3);
        writer.write_f64_bits(-0.0);
        writer.write_f64_bits(f64::NAN);
        writer.write_bytes(b"abc");
        let bytes = writer.into_bytes();
        let mut reader = RecordReader::new(&bytes);
        assert_eq!(reader.read_u8().unwrap(), 7);
        assert_eq!(reader.read_u32().unwrap(), u32::MAX);
        assert_eq!(reader.read_u64().unwrap(), u64::MAX - 1);
        assert_eq!(reader.read_u128().unwrap(), u128::MAX / 3);
        assert_eq!(
            reader.read_f64_bits().unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        assert!(reader.read_f64_bits().unwrap().is_nan());
        assert_eq!(reader.read_bytes().unwrap(), b"abc");
        assert!(reader.is_empty());
        assert!(matches!(reader.read_u8(), Err(SnapError::Truncated { .. })));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = two_section_bytes();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapError::BadMagic)
        ));
        assert!(matches!(
            Snapshot::from_bytes(b"short"),
            Err(SnapError::Truncated { .. })
        ));
    }

    #[test]
    fn header_corruption_fails_the_header_checksum() {
        let mut bytes = two_section_bytes();
        bytes[12] ^= 0x01; // section count
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapError::ChecksumMismatch { scope: "header" })
        ));
    }

    #[test]
    fn version_skew_is_rejected_with_the_found_version() {
        let mut builder = SnapshotBuilder::new().with_version(FORMAT_VERSION + 1);
        builder.section(1, vec![9]);
        let bytes = builder.encode();
        match Snapshot::from_bytes(&bytes) {
            Err(SnapError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected version skew rejection, got {other:?}"),
        }
    }

    #[test]
    fn payload_corruption_fails_the_section_checksum() {
        let mut bytes = two_section_bytes();
        bytes[HEADER_LEN + 12] ^= 0x40; // first byte of section 1's payload
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapError::ChecksumMismatch { scope: "section" })
        ));
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let bytes = two_section_bytes();
        for len in 0..bytes.len() {
            let err = Snapshot::from_bytes(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapError::Truncated { .. }
                        | SnapError::ChecksumMismatch { .. }
                        | SnapError::BadMagic
                ),
                "truncation to {len} bytes must be a typed rejection, got {err:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = two_section_bytes();
        bytes.push(0);
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapError::Corrupt { .. })
        ));
    }

    #[test]
    fn file_checksum_guards_the_trailer() {
        let mut bytes = two_section_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapError::ChecksumMismatch { scope: "file" })
        ));
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("taxi-snap-test-{}", std::process::id()));
        let path = dir.join("nested").join("state.snap");
        let mut builder = SnapshotBuilder::new();
        builder.section(1, vec![1]);
        builder.write_atomic(&path).unwrap();
        let mut builder = SnapshotBuilder::new();
        builder.section(1, vec![2]);
        builder.write_atomic(&path).unwrap();
        let snapshot = Snapshot::read(&path).unwrap();
        assert_eq!(snapshot.section(1), Some(&[2u8][..]));
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_the_expected_not_found_rejection() {
        let err = Snapshot::read(Path::new("/nonexistent/taxi.snap")).unwrap_err();
        assert!(err.is_not_found());
        assert!(!SnapError::BadMagic.is_not_found());
    }

    #[test]
    fn errors_display_and_source() {
        use std::error::Error as _;
        let io: SnapError = std::io::Error::other("boom").into();
        assert!(io.source().is_some());
        assert!(format!("{io}").contains("boom"));
        for err in [
            SnapError::BadMagic,
            SnapError::UnsupportedVersion {
                found: 2,
                supported: 1,
            },
            SnapError::Truncated { context: "header" },
            SnapError::ChecksumMismatch { scope: "file" },
            SnapError::Corrupt { context: "perm" },
        ] {
            assert!(!format!("{err}").is_empty());
            assert!(err.source().is_none());
        }
    }
}
