//! Allocation-counting proof that the flight recorder is zero-allocation in
//! steady state.
//!
//! The tracer allocates at construction (ring slots) and at component
//! registration (one ring + label per component) — that is warm-up. After it,
//! the entire request-path surface — minting a [`TraceId`], recording spans
//! through a [`TraceSink`], and the tail-sampled [`Tracer::finish`] — must
//! perform **zero heap allocations**, no matter how many times the rings wrap.
//! That property is what makes the recorder safe to leave always-on in
//! production; this test is its proof, in the style of
//! `dispatch/tests/dispatch_alloc.rs`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::{Duration, Instant};

use taxi_trace::{AttrKey, RequestFacts, SpanName, TraceConfig, Tracer};

struct CountingAllocator;

// Per-thread counter (const-init `Cell<u64>` has no destructor and never
// allocates itself), so a concurrent libtest harness thread cannot pollute the
// measured region.
thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn count_one() {
    ALLOCATIONS.with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

/// One request's worth of recording: admission span, route span, solve span
/// with stage children, then the tail-sampled finish.
fn trace_one(tracer: &Tracer, admission: &taxi_trace::TraceSink, worker: &taxi_trace::TraceSink) {
    let trace = tracer.mint();
    let start = Instant::now();
    admission.record(
        trace,
        SpanName::Admit,
        start,
        Duration::from_nanos(300),
        &[(AttrKey::Priority, 0), (AttrKey::QueueDepth, 3)],
    );
    worker.record(
        trace,
        SpanName::Route,
        start,
        Duration::from_nanos(90),
        &[
            (AttrKey::Backend, 1),
            (AttrKey::Explored, 0),
            (AttrKey::ExcludedMask, 0b10),
        ],
    );
    worker.record(
        trace,
        SpanName::Solve,
        start,
        Duration::from_micros(40),
        &[(AttrKey::Backend, 1), (AttrKey::BatchSize, 4)],
    );
    for stage in [
        SpanName::StageCluster,
        SpanName::StageFixEndpoints,
        SpanName::StageSolveLevels,
        SpanName::StageAssemble,
        SpanName::StageAccount,
    ] {
        worker.record(trace, stage, start, Duration::from_micros(8), &[]);
    }
    // Mix of outcomes so both sampler arms (always-keep and probabilistic)
    // run inside the measured region.
    let facts = if trace.as_u64() % 7 == 0 {
        RequestFacts::completed(Duration::from_micros(50)).deadline_missed()
    } else {
        RequestFacts::completed(Duration::from_micros(50))
    };
    tracer.finish(
        trace,
        start,
        &facts,
        &[(AttrKey::Shard, 0), (AttrKey::Generation, 1)],
    );
}

#[test]
fn recording_is_allocation_free_after_warmup() {
    // Small rings so the steady-state round wraps them many times over —
    // overwrite-oldest must not allocate either.
    let tracer = Tracer::new(
        TraceConfig::new()
            .with_ring_capacity(32)
            .with_keep_probability(0.25)
            .with_seed(7),
    );
    let admission = tracer.register("admission");
    let worker = tracer.register("worker-0");

    // Warm-up: touch every code path once.
    for _ in 0..64 {
        trace_one(&tracer, &admission, &worker);
    }

    // Steady state: mint + record + finish must not touch the heap.
    let before = allocations();
    for _ in 0..2_000 {
        trace_one(&tracer, &admission, &worker);
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "steady-state trace recording performed {delta} allocations"
    );

    let stats = tracer.stats();
    assert_eq!(stats.minted, 2_064);
    assert_eq!(stats.kept + stats.dropped, 2_064);
    assert!(stats.kept > 0, "deadline misses must be kept");
    // 8 spans per request land in component rings + 1 root span each.
    assert_eq!(stats.recorded_spans, 2_064 * 9);
    assert!(stats.resident_spans <= stats.rings * stats.ring_capacity);
}
