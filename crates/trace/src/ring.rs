//! Lock-free, fixed-capacity, overwrite-oldest span storage.
//!
//! Each [`SpanRing`] slot holds one encoded span as [`SPAN_WORDS`] atomic
//! words guarded by a per-slot sequence number — a seqlock built entirely from
//! safe `AtomicU64` operations. Writers never block readers and readers never
//! block writers; a reader that races a writer sees the sequence move and
//! discards the torn record instead of returning garbage.
//!
//! ## Protocol
//!
//! A writer takes a global ticket (`head.fetch_add(1)`), which names both its
//! slot (`ticket % capacity`) and its *turn* (`ticket / capacity`, the number
//! of times the ring has lapped that slot). The slot's sequence is `2·turn+1`
//! while turn `turn`'s write is in flight and `2·turn+2` once it is published:
//!
//! 1. claim: `seq.fetch_max(2·turn+1)` — `fetch_max`, not a store, so a slower
//!    writer from a previous lap can never regress the sequence under a newer
//!    writer from a later lap;
//! 2. write the span words (relaxed stores);
//! 3. publish: `seq.compare_exchange(2·turn+1, 2·turn+2, Release)` — the CAS
//!    fails harmlessly if a later lap already claimed the slot, in which case
//!    this writer's words are simply lost to the newer overwrite.
//!
//! A reader snapshots a slot by reading `seq` (Acquire), the words, then `seq`
//! again: the record is valid only if both reads agree on a *published* value
//! for the expected turn. The one residual race — a writer exactly one full
//! sequence lap ahead republishing the same `seq` value between the reader's
//! two checks — cannot cause unsoundness (all accesses are atomic) and is
//! caught one layer up by tag-validated decoding in [`crate::Span`].
//!
//! Capacity is fixed at construction; pushing and snapshotting perform **zero
//! heap allocations** (snapshotting writes into a caller-provided buffer).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of `u64` words in one encoded span record.
pub const SPAN_WORDS: usize = 8;

#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; SPAN_WORDS],
}

impl Slot {
    fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            words: [(); SPAN_WORDS].map(|()| AtomicU64::new(0)),
        }
    }
}

/// A multi-producer, snapshot-reader ring of encoded spans. See the module
/// docs for the sequence protocol.
#[derive(Debug)]
pub struct SpanRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl SpanRing {
    /// Creates a ring holding `capacity` spans (clamped to ≥ 1). This is the
    /// only allocating operation.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let slots = (0..capacity).map(|_| Slot::new()).collect::<Vec<_>>();
        Self {
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(0),
        }
    }

    /// Capacity in spans.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever pushed (resident count is `min(recorded, capacity)`).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records one encoded span, overwriting the oldest once full. Lock-free
    /// and allocation-free.
    pub fn push(&self, words: [u64; SPAN_WORDS]) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let slot = &self.slots[(ticket % cap) as usize];
        let turn = ticket / cap;
        let begin = 2 * turn + 1;
        // Claim the slot for this turn; if a later lap already claimed it
        // (fetch_max returned something newer), our record is superseded
        // before it was written — skip the stores, the newer writer owns the
        // slot.
        if slot.seq.fetch_max(begin, Ordering::AcqRel) > begin {
            return;
        }
        for (dst, &src) in slot.words.iter().zip(words.iter()) {
            dst.store(src, Ordering::Relaxed);
        }
        // Publish; a failed CAS means a newer lap claimed mid-write and the
        // slot now belongs to it.
        let _ = slot
            .seq
            .compare_exchange(begin, begin + 1, Ordering::Release, Ordering::Relaxed);
    }

    /// Copies every cleanly published resident record into `out` (cleared
    /// first), oldest to newest. Records mid-overwrite are skipped. Does not
    /// allocate beyond growing `out` to at most `capacity` entries.
    pub fn snapshot_into(&self, out: &mut Vec<[u64; SPAN_WORDS]>) {
        out.clear();
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let resident = head.min(cap);
        let first = head - resident;
        for ticket in first..head {
            let slot = &self.slots[(ticket % cap) as usize];
            let turn = ticket / cap;
            let published = 2 * turn + 2;
            if slot.seq.load(Ordering::Acquire) != published {
                continue;
            }
            let mut words = [0u64; SPAN_WORDS];
            for (dst, src) in words.iter_mut().zip(slot.words.iter()) {
                *dst = src.load(Ordering::Relaxed);
            }
            if slot.seq.load(Ordering::Acquire) == published {
                out.push(words);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn record(tag: u64) -> [u64; SPAN_WORDS] {
        [tag; SPAN_WORDS]
    }

    #[test]
    fn records_and_snapshots_in_order() {
        let ring = SpanRing::new(4);
        for i in 0..3 {
            ring.push(record(i));
        }
        let mut out = Vec::new();
        ring.snapshot_into(&mut out);
        assert_eq!(out, vec![record(0), record(1), record(2)]);
        assert_eq!(ring.recorded(), 3);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let ring = SpanRing::new(4);
        for i in 0..10 {
            ring.push(record(i));
        }
        let mut out = Vec::new();
        ring.snapshot_into(&mut out);
        assert_eq!(out, vec![record(6), record(7), record(8), record(9)]);
        assert_eq!(ring.recorded(), 10);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let ring = SpanRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(record(41));
        ring.push(record(42));
        let mut out = Vec::new();
        ring.snapshot_into(&mut out);
        assert_eq!(out, vec![record(42)]);
    }

    #[test]
    fn concurrent_pushes_never_tear() {
        // Hammer a small ring from several threads while snapshotting; every
        // surviving record must be internally consistent (all words equal, by
        // construction of `record`).
        let ring = Arc::new(SpanRing::new(8));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        ring.push(record(w * 1_000_000 + i));
                    }
                })
            })
            .collect();
        let mut out = Vec::new();
        for _ in 0..200 {
            ring.snapshot_into(&mut out);
            for words in &out {
                assert!(
                    words.iter().all(|&w| w == words[0]),
                    "torn record observed: {words:?}"
                );
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(ring.recorded(), 20_000);
        ring.snapshot_into(&mut out);
        assert!(out.len() <= 8);
    }
}
