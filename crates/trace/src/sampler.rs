//! Tail sampling: decide at request *completion* which traces to keep.
//!
//! Head sampling (decide at admission) throws away exactly the traces you
//! want — the slow and broken tail is invisible until the request finishes.
//! [`TailSampler`] inverts that: every trace is recorded into the flight
//! recorder unconditionally (recording is cheap and overwrite-oldest), and the
//! *keep* decision happens at [`decide`](TailSampler::decide) time, when the
//! outcome is known:
//!
//! * failed / shed / deadline-missed → always keep ([`KeepReason::Outcome`]);
//! * end-to-end latency ≥ threshold → always keep ([`KeepReason::Latency`]);
//! * otherwise keep with a configured probability, driven by a seeded
//!   counter-mode splitmix64 stream so test runs are deterministic
//!   ([`KeepReason::Sampled`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Completion facts about one request, fed to [`TailSampler::decide`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestFacts {
    /// The solve failed (worker panic or solver error).
    pub failed: bool,
    /// The request was shed by the admission policy.
    pub shed: bool,
    /// The request resolved after its deadline.
    pub deadline_missed: bool,
    /// End-to-end latency (submission to resolution).
    pub latency: Duration,
}

impl RequestFacts {
    /// Facts for a successfully completed request.
    pub fn completed(latency: Duration) -> Self {
        Self {
            latency,
            ..Self::default()
        }
    }

    /// Marks the request failed.
    #[must_use]
    pub fn failed(mut self) -> Self {
        self.failed = true;
        self
    }

    /// Marks the request shed.
    #[must_use]
    pub fn shed(mut self) -> Self {
        self.shed = true;
        self
    }

    /// Marks the request's deadline missed.
    #[must_use]
    pub fn deadline_missed(mut self) -> Self {
        self.deadline_missed = true;
        self
    }

    /// Whether any always-keep outcome bit is set.
    pub fn bad_outcome(&self) -> bool {
        self.failed || self.shed || self.deadline_missed
    }
}

/// Why a trace was kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepReason {
    /// Failed, shed, or deadline-missed — always kept.
    Outcome,
    /// Latency breached the tail threshold — always kept.
    Latency,
    /// Won the probabilistic keep draw.
    Sampled,
}

/// The keep/drop policy. Lock-free and allocation-free; one atomic counter
/// advances the deterministic sampling stream.
#[derive(Debug)]
pub struct TailSampler {
    latency_threshold: Duration,
    /// Keep when `splitmix64(seed + n) < keep_bar`, i.e. the probability
    /// mapped onto the full `u64` range. `u64::MAX` means "always".
    keep_bar: u64,
    seed: u64,
    draws: AtomicU64,
}

impl TailSampler {
    /// Creates a sampler. `keep_probability` is clamped to `0.0..=1.0`.
    pub fn new(latency_threshold: Duration, keep_probability: f64, seed: u64) -> Self {
        let p = keep_probability.clamp(0.0, 1.0);
        let keep_bar = if p >= 1.0 {
            u64::MAX
        } else {
            // p * 2^64, computed without overflow: p * 2^32 * 2^32.
            (p * 4_294_967_296.0) as u64 * 4_294_967_296u64
        };
        Self {
            latency_threshold,
            keep_bar,
            seed,
            draws: AtomicU64::new(0),
        }
    }

    /// Decides whether a trace with these completion facts is kept, and why.
    pub fn decide(&self, facts: &RequestFacts) -> Option<KeepReason> {
        if facts.bad_outcome() {
            return Some(KeepReason::Outcome);
        }
        if facts.latency >= self.latency_threshold {
            return Some(KeepReason::Latency);
        }
        if self.keep_bar == 0 {
            return None;
        }
        if self.keep_bar == u64::MAX {
            return Some(KeepReason::Sampled);
        }
        let n = self.draws.fetch_add(1, Ordering::Relaxed);
        if splitmix64(self.seed.wrapping_add(n)) < self.keep_bar {
            Some(KeepReason::Sampled)
        } else {
            None
        }
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mix, used here in counter mode
/// (`splitmix64(seed + n)`) as the deterministic sampling stream.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> RequestFacts {
        RequestFacts::completed(Duration::from_micros(100))
    }

    #[test]
    fn bad_outcomes_always_keep() {
        let s = TailSampler::new(Duration::from_millis(100), 0.0, 1);
        assert_eq!(s.decide(&fast().failed()), Some(KeepReason::Outcome));
        assert_eq!(s.decide(&fast().shed()), Some(KeepReason::Outcome));
        assert_eq!(
            s.decide(&fast().deadline_missed()),
            Some(KeepReason::Outcome)
        );
    }

    #[test]
    fn latency_breach_always_keeps() {
        let s = TailSampler::new(Duration::from_millis(100), 0.0, 1);
        let slow = RequestFacts::completed(Duration::from_millis(100));
        assert_eq!(s.decide(&slow), Some(KeepReason::Latency));
        assert_eq!(s.decide(&fast()), None);
    }

    #[test]
    fn probability_extremes_are_deterministic() {
        let never = TailSampler::new(Duration::from_secs(1), 0.0, 7);
        let always = TailSampler::new(Duration::from_secs(1), 1.0, 7);
        for _ in 0..100 {
            assert_eq!(never.decide(&fast()), None);
            assert_eq!(always.decide(&fast()), Some(KeepReason::Sampled));
        }
    }

    #[test]
    fn same_seed_same_decisions() {
        let a = TailSampler::new(Duration::from_secs(1), 0.25, 42);
        let b = TailSampler::new(Duration::from_secs(1), 0.25, 42);
        let da: Vec<_> = (0..256).map(|_| a.decide(&fast())).collect();
        let db: Vec<_> = (0..256).map(|_| b.decide(&fast())).collect();
        assert_eq!(da, db);
        let kept = da.iter().filter(|d| d.is_some()).count();
        // ~25% of 256 draws; wide bounds, the point is "neither 0 nor all".
        assert!((24..=104).contains(&kept), "kept {kept}/256 at p=0.25");
    }

    #[test]
    fn probability_is_clamped() {
        let s = TailSampler::new(Duration::from_secs(1), 7.5, 1);
        assert_eq!(s.decide(&fast()), Some(KeepReason::Sampled));
        let s = TailSampler::new(Duration::from_secs(1), -0.5, 1);
        assert_eq!(s.decide(&fast()), None);
    }
}
