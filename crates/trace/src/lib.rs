//! # taxi-trace — per-request span tracing for the TAXI serving stack
//!
//! The dispatch/fleet layers answer *"how is the service doing?"* with counters
//! and histograms; this crate answers *"why was **this** request slow?"*. It is
//! an always-on **flight recorder**:
//!
//! * a [`TraceId`] is minted at admission and rides the request through every
//!   layer (queue, router, batcher, solver pipeline, cache, fleet shard);
//! * each layer records fixed-size [`Span`]s — name, start, duration, up to
//!   [`MAX_ATTRS`] integer attributes — into a lock-free, fixed-capacity,
//!   overwrite-oldest [`ring::SpanRing`] registered per component
//!   ([`Tracer::register`]). Recording performs **zero heap allocations** after
//!   warm-up (proven by a counting-allocator test), so tracing can stay on in
//!   production;
//! * at request completion, [`Tracer::finish`] applies **tail sampling**
//!   ([`sampler::TailSampler`]): traces that failed, were shed, missed their
//!   deadline, or breached the latency threshold are *always* kept; the rest
//!   keep with a seeded deterministic probability. The verdict lands as flag
//!   bits on the root `request` span;
//! * kept traces export as Chrome `trace_event` JSON
//!   ([`export::chrome_trace`], load in `chrome://tracing` / Perfetto) and as
//!   flamegraph-folded text ([`export::folded`]).
//!
//! Everything is `std` atomics — no locks on the record path (the only mutex
//! guards ring *registration*), no `unsafe`, no external runtime. Spans are
//! packed into [`AtomicU64`] words with a per-slot sequence protocol, so a
//! torn read is detected and discarded rather than ever being undefined
//! behaviour.
//!
//! # Example
//!
//! ```
//! use std::time::{Duration, Instant};
//! use taxi_trace::{AttrKey, RequestFacts, SpanName, TraceConfig, Tracer};
//!
//! let tracer = Tracer::new(TraceConfig::new().with_keep_probability(1.0));
//! let sink = tracer.register("worker-0");
//! let trace = tracer.mint();
//! let start = Instant::now();
//! sink.record(
//!     trace,
//!     SpanName::Solve,
//!     start,
//!     Duration::from_micros(250),
//!     &[(AttrKey::Worker, 0), (AttrKey::BatchSize, 4)],
//! );
//! let kept = tracer.finish(
//!     trace,
//!     start,
//!     &RequestFacts::completed(Duration::from_micros(300)),
//!     &[(AttrKey::Shard, 1)],
//! );
//! assert!(kept, "keep probability 1.0 keeps everything");
//! let chrome = taxi_trace::export::chrome_trace(&tracer);
//! assert!(chrome.contains("\"solve\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod ring;
pub mod sampler;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ring::SpanRing;
pub use sampler::{KeepReason, RequestFacts, TailSampler};

/// Maximum number of attributes one span can carry (excess is truncated).
pub const MAX_ATTRS: usize = 4;

/// Flag bits carried by the root `request` span (see [`Span::flags`]).
pub mod flags {
    /// The trace survived tail sampling and is exported.
    pub const KEPT: u8 = 1;
    /// The request's solve failed.
    pub const FAILED: u8 = 2;
    /// The request was shed by the admission policy.
    pub const SHED: u8 = 4;
    /// The request resolved after its deadline.
    pub const DEADLINE_MISS: u8 = 8;
    /// Kept because end-to-end latency breached the tail threshold.
    pub const LATENCY: u8 = 16;
    /// Kept by the probabilistic arm (seeded RNG).
    pub const SAMPLED: u8 = 32;
}

/// Identity of one traced request, minted at admission ([`Tracer::mint`]).
///
/// `TraceId::NONE` (zero) marks an untraced request: recording against it is a
/// no-op by convention at the call sites, and the tracer never mints it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// The "not traced" sentinel.
    pub const NONE: TraceId = TraceId(0);

    /// The raw id (zero for [`NONE`](Self::NONE)).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Whether this is a real minted id.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// What one span measures. Tags are stable `u8`s so names pack into the ring's
/// atomic words without storing pointers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanName {
    /// The root span of one request (recorded by [`Tracer::finish`]; carries
    /// the tail-sampling verdict in its flags).
    Request,
    /// Admission: queue-lock acquisition + policy decision + enqueue.
    Admit,
    /// Time spent queued before a worker dequeued the request's batch.
    QueueWait,
    /// The adaptive router's backend decision for this request.
    Route,
    /// Micro-batch formation (instant event on the batch's first request).
    Batch,
    /// A solution-cache probe (admission-time or worker-side re-check).
    CacheLookup,
    /// Served from the cache by the worker's pre-solve re-check.
    CacheLateHit,
    /// Rode on a concurrent identical request's solve (singleflight).
    Coalesce,
    /// The backend solve itself.
    Solve,
    /// Pipeline stage: hierarchical clustering.
    StageCluster,
    /// Pipeline stage: inter-cluster endpoint fixing.
    StageFixEndpoints,
    /// Pipeline stage: sub-problem solving.
    StageSolveLevels,
    /// Pipeline stage: tour assembly.
    StageAssemble,
    /// Pipeline stage: hardware latency/energy accounting.
    StageAccount,
}

impl SpanName {
    /// Every span name (decode/coverage helper).
    pub const ALL: [SpanName; 14] = [
        SpanName::Request,
        SpanName::Admit,
        SpanName::QueueWait,
        SpanName::Route,
        SpanName::Batch,
        SpanName::CacheLookup,
        SpanName::CacheLateHit,
        SpanName::Coalesce,
        SpanName::Solve,
        SpanName::StageCluster,
        SpanName::StageFixEndpoints,
        SpanName::StageSolveLevels,
        SpanName::StageAssemble,
        SpanName::StageAccount,
    ];

    fn tag(self) -> u8 {
        match self {
            SpanName::Request => 1,
            SpanName::Admit => 2,
            SpanName::QueueWait => 3,
            SpanName::Route => 4,
            SpanName::Batch => 5,
            SpanName::CacheLookup => 6,
            SpanName::CacheLateHit => 7,
            SpanName::Coalesce => 8,
            SpanName::Solve => 9,
            SpanName::StageCluster => 10,
            SpanName::StageFixEndpoints => 11,
            SpanName::StageSolveLevels => 12,
            SpanName::StageAssemble => 13,
            SpanName::StageAccount => 14,
        }
    }

    fn from_tag(tag: u8) -> Option<SpanName> {
        SpanName::ALL.into_iter().find(|name| name.tag() == tag)
    }

    /// Short stable label (used by the exports).
    pub fn label(self) -> &'static str {
        match self {
            SpanName::Request => "request",
            SpanName::Admit => "admit",
            SpanName::QueueWait => "queue_wait",
            SpanName::Route => "route",
            SpanName::Batch => "batch",
            SpanName::CacheLookup => "cache_lookup",
            SpanName::CacheLateHit => "cache_late_hit",
            SpanName::Coalesce => "coalesce",
            SpanName::Solve => "solve",
            SpanName::StageCluster => "stage_cluster",
            SpanName::StageFixEndpoints => "stage_fix_endpoints",
            SpanName::StageSolveLevels => "stage_solve_levels",
            SpanName::StageAssemble => "stage_assemble",
            SpanName::StageAccount => "stage_account",
        }
    }

    /// The span's parent frame in the synthetic flamegraph stack (`None` for
    /// the root). Pipeline stages nest under the solve; everything else hangs
    /// directly off the request.
    pub fn folded_parent(self) -> Option<SpanName> {
        match self {
            SpanName::Request => None,
            SpanName::StageCluster
            | SpanName::StageFixEndpoints
            | SpanName::StageSolveLevels
            | SpanName::StageAssemble
            | SpanName::StageAccount => Some(SpanName::Solve),
            _ => Some(SpanName::Request),
        }
    }
}

/// Key of one span attribute. Values are raw `u64`s; the key says how to read
/// them (index, flag, count, microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKey {
    /// Solver backend index ([`SolverBackend::index`](../taxi/enum.SolverBackend.html)).
    Backend,
    /// 1 when the routing decision came from the ε-greedy exploration arm.
    Explored,
    /// Routing decision kind (0 exploit, 1 explore, 2 cold-start, 3 infeasible).
    Decision,
    /// Bitmask of backends excluded by the router's deadline-feasibility filter.
    ExcludedMask,
    /// Micro-batch size.
    BatchSize,
    /// Priority class (0 interactive, 1 bulk).
    Priority,
    /// Queue depth observed at admission.
    QueueDepth,
    /// Fleet shard slot the request was served on.
    Shard,
    /// Shard service generation.
    Generation,
    /// Worker thread index.
    Worker,
    /// 1 when a cache probe hit.
    Hit,
    /// 1 when the request was solved degraded (cheaper backend / tighter budget).
    Degraded,
    /// 1 when the batch was formed under overload.
    Overloaded,
    /// End-to-end latency in microseconds (root span).
    LatencyUs,
    /// Service-wide submission sequence number.
    Seq,
    /// Instance size (cities).
    Cities,
}

impl AttrKey {
    /// Every attribute key (decode/coverage helper).
    pub const ALL: [AttrKey; 16] = [
        AttrKey::Backend,
        AttrKey::Explored,
        AttrKey::Decision,
        AttrKey::ExcludedMask,
        AttrKey::BatchSize,
        AttrKey::Priority,
        AttrKey::QueueDepth,
        AttrKey::Shard,
        AttrKey::Generation,
        AttrKey::Worker,
        AttrKey::Hit,
        AttrKey::Degraded,
        AttrKey::Overloaded,
        AttrKey::LatencyUs,
        AttrKey::Seq,
        AttrKey::Cities,
    ];

    fn tag(self) -> u8 {
        match self {
            AttrKey::Backend => 1,
            AttrKey::Explored => 2,
            AttrKey::Decision => 3,
            AttrKey::ExcludedMask => 4,
            AttrKey::BatchSize => 5,
            AttrKey::Priority => 6,
            AttrKey::QueueDepth => 7,
            AttrKey::Shard => 8,
            AttrKey::Generation => 9,
            AttrKey::Worker => 10,
            AttrKey::Hit => 11,
            AttrKey::Degraded => 12,
            AttrKey::Overloaded => 13,
            AttrKey::LatencyUs => 14,
            AttrKey::Seq => 15,
            AttrKey::Cities => 16,
        }
    }

    fn from_tag(tag: u8) -> Option<AttrKey> {
        AttrKey::ALL.into_iter().find(|key| key.tag() == tag)
    }

    /// Short stable label (used by the exports).
    pub fn label(self) -> &'static str {
        match self {
            AttrKey::Backend => "backend",
            AttrKey::Explored => "explored",
            AttrKey::Decision => "decision",
            AttrKey::ExcludedMask => "excluded_mask",
            AttrKey::BatchSize => "batch_size",
            AttrKey::Priority => "priority",
            AttrKey::QueueDepth => "queue_depth",
            AttrKey::Shard => "shard",
            AttrKey::Generation => "generation",
            AttrKey::Worker => "worker",
            AttrKey::Hit => "hit",
            AttrKey::Degraded => "degraded",
            AttrKey::Overloaded => "overloaded",
            AttrKey::LatencyUs => "latency_us",
            AttrKey::Seq => "seq",
            AttrKey::Cities => "cities",
        }
    }
}

/// One decoded span: what a layer did for one request, and for how long.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The request this span belongs to.
    pub trace: TraceId,
    /// What the span measures.
    pub name: SpanName,
    /// Flag bits (see [`flags`]; nonzero only on root spans today).
    pub flags: u8,
    /// Start, as an offset from the tracer's epoch.
    pub start: Duration,
    /// Duration of the measured work.
    pub duration: Duration,
    attrs: [(AttrKey, u64); MAX_ATTRS],
    attr_len: u8,
}

impl Span {
    /// The span's attributes, in recording order.
    pub fn attrs(&self) -> &[(AttrKey, u64)] {
        &self.attrs[..usize::from(self.attr_len)]
    }

    /// The value of attribute `key`, if recorded.
    pub fn attr(&self, key: AttrKey) -> Option<u64> {
        self.attrs()
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
    }

    /// Whether the trace carrying this root span survived tail sampling.
    pub fn kept(&self) -> bool {
        self.flags & flags::KEPT != 0
    }

    /// Packs a span into the ring's word layout. Word 1 holds, low to high:
    /// name tag (8 bits), flags (8), attribute count (8), then one key tag per
    /// attribute slot (8 each).
    fn encode(
        trace: TraceId,
        name: SpanName,
        fl: u8,
        start_ns: u64,
        dur_ns: u64,
        attrs: &[(AttrKey, u64)],
    ) -> [u64; ring::SPAN_WORDS] {
        let n = attrs.len().min(MAX_ATTRS);
        let mut meta = u64::from(name.tag()) | (u64::from(fl) << 8) | ((n as u64) << 16);
        let mut words = [0u64; ring::SPAN_WORDS];
        for (slot, &(key, value)) in attrs.iter().take(MAX_ATTRS).enumerate() {
            meta |= u64::from(key.tag()) << (24 + 8 * slot);
            words[4 + slot] = value;
        }
        words[0] = trace.0;
        words[1] = meta;
        words[2] = start_ns;
        words[3] = dur_ns;
        words
    }

    /// Decodes one ring record; `None` for records whose tags do not decode
    /// (a wrap race stomped the slot — the defensive counterpart of the ring's
    /// sequence protocol).
    fn decode(words: &[u64; ring::SPAN_WORDS]) -> Option<Span> {
        let meta = words[1];
        let name = SpanName::from_tag((meta & 0xff) as u8)?;
        let fl = ((meta >> 8) & 0xff) as u8;
        let n = ((meta >> 16) & 0xff) as usize;
        if n > MAX_ATTRS {
            return None;
        }
        let mut attrs = [(AttrKey::Backend, 0u64); MAX_ATTRS];
        for (slot, attr) in attrs.iter_mut().enumerate().take(n) {
            let key = AttrKey::from_tag(((meta >> (24 + 8 * slot)) & 0xff) as u8)?;
            *attr = (key, words[4 + slot]);
        }
        Some(Span {
            trace: TraceId(words[0]),
            name,
            flags: fl,
            start: Duration::from_nanos(words[2]),
            duration: Duration::from_nanos(words[3]),
            attrs,
            attr_len: n as u8,
        })
    }
}

/// Configuration of a [`Tracer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Capacity, in spans, of each registered ring (clamped to ≥ 8).
    pub ring_capacity: usize,
    /// End-to-end latency at which a trace is always kept (tail sampling).
    pub latency_threshold: Duration,
    /// Probability of keeping an unremarkable trace (clamped to `0.0..=1.0`).
    pub keep_probability: f64,
    /// Seed of the deterministic sampling sequence.
    pub seed: u64,
}

impl TraceConfig {
    /// Defaults: 1024-span rings, 100ms tail threshold, 1% probabilistic keep,
    /// a fixed seed.
    pub fn new() -> Self {
        Self {
            ring_capacity: 1024,
            latency_threshold: Duration::from_millis(100),
            keep_probability: 0.01,
            seed: 0x7a81_5eed,
        }
    }

    /// Sets the per-ring span capacity.
    #[must_use]
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Sets the always-keep latency threshold.
    #[must_use]
    pub fn with_latency_threshold(mut self, threshold: Duration) -> Self {
        self.latency_threshold = threshold;
        self
    }

    /// Sets the probabilistic keep rate for unremarkable traces.
    #[must_use]
    pub fn with_keep_probability(mut self, p: f64) -> Self {
        self.keep_probability = p;
        self
    }

    /// Sets the sampling seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// A recording handle onto one component's ring (workers, the admission queue,
/// ...). Cloning shares the ring; recording is lock-free and allocation-free.
#[derive(Debug, Clone)]
pub struct TraceSink {
    epoch: Instant,
    ring: Arc<SpanRing>,
}

impl TraceSink {
    /// Records one span. `start` is clamped to the tracer's epoch; attributes
    /// beyond [`MAX_ATTRS`] are truncated.
    pub fn record(
        &self,
        trace: TraceId,
        name: SpanName,
        start: Instant,
        duration: Duration,
        attrs: &[(AttrKey, u64)],
    ) {
        self.record_flagged(trace, name, 0, start, duration, attrs);
    }

    /// [`record`](Self::record) with explicit flag bits (root spans).
    pub fn record_flagged(
        &self,
        trace: TraceId,
        name: SpanName,
        fl: u8,
        start: Instant,
        duration: Duration,
        attrs: &[(AttrKey, u64)],
    ) {
        let start_ns = clamp_ns(start.saturating_duration_since(self.epoch));
        let dur_ns = clamp_ns(duration);
        self.ring
            .push(Span::encode(trace, name, fl, start_ns, dur_ns, attrs));
    }
}

fn clamp_ns(duration: Duration) -> u64 {
    duration.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Point-in-time counters of one [`Tracer`] (the exposition layer's view).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TracerStats {
    /// Trace ids minted so far.
    pub minted: u64,
    /// Finished traces retained by tail sampling.
    pub kept: u64,
    /// Finished traces dropped by tail sampling.
    pub dropped: u64,
    /// Spans recorded across every ring (including overwritten ones).
    pub recorded_spans: u64,
    /// Spans currently resident (≤ rings × capacity).
    pub resident_spans: u64,
    /// Registered rings (components).
    pub rings: u64,
    /// Per-ring capacity in spans.
    pub ring_capacity: u64,
}

/// The per-request span tracer: mints [`TraceId`]s, owns the component rings,
/// applies tail sampling at [`finish`](Self::finish), and feeds the exports.
///
/// Shareable as `Arc<Tracer>`; every operation on the request path is
/// lock-free (the registration mutex is touched only at component start-up).
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    config: TraceConfig,
    sampler: TailSampler,
    rings: Mutex<Vec<(String, Arc<SpanRing>)>>,
    root: TraceSink,
    next_trace: AtomicU64,
    kept: AtomicU64,
    dropped: AtomicU64,
}

impl Tracer {
    /// Creates a tracer from `config`. The root `request` ring is registered
    /// implicitly.
    pub fn new(config: TraceConfig) -> Self {
        let epoch = Instant::now();
        let capacity = config.ring_capacity.max(8);
        let root_ring = Arc::new(SpanRing::new(capacity));
        let root = TraceSink {
            epoch,
            ring: Arc::clone(&root_ring),
        };
        Self {
            epoch,
            sampler: TailSampler::new(
                config.latency_threshold,
                config.keep_probability,
                config.seed,
            ),
            config,
            rings: Mutex::new(vec![("request".to_string(), root_ring)]),
            root,
            next_trace: AtomicU64::new(0),
            kept: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Creates a tracer with the default configuration.
    pub fn with_defaults() -> Self {
        Self::new(TraceConfig::new())
    }

    /// The tracer's configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// The instant span offsets are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Mints the next trace id (never [`TraceId::NONE`]).
    pub fn mint(&self) -> TraceId {
        TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Registers a component ring and returns its recording sink. Called once
    /// per component at start-up (this is the only locking operation).
    pub fn register(&self, label: &str) -> TraceSink {
        let ring = Arc::new(SpanRing::new(self.config.ring_capacity.max(8)));
        self.rings
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push((label.to_string(), Arc::clone(&ring)));
        TraceSink {
            epoch: self.epoch,
            ring,
        }
    }

    /// Finishes a traced request: applies tail sampling to `facts`, records
    /// the root `request` span (outcome flags + `latency_us` + the caller's
    /// attributes, typically shard/generation), and returns whether the trace
    /// was kept. Allocation-free.
    pub fn finish(
        &self,
        trace: TraceId,
        start: Instant,
        facts: &RequestFacts,
        attrs: &[(AttrKey, u64)],
    ) -> bool {
        if !trace.is_some() {
            return false;
        }
        let mut fl = 0u8;
        if facts.failed {
            fl |= flags::FAILED;
        }
        if facts.shed {
            fl |= flags::SHED;
        }
        if facts.deadline_missed {
            fl |= flags::DEADLINE_MISS;
        }
        let verdict = self.sampler.decide(facts);
        match verdict {
            Some(KeepReason::Outcome) => fl |= flags::KEPT,
            Some(KeepReason::Latency) => fl |= flags::KEPT | flags::LATENCY,
            Some(KeepReason::Sampled) => fl |= flags::KEPT | flags::SAMPLED,
            None => {}
        }
        if verdict.is_some() {
            self.kept.fetch_add(1, Ordering::Relaxed);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let mut all = [(AttrKey::LatencyUs, 0u64); MAX_ATTRS];
        all[0] = (
            AttrKey::LatencyUs,
            facts.latency.as_micros().min(u128::from(u64::MAX)) as u64,
        );
        let extra = attrs.len().min(MAX_ATTRS - 1);
        all[1..1 + extra].copy_from_slice(&attrs[..extra]);
        self.root.record_flagged(
            trace,
            SpanName::Request,
            fl,
            start,
            facts.latency,
            &all[..1 + extra],
        );
        verdict.is_some()
    }

    /// Current tracer counters.
    pub fn stats(&self) -> TracerStats {
        let rings = self
            .rings
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut recorded = 0u64;
        let mut resident = 0u64;
        for (_, ring) in rings.iter() {
            let pushed = ring.recorded();
            recorded += pushed;
            resident += pushed.min(ring.capacity() as u64);
        }
        TracerStats {
            minted: self.next_trace.load(Ordering::Relaxed),
            kept: self.kept.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            recorded_spans: recorded,
            resident_spans: resident,
            rings: rings.len() as u64,
            ring_capacity: self.config.ring_capacity.max(8) as u64,
        }
    }

    /// Decodes every resident span, grouped per ring (the export path; this
    /// allocates and is not meant for the request hot path).
    pub fn spans(&self) -> Vec<(String, Vec<Span>)> {
        let rings = self
            .rings
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = Vec::with_capacity(rings.len());
        let mut raw = Vec::new();
        for (label, ring) in rings.iter() {
            raw.clear();
            ring.snapshot_into(&mut raw);
            let spans = raw.iter().filter_map(Span::decode).collect();
            out.push((label.clone(), spans));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer(p: f64) -> Tracer {
        Tracer::new(
            TraceConfig::new()
                .with_keep_probability(p)
                .with_latency_threshold(Duration::from_millis(50)),
        )
    }

    #[test]
    fn spans_round_trip_through_the_ring() {
        let t = tracer(1.0);
        let sink = t.register("worker-0");
        let id = t.mint();
        assert!(id.is_some());
        let start = Instant::now();
        sink.record(
            id,
            SpanName::Route,
            start,
            Duration::from_micros(7),
            &[
                (AttrKey::Backend, 2),
                (AttrKey::Explored, 1),
                (AttrKey::ExcludedMask, 0b1001),
            ],
        );
        let spans = t.spans();
        let (label, worker_spans) = spans
            .iter()
            .find(|(label, _)| label == "worker-0")
            .expect("registered ring");
        assert_eq!(label, "worker-0");
        assert_eq!(worker_spans.len(), 1);
        let span = worker_spans[0];
        assert_eq!(span.trace, id);
        assert_eq!(span.name, SpanName::Route);
        assert_eq!(span.duration, Duration::from_micros(7));
        assert_eq!(span.attr(AttrKey::Backend), Some(2));
        assert_eq!(span.attr(AttrKey::Explored), Some(1));
        assert_eq!(span.attr(AttrKey::ExcludedMask), Some(0b1001));
        assert_eq!(span.attr(AttrKey::Worker), None);
    }

    #[test]
    fn excess_attributes_truncate() {
        let t = tracer(1.0);
        let sink = t.register("w");
        let id = t.mint();
        let attrs: Vec<(AttrKey, u64)> = AttrKey::ALL.iter().map(|&k| (k, 1)).collect();
        sink.record(id, SpanName::Solve, Instant::now(), Duration::ZERO, &attrs);
        let spans = t.spans();
        let span = spans
            .iter()
            .find(|(l, _)| l == "w")
            .and_then(|(_, s)| s.first())
            .copied()
            .expect("span recorded");
        assert_eq!(span.attrs().len(), MAX_ATTRS);
    }

    #[test]
    fn finish_keeps_bad_outcomes_even_at_zero_probability() {
        let t = tracer(0.0);
        for (facts, flag) in [
            (
                RequestFacts::completed(Duration::from_micros(10)).failed(),
                flags::FAILED,
            ),
            (
                RequestFacts::completed(Duration::from_micros(10)).shed(),
                flags::SHED,
            ),
            (
                RequestFacts::completed(Duration::from_micros(10)).deadline_missed(),
                flags::DEADLINE_MISS,
            ),
        ] {
            let id = t.mint();
            assert!(t.finish(id, Instant::now(), &facts, &[]), "{flag:#b} kept");
        }
        // An unremarkable fast request is dropped at p=0.
        let id = t.mint();
        assert!(!t.finish(
            id,
            Instant::now(),
            &RequestFacts::completed(Duration::from_micros(10)),
            &[]
        ));
        let stats = t.stats();
        assert_eq!(stats.kept, 3);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.minted, 4);
    }

    #[test]
    fn finish_keeps_latency_breaches() {
        let t = tracer(0.0);
        let id = t.mint();
        assert!(t.finish(
            id,
            Instant::now(),
            &RequestFacts::completed(Duration::from_millis(60)),
            &[]
        ));
        let spans = t.spans();
        let root = &spans[0].1[0];
        assert!(root.kept());
        assert_ne!(root.flags & flags::LATENCY, 0);
    }

    #[test]
    fn root_span_carries_latency_and_caller_attrs() {
        let t = tracer(1.0);
        let id = t.mint();
        t.finish(
            id,
            Instant::now(),
            &RequestFacts::completed(Duration::from_micros(1234)),
            &[(AttrKey::Shard, 3), (AttrKey::Generation, 2)],
        );
        let spans = t.spans();
        let root = &spans[0].1[0];
        assert_eq!(root.name, SpanName::Request);
        assert_eq!(root.attr(AttrKey::LatencyUs), Some(1234));
        assert_eq!(root.attr(AttrKey::Shard), Some(3));
        assert_eq!(root.attr(AttrKey::Generation), Some(2));
        assert_ne!(root.flags & flags::SAMPLED, 0);
    }

    #[test]
    fn finish_on_an_untraced_request_is_a_no_op() {
        let t = tracer(1.0);
        assert!(!t.finish(
            TraceId::NONE,
            Instant::now(),
            &RequestFacts::completed(Duration::ZERO),
            &[]
        ));
        let stats = t.stats();
        assert_eq!(stats.kept + stats.dropped, 0);
        assert_eq!(stats.recorded_spans, 0);
    }

    #[test]
    fn name_and_key_tags_are_unique_and_round_trip() {
        for name in SpanName::ALL {
            assert_eq!(SpanName::from_tag(name.tag()), Some(name));
            assert_eq!(
                SpanName::ALL
                    .iter()
                    .filter(|n| n.tag() == name.tag())
                    .count(),
                1
            );
        }
        for key in AttrKey::ALL {
            assert_eq!(AttrKey::from_tag(key.tag()), Some(key));
            assert_eq!(
                AttrKey::ALL.iter().filter(|k| k.tag() == key.tag()).count(),
                1
            );
        }
        assert_eq!(SpanName::from_tag(0), None);
        assert_eq!(AttrKey::from_tag(0), None);
    }
}
