//! Trace exports: Chrome `trace_event` JSON and flamegraph-folded text.
//!
//! Both exports cover **kept traces only** — the set whose root `request`
//! span carries [`flags::KEPT`] after tail sampling — so
//! the output is the interesting tail, not the firehose.
//!
//! * [`chrome_trace`] emits the Trace Event Format understood by
//!   `chrome://tracing` and Perfetto: one complete event (`"ph": "X"`) per
//!   span, timestamps/durations in microseconds, the trace id as `pid` (so
//!   each request groups into its own track), the recording ring's index as
//!   `tid`, and span attributes under `args`.
//! * [`folded`] emits flamegraph-folded lines (`stack;frames count`) with a
//!   synthetic stack from [`SpanName::folded_parent`]: pipeline stages nest
//!   under `solve`, everything else under `request`; counts are total
//!   microseconds. Feed to `inferno`/`flamegraph.pl`.

use std::collections::HashSet;
use std::fmt::Write as _;

use taxi_bench::json::{JsonArray, JsonObject, JsonValue};

use crate::{flags, Span, SpanName, TraceId, Tracer};

/// Collects resident spans and the kept-trace id set.
fn kept_spans(tracer: &Tracer) -> (Vec<(String, Vec<Span>)>, HashSet<u64>) {
    let rings = tracer.spans();
    let mut kept = HashSet::new();
    for (_, spans) in &rings {
        for span in spans {
            if span.name == SpanName::Request && span.kept() {
                kept.insert(span.trace.as_u64());
            }
        }
    }
    (rings, kept)
}

/// Renders every kept trace as Chrome `trace_event` JSON (see module docs).
/// Load the output in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace(tracer: &Tracer) -> String {
    let (rings, kept) = kept_spans(tracer);
    let mut events = JsonArray::new();
    for (ring_index, (label, spans)) in rings.iter().enumerate() {
        for span in spans {
            if span.trace == TraceId::NONE || !kept.contains(&span.trace.as_u64()) {
                continue;
            }
            let mut args = JsonObject::new().str("ring", label);
            for &(key, value) in span.attrs() {
                args = args.uint(key.label(), value);
            }
            if span.name == SpanName::Request {
                args = args
                    .bool("kept", span.kept())
                    .bool("failed", span.flags & flags::FAILED != 0)
                    .bool("shed", span.flags & flags::SHED != 0)
                    .bool("deadline_missed", span.flags & flags::DEADLINE_MISS != 0);
            }
            events = events.push_object(
                JsonObject::new()
                    .str("name", span.name.label())
                    .str("ph", "X")
                    .num("ts", span.start.as_nanos() as f64 / 1_000.0, 3)
                    .num("dur", span.duration.as_nanos() as f64 / 1_000.0, 3)
                    .uint("pid", span.trace.as_u64())
                    .uint("tid", ring_index as u64)
                    .object("args", args),
            );
        }
    }
    JsonObject::new()
        .array("traceEvents", events)
        .str("displayTimeUnit", "ms")
        .field(
            "otherData",
            JsonValue::Object(
                JsonObject::new()
                    .uint("kept_traces", kept.len() as u64)
                    .str("source", "taxi-trace"),
            ),
        )
        .render()
}

/// Renders kept traces as flamegraph-folded text: one `stack count` line per
/// distinct stack, counts in total microseconds (see module docs).
pub fn folded(tracer: &Tracer) -> String {
    let (rings, kept) = kept_spans(tracer);
    // Aggregate µs per synthetic stack. The stack space is tiny (one path per
    // span name), so a linear-scan Vec keeps ordering deterministic.
    let mut totals: Vec<(String, u64)> = Vec::new();
    for (_, spans) in &rings {
        for span in spans {
            if span.trace == TraceId::NONE || !kept.contains(&span.trace.as_u64()) {
                continue;
            }
            let mut frames = vec![span.name.label()];
            let mut cursor = span.name;
            while let Some(parent) = cursor.folded_parent() {
                frames.push(parent.label());
                cursor = parent;
            }
            frames.reverse();
            let stack = frames.join(";");
            let us = (span.duration.as_nanos() / 1_000).min(u128::from(u64::MAX)) as u64;
            match totals.iter_mut().find(|(s, _)| *s == stack) {
                Some((_, total)) => *total = total.saturating_add(us),
                None => totals.push((stack, us)),
            }
        }
    }
    totals.sort();
    let mut out = String::new();
    for (stack, us) in totals {
        let _ = writeln!(out, "{stack} {us}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrKey, RequestFacts, TraceConfig};
    use std::time::{Duration, Instant};

    fn traced() -> Tracer {
        let tracer = Tracer::new(TraceConfig::new().with_keep_probability(0.0));
        let sink = tracer.register("worker-0");
        let start = Instant::now();

        // Kept trace: deadline miss.
        let kept = tracer.mint();
        sink.record(
            kept,
            SpanName::Solve,
            start,
            Duration::from_micros(500),
            &[(AttrKey::Backend, 1)],
        );
        sink.record(
            kept,
            SpanName::StageCluster,
            start,
            Duration::from_micros(120),
            &[],
        );
        tracer.finish(
            kept,
            start,
            &RequestFacts::completed(Duration::from_micros(700)).deadline_missed(),
            &[(AttrKey::Shard, 2)],
        );

        // Dropped trace: fast and healthy at keep probability zero.
        let dropped = tracer.mint();
        sink.record(
            dropped,
            SpanName::Solve,
            start,
            Duration::from_micros(10),
            &[],
        );
        tracer.finish(
            dropped,
            start,
            &RequestFacts::completed(Duration::from_micros(20)),
            &[],
        );
        tracer
    }

    #[test]
    fn chrome_trace_exports_only_kept_traces() {
        let tracer = traced();
        let out = chrome_trace(&tracer);
        assert!(out.contains("\"traceEvents\""));
        assert!(out.contains("\"solve\""));
        assert!(out.contains("\"stage_cluster\""));
        assert!(out.contains("\"deadline_missed\": true"));
        assert!(out.contains("\"shard\": 2"));
        assert!(out.contains("\"kept_traces\": 1"));
        // The dropped trace (pid 2) must be absent.
        assert!(!out.contains("\"pid\": 2"));
    }

    #[test]
    fn folded_nests_stages_under_solve() {
        let tracer = traced();
        let out = folded(&tracer);
        assert!(out.contains("request;solve;stage_cluster 120\n"), "{out}");
        assert!(out.contains("request;solve 500\n"), "{out}");
        assert!(out.contains("request 700\n"), "{out}");
        // Exactly the kept trace's spans: 3 lines.
        assert_eq!(out.lines().count(), 3, "{out}");
    }

    #[test]
    fn exports_are_empty_when_nothing_is_kept() {
        let tracer = Tracer::new(TraceConfig::new().with_keep_probability(0.0));
        let sink = tracer.register("w");
        let id = tracer.mint();
        sink.record(id, SpanName::Solve, Instant::now(), Duration::ZERO, &[]);
        tracer.finish(
            id,
            Instant::now(),
            &RequestFacts::completed(Duration::ZERO),
            &[],
        );
        assert!(chrome_trace(&tracer).contains("\"traceEvents\": []"));
        assert!(folded(&tracer).is_empty());
    }
}
