//! Property-based tests of the crossbar quantisation and spin storage.

use proptest::prelude::*;

use taxi_device::DeviceParams;
use taxi_xbar::array::NonIdealityConfig;
use taxi_xbar::{BitPrecision, CrossbarArray, QuantizedDistances};

fn distance_matrix_strategy(max_n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec((0.1f64..100.0, 0.1f64..100.0), 4..max_n).prop_map(|points| {
        points
            .iter()
            .map(|&(x1, y1)| {
                points
                    .iter()
                    .map(|&(x2, y2)| (x1 - x2).hypot(y1 - y2))
                    .collect()
            })
            .collect()
    })
}

fn permutation_strategy(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((0..n).collect::<Vec<usize>>()).prop_shuffle()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Quantised weights always fit the bit precision and keep a zero diagonal.
    #[test]
    fn weights_respect_precision(matrix in distance_matrix_strategy(12), bits in 1u8..6) {
        let precision = BitPrecision::new(bits).unwrap();
        let q = QuantizedDistances::from_distances(&matrix, precision).unwrap();
        for i in 0..matrix.len() {
            prop_assert_eq!(q.weight(i, i), 0);
            for j in 0..matrix.len() {
                prop_assert!(q.weight(i, j) <= precision.max_level());
            }
        }
    }

    /// The shortest positive edge always receives the maximum representable weight.
    #[test]
    fn shortest_edge_saturates(matrix in distance_matrix_strategy(10)) {
        let q = QuantizedDistances::from_distances(&matrix, BitPrecision::FOUR).unwrap();
        let n = matrix.len();
        let mut best = (0usize, 1usize);
        let mut best_d = f64::INFINITY;
        for i in 0..n {
            for j in 0..n {
                if i != j && matrix[i][j] > 0.0 && matrix[i][j] < best_d {
                    best_d = matrix[i][j];
                    best = (i, j);
                }
            }
        }
        prop_assume!(best_d.is_finite());
        prop_assert_eq!(q.weight(best.0, best.1), BitPrecision::FOUR.max_level());
    }

    /// Writing any permutation into the spin storage and reading it back is lossless,
    /// regardless of non-idealities (they only affect analogue reads, not state).
    #[test]
    fn spin_storage_round_trips(matrix in distance_matrix_strategy(10), seed in 0u64..100) {
        let n = matrix.len();
        let q = QuantizedDistances::from_distances(&matrix, BitPrecision::FOUR).unwrap();
        let mut array = CrossbarArray::new(
            n,
            BitPrecision::FOUR,
            DeviceParams::default(),
            NonIdealityConfig::realistic(),
        );
        array.program_weights(&q).unwrap();
        // Derive a permutation from the seed deterministically.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed.wrapping_add(1);
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        array.write_assignment(&perm).unwrap();
        prop_assert_eq!(array.read_assignment().unwrap(), perm);
    }

    /// Column currents are monotone in the number of active rows: activating more rows
    /// can only increase every column current.
    #[test]
    fn currents_are_monotone_in_active_rows(matrix in distance_matrix_strategy(9)) {
        let n = matrix.len();
        let q = QuantizedDistances::from_distances(&matrix, BitPrecision::THREE).unwrap();
        let mut array = CrossbarArray::new(
            n,
            BitPrecision::THREE,
            DeviceParams::default(),
            NonIdealityConfig::ideal(),
        );
        array.program_weights(&q).unwrap();
        let one_row: Vec<bool> = (0..n).map(|i| i == 0).collect();
        let all_rows = vec![true; n];
        let few = array.weighted_column_currents(&one_row);
        let many = array.weighted_column_currents(&all_rows);
        for (a, b) in few.iter().zip(&many) {
            prop_assert!(b + 1e-15 >= *a);
        }
    }

    /// Permutations survive the permutation strategy itself (sanity of the helper).
    #[test]
    fn permutation_strategy_is_valid(perm in permutation_strategy(8)) {
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }
}
