//! Property-based tests of the crossbar quantisation and spin storage.

use proptest::prelude::*;

use taxi_device::DeviceParams;
use taxi_dist::DistanceMatrix;
use taxi_xbar::array::NonIdealityConfig;
use taxi_xbar::{BitPrecision, CrossbarArray, QuantizedDistances};

fn distance_matrix_strategy(max_n: usize) -> impl Strategy<Value = DistanceMatrix> {
    prop::collection::vec((0.1f64..100.0, 0.1f64..100.0), 4..max_n).prop_map(|points| {
        DistanceMatrix::from_fn(points.len(), |i, j| {
            let (x1, y1) = points[i];
            let (x2, y2) = points[j];
            (x1 - x2).hypot(y1 - y2)
        })
    })
}

fn permutation_strategy(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((0..n).collect::<Vec<usize>>()).prop_shuffle()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Quantised weights always fit the bit precision and keep a zero diagonal.
    #[test]
    fn weights_respect_precision(matrix in distance_matrix_strategy(12), bits in 1u8..6) {
        let precision = BitPrecision::new(bits).unwrap();
        let q = QuantizedDistances::from_distances(&matrix, precision).unwrap();
        for i in 0..matrix.n() {
            prop_assert_eq!(q.weight(i, i), 0);
            for j in 0..matrix.n() {
                prop_assert!(q.weight(i, j) <= precision.max_level());
            }
        }
    }

    /// The shortest positive edge always receives the maximum representable weight.
    #[test]
    fn shortest_edge_saturates(matrix in distance_matrix_strategy(10)) {
        let q = QuantizedDistances::from_distances(&matrix, BitPrecision::FOUR).unwrap();
        let n = matrix.n();
        let mut best = (0usize, 1usize);
        let mut best_d = f64::INFINITY;
        for i in 0..n {
            for j in 0..n {
                if i != j && matrix.get(i, j) > 0.0 && matrix.get(i, j) < best_d {
                    best_d = matrix.get(i, j);
                    best = (i, j);
                }
            }
        }
        prop_assume!(best_d.is_finite());
        prop_assert_eq!(q.weight(best.0, best.1), BitPrecision::FOUR.max_level());
    }

    /// Writing any permutation into the spin storage and reading it back is lossless,
    /// regardless of non-idealities (they only affect analogue reads, not state).
    #[test]
    fn spin_storage_round_trips(matrix in distance_matrix_strategy(10), seed in 0u64..100) {
        let n = matrix.n();
        let q = QuantizedDistances::from_distances(&matrix, BitPrecision::FOUR).unwrap();
        let mut array = CrossbarArray::new(
            n,
            BitPrecision::FOUR,
            DeviceParams::default(),
            NonIdealityConfig::realistic(),
        );
        array.program_weights(&q).unwrap();
        // Derive a permutation from the seed deterministically.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed.wrapping_add(1);
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        array.write_assignment(&perm).unwrap();
        prop_assert_eq!(array.read_assignment().unwrap(), perm);
    }

    /// Column currents are monotone in the number of active rows: activating more rows
    /// can only increase every column current.
    #[test]
    fn currents_are_monotone_in_active_rows(matrix in distance_matrix_strategy(9)) {
        let n = matrix.n();
        let q = QuantizedDistances::from_distances(&matrix, BitPrecision::THREE).unwrap();
        let mut array = CrossbarArray::new(
            n,
            BitPrecision::THREE,
            DeviceParams::default(),
            NonIdealityConfig::ideal(),
        );
        array.program_weights(&q).unwrap();
        let one_row: Vec<bool> = (0..n).map(|i| i == 0).collect();
        let all_rows = vec![true; n];
        let few = array.weighted_column_currents(&one_row);
        let many = array.weighted_column_currents(&all_rows);
        for (a, b) in few.iter().zip(&many) {
            prop_assert!(b + 1e-15 >= *a);
        }
    }

    /// The lane-chunked MAC kernel is bit-identical to a scalar re-derivation from the
    /// per-cell effective conductances, for arbitrary sizes (odd tails included),
    /// precisions and activation patterns.
    #[test]
    fn chunked_mac_is_bit_identical_to_scalar_reference(
        matrix in distance_matrix_strategy(14),
        bits in 1u8..5,
        mask in 0u32..4096,
    ) {
        let n = matrix.n();
        let precision = BitPrecision::new(bits).unwrap();
        let q = QuantizedDistances::from_distances(&matrix, precision).unwrap();
        let mut array = CrossbarArray::new(
            n,
            precision,
            DeviceParams::default(),
            NonIdealityConfig::realistic(),
        );
        array.program_weights(&q).unwrap();
        let row_vector: Vec<bool> = (0..n).map(|i| (mask >> (i % 12)) & 1 == 1).collect();

        let chunked = array.weighted_column_currents(&row_vector);

        // Scalar reference: per-city accumulation in original row order.
        let geometry = array.geometry();
        let v = array.params().read_voltage;
        let mut reference = vec![0.0f64; n];
        for p in 0..bits {
            let significance = f64::from(1u32 << (bits - 1 - p));
            let start = geometry.weight_partition_start(p);
            for (city, slot) in reference.iter_mut().enumerate() {
                let mut i_col = 0.0;
                for (row, &active) in row_vector.iter().enumerate() {
                    if active {
                        i_col += v * array.effective_conductance(row, start + city);
                    }
                }
                *slot += significance * i_col;
            }
        }
        prop_assert_eq!(chunked, reference);
    }

    /// The lane-chunked superposition kernel is bit-identical to a scalar re-derivation
    /// from the per-cell effective conductances.
    #[test]
    fn chunked_superposition_is_bit_identical_to_scalar_reference(
        matrix in distance_matrix_strategy(14),
        seed in 0u64..100,
        active_orders in 1usize..6,
    ) {
        let n = matrix.n();
        let q = QuantizedDistances::from_distances(&matrix, BitPrecision::FOUR).unwrap();
        let mut array = CrossbarArray::new(
            n,
            BitPrecision::FOUR,
            DeviceParams::default(),
            NonIdealityConfig::realistic(),
        );
        array.program_weights(&q).unwrap();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed.wrapping_add(1);
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        array.write_assignment(&perm).unwrap();
        let orders: Vec<usize> = (0..active_orders.min(n)).collect();

        let chunked = array.superpose_orders(&orders).unwrap();

        let geometry = array.geometry();
        let v = array.params().read_voltage;
        let mut reference = vec![0.0f64; n];
        for &order in &orders {
            let col = geometry.spin_storage_start() + order;
            for (row, slot) in reference.iter_mut().enumerate() {
                *slot += v * array.effective_conductance(row, col);
            }
        }
        prop_assert_eq!(chunked, reference);
    }

    /// Permutations survive the permutation strategy itself (sanity of the helper).
    #[test]
    fn permutation_strategy_is_valid(perm in permutation_strategy(8)) {
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }
}
