//! Peripheral circuits of the Ising macro (Fig. 4 insets a–d of the paper).

use rand::Rng;

use taxi_device::{DeviceParams, StochasticVectorGenerator, WriteCurrent};

use crate::XbarError;

/// High-speed current comparator (Träff-style) translating analogue row currents into a
/// binary vector.
///
/// Currents above the threshold read as 1. The threshold is normally placed halfway
/// between the current of an unselected (high-resistance) cell and a selected
/// (low-resistance) cell.
///
/// # Example
///
/// ```
/// use taxi_xbar::CurrentComparator;
///
/// let comparator = CurrentComparator::new(1.0e-5);
/// assert_eq!(comparator.compare(&[2.0e-5, 0.5e-5]), vec![true, false]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurrentComparator {
    threshold_amps: f64,
}

impl CurrentComparator {
    /// Creates a comparator with an absolute current threshold in amperes.
    pub fn new(threshold_amps: f64) -> Self {
        Self { threshold_amps }
    }

    /// Builds a comparator whose threshold sits halfway between the single-cell read
    /// currents of the two device states at the given read voltage.
    pub fn for_device(params: &DeviceParams) -> Self {
        let i_low = params.read_voltage * params.g_antiparallel();
        let i_high = params.read_voltage * params.g_parallel();
        Self {
            threshold_amps: 0.5 * (i_low + i_high),
        }
    }

    /// The comparator threshold in amperes.
    pub fn threshold(&self) -> f64 {
        self.threshold_amps
    }

    /// Compares each current against the threshold.
    pub fn compare(&self, currents: &[f64]) -> Vec<bool> {
        let mut out = vec![false; currents.len()];
        self.compare_into(currents, &mut out);
        out
    }

    /// Like [`compare`](Self::compare), but writes into a caller-provided slice.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from `currents.len()`.
    pub fn compare_into(&self, currents: &[f64], out: &mut [bool]) {
        assert_eq!(currents.len(), out.len(), "comparator width mismatch");
        for (o, &i) in out.iter_mut().zip(currents) {
            *o = i > self.threshold_amps;
        }
    }
}

/// D-latch bank storing the binarised superposition vector between the superpose and
/// optimize phases.
///
/// # Example
///
/// ```
/// use taxi_xbar::DLatch;
///
/// let mut latch = DLatch::new(4);
/// latch.store(&[true, false, true, false]);
/// assert_eq!(latch.read(), &[true, false, true, false]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DLatch {
    bits: Vec<bool>,
}

impl DLatch {
    /// Creates a latch bank of `width` bits, all cleared.
    pub fn new(width: usize) -> Self {
        Self {
            bits: vec![false; width],
        }
    }

    /// Latch width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Stores a new value.
    ///
    /// # Panics
    ///
    /// Panics if `value.len()` differs from the latch width.
    pub fn store(&mut self, value: &[bool]) {
        assert_eq!(value.len(), self.bits.len(), "latch width mismatch");
        self.bits.copy_from_slice(value);
    }

    /// Reads the latched value.
    pub fn read(&self) -> &[bool] {
        &self.bits
    }

    /// Clears the latch to all zeros.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|b| *b = false);
    }
}

/// The current-mirror bank scaling each weight partition by its bit significance
/// (×2^(b−1) in the paper's notation).
///
/// The crossbar model in this crate already folds the scaling into
/// [`CrossbarArray::weighted_column_currents`](crate::CrossbarArray::weighted_column_currents);
/// this type exists so that circuit-level latency/energy accounting and explicit
/// partition-by-partition experiments can reason about the mirrors directly.
///
/// # Example
///
/// ```
/// use taxi_xbar::CurrentMirrorBank;
///
/// let bank = CurrentMirrorBank::new(3);
/// // LSB partition (bit 0) is scaled ×1, MSB partition ×4.
/// assert_eq!(bank.gain_for_bit(0), 1.0);
/// assert_eq!(bank.gain_for_bit(2), 4.0);
/// let combined = bank.combine(&[1.0e-6, 2.0e-6, 3.0e-6]); // per-bit currents, LSB first
/// assert!((combined - (1.0e-6 + 4.0e-6 + 12.0e-6)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CurrentMirrorBank {
    bits: u8,
}

impl CurrentMirrorBank {
    /// Creates a mirror bank for `bits` weight partitions.
    pub fn new(bits: u8) -> Self {
        Self { bits }
    }

    /// Gain applied to the partition storing bit `bit` (0 = LSB).
    pub fn gain_for_bit(&self, bit: u8) -> f64 {
        f64::from(1u32 << bit)
    }

    /// Combines per-bit partition currents (LSB first) into the final column current.
    ///
    /// # Panics
    ///
    /// Panics if `per_bit_currents.len()` differs from the configured number of bits.
    pub fn combine(&self, per_bit_currents: &[f64]) -> f64 {
        assert_eq!(
            per_bit_currents.len(),
            usize::from(self.bits),
            "per-bit current vector length must equal the bit precision"
        );
        per_bit_currents
            .iter()
            .enumerate()
            .map(|(b, &i)| self.gain_for_bit(b as u8) * i)
            .sum()
    }
}

/// The SOT-MRAM stochastic mask circuit (Fig. 4c).
///
/// Per iteration a stochastic binary vector is generated by pulsing one SOT device per
/// column in the stochastic regime; only columns whose device switched pass their current
/// to the ArgMax stage. If no device switched the NAND fallback passes every column.
///
/// # Example
///
/// ```
/// use taxi_xbar::StochasticMaskCircuit;
/// use taxi_device::{DeviceParams, WriteCurrent};
/// use rand::SeedableRng;
///
/// let mut circuit = StochasticMaskCircuit::new(DeviceParams::default(), 8)?;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let currents = vec![1.0; 8];
/// let gated = circuit.gate(&currents, WriteCurrent::from_micro_amps(420.0), &mut rng)?;
/// assert_eq!(gated.len(), 8);
/// # Ok::<(), taxi_xbar::XbarError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StochasticMaskCircuit {
    generator: StochasticVectorGenerator,
    /// Reusable mask buffer for [`gate_into`](Self::gate_into).
    mask_buf: Vec<bool>,
}

impl StochasticMaskCircuit {
    /// Creates a mask circuit with one SOT-MRAM unit per column.
    ///
    /// # Errors
    ///
    /// Returns an error if `width` is zero or the device parameters are invalid.
    pub fn new(params: DeviceParams, width: usize) -> Result<Self, XbarError> {
        Ok(Self {
            generator: StochasticVectorGenerator::new(params, width)?,
            mask_buf: Vec::with_capacity(width),
        })
    }

    /// Mask width (number of columns).
    pub fn width(&self) -> usize {
        self.generator.width()
    }

    /// Generates a fresh stochastic mask at `i_write` and gates `currents` with it:
    /// columns whose mask bit is 0 are suppressed to zero current.
    ///
    /// # Errors
    ///
    /// Returns an error if `i_write` lies outside the stochastic window.
    ///
    /// # Panics
    ///
    /// Panics if `currents.len()` differs from the circuit width.
    pub fn gate<R: Rng + ?Sized>(
        &mut self,
        currents: &[f64],
        i_write: WriteCurrent,
        rng: &mut R,
    ) -> Result<Vec<f64>, XbarError> {
        let mut out = vec![0.0; currents.len()];
        self.gate_into(currents, i_write, rng, &mut out)?;
        Ok(out)
    }

    /// Like [`gate`](Self::gate), but writes the gated currents into a caller-provided
    /// slice; the stochastic mask itself is generated into an internal reusable buffer,
    /// so steady-state gating performs no heap allocation.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`gate`](Self::gate).
    ///
    /// # Panics
    ///
    /// Panics if `currents.len()` or `out.len()` differs from the circuit width.
    pub fn gate_into<R: Rng + ?Sized>(
        &mut self,
        currents: &[f64],
        i_write: WriteCurrent,
        rng: &mut R,
        out: &mut [f64],
    ) -> Result<(), XbarError> {
        assert_eq!(
            currents.len(),
            self.generator.width(),
            "current vector length must equal the mask width"
        );
        assert_eq!(
            out.len(),
            self.generator.width(),
            "output length must equal the mask width"
        );
        self.generator
            .generate_into(i_write, rng, &mut self.mask_buf)?;
        for ((o, &i), &allow) in out.iter_mut().zip(currents).zip(&self.mask_buf) {
            *o = if allow { i } else { 0.0 };
        }
        Ok(())
    }

    /// Expected fraction of columns allowed to pass at the given write current.
    pub fn expected_pass_fraction(&self, i_write: WriteCurrent) -> f64 {
        self.generator.expected_ones(i_write) / self.generator.width() as f64
    }

    /// Number of mask-generation pulses issued so far.
    pub fn pulses_issued(&self) -> u64 {
        self.generator.pulses_issued()
    }
}

/// Winner-take-all ArgMax circuit (Lazzaro WTA with cascode and feedback enhancements).
///
/// Picks the index of the largest input current. A finite `resolution` models the circuit
/// limitation that inputs closer together than `resolution × winner` are indistinguishable;
/// ties within the resolution band are broken pseudo-randomly, as a real WTA's outcome
/// would be decided by noise and mismatch.
///
/// # Example
///
/// ```
/// use taxi_xbar::ArgMaxCircuit;
/// use rand::SeedableRng;
///
/// let argmax = ArgMaxCircuit::new(1e-3);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// assert_eq!(argmax.winner(&[0.1, 0.9, 0.3], &mut rng), Some(1));
/// assert_eq!(argmax.winner(&[], &mut rng), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArgMaxCircuit {
    /// Relative resolution of the winner-take-all stage.
    resolution: f64,
}

impl ArgMaxCircuit {
    /// Creates an ArgMax circuit with the given relative resolution (e.g. `1e-3` means
    /// currents within 0.1 % of the winner are indistinguishable).
    pub fn new(resolution: f64) -> Self {
        Self {
            resolution: resolution.max(0.0),
        }
    }

    /// An idealised circuit with infinite resolution (first maximal index wins).
    pub fn ideal() -> Self {
        Self { resolution: 0.0 }
    }

    /// The relative resolution.
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// Returns the index of the winning (largest-current) input, or `None` for an empty
    /// input or when every current is zero or negative.
    pub fn winner<R: Rng + ?Sized>(&self, currents: &[f64], rng: &mut R) -> Option<usize> {
        let (best_idx, best) = currents
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))?;
        if *best <= 0.0 {
            return None;
        }
        if self.resolution == 0.0 {
            return Some(best_idx);
        }
        // Count-then-select keeps the near-tie break allocation-free: the k-th contender
        // is found by a second pass instead of materialising a contender list.
        let band = *best * (1.0 - self.resolution);
        let contenders = currents.iter().filter(|&&i| i >= band).count();
        if contenders <= 1 {
            Some(best_idx)
        } else {
            let pick = rng.gen_range(0..contenders);
            currents
                .iter()
                .enumerate()
                .filter(|(_, &i)| i >= band)
                .nth(pick)
                .map(|(idx, _)| idx)
        }
    }

    /// Produces the one-hot output vector of the WTA stage.
    pub fn one_hot<R: Rng + ?Sized>(&self, currents: &[f64], rng: &mut R) -> Vec<bool> {
        let mut out = vec![false; currents.len()];
        if let Some(idx) = self.winner(currents, rng) {
            out[idx] = true;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn comparator_thresholds_currents() {
        let c = CurrentComparator::new(5.0);
        assert_eq!(c.compare(&[1.0, 5.0, 9.0]), vec![false, false, true]);
    }

    #[test]
    fn comparator_for_device_separates_states() {
        let params = DeviceParams::default();
        let c = CurrentComparator::for_device(&params);
        let i_selected = params.read_voltage * params.g_parallel();
        let i_unselected = params.read_voltage * params.g_antiparallel();
        assert_eq!(c.compare(&[i_selected, i_unselected]), vec![true, false]);
    }

    #[test]
    fn latch_round_trips_and_clears() {
        let mut latch = DLatch::new(3);
        latch.store(&[true, true, false]);
        assert_eq!(latch.read(), &[true, true, false]);
        latch.clear();
        assert_eq!(latch.read(), &[false, false, false]);
    }

    #[test]
    #[should_panic(expected = "latch width mismatch")]
    fn latch_rejects_wrong_width() {
        DLatch::new(2).store(&[true]);
    }

    #[test]
    fn mirror_bank_scales_by_significance() {
        let bank = CurrentMirrorBank::new(4);
        assert_eq!(bank.gain_for_bit(3), 8.0);
        let combined = bank.combine(&[1.0, 1.0, 1.0, 1.0]);
        assert!((combined - 15.0).abs() < 1e-12);
    }

    #[test]
    fn mask_circuit_gates_columns() {
        let mut circuit = StochasticMaskCircuit::new(DeviceParams::default(), 16).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let currents = vec![1.0; 16];
        let gated = circuit
            .gate(&currents, WriteCurrent::from_micro_amps(420.0), &mut rng)
            .unwrap();
        // Some but not necessarily all columns pass; gated values are 0 or the original.
        assert!(gated.iter().all(|&g| g == 0.0 || g == 1.0));
        assert!(gated.contains(&1.0));
    }

    #[test]
    fn mask_pass_fraction_tracks_current() {
        let circuit = StochasticMaskCircuit::new(DeviceParams::default(), 12).unwrap();
        let high = circuit.expected_pass_fraction(WriteCurrent::from_micro_amps(420.0));
        let low = circuit.expected_pass_fraction(WriteCurrent::from_micro_amps(353.0));
        assert!(high > low);
        assert!((high - 0.20).abs() < 0.01);
    }

    #[test]
    fn argmax_picks_largest() {
        let argmax = ArgMaxCircuit::ideal();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(argmax.winner(&[0.2, 0.7, 0.3], &mut rng), Some(1));
    }

    #[test]
    fn argmax_rejects_empty_and_zero_inputs() {
        let argmax = ArgMaxCircuit::ideal();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(argmax.winner(&[], &mut rng), None);
        assert_eq!(argmax.winner(&[0.0, 0.0], &mut rng), None);
    }

    #[test]
    fn argmax_one_hot_has_single_winner() {
        let argmax = ArgMaxCircuit::new(1e-3);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let one_hot = argmax.one_hot(&[0.1, 0.5, 0.2, 0.5001], &mut rng);
        assert_eq!(one_hot.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn argmax_finite_resolution_varies_among_near_ties() {
        let argmax = ArgMaxCircuit::new(0.05);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let currents = vec![1.0, 0.999, 0.1];
        let mut winners = std::collections::HashSet::new();
        for _ in 0..200 {
            winners.insert(argmax.winner(&currents, &mut rng).unwrap());
        }
        assert!(winners.contains(&0));
        assert!(winners.contains(&1));
        assert!(!winners.contains(&2));
    }
}
