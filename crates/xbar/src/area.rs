//! Area model of the Ising macro.
//!
//! The paper notes that higher bit precision costs a larger array (Table I's
//! 12×36 → 12×60 growth) and that the compactness of SOT-MRAM-based stochastic units is
//! one of the motivations over CMOS RNGs (which take > 375 µm² each). This module
//! provides a first-order area estimator used by the architecture configuration to
//! reason about how many macros fit in a silicon budget, and by the RNG-comparison
//! analysis in `taxi-device`.

use crate::{ArrayGeometry, BitPrecision};

/// First-order area model of one Ising macro at a given technology node.
///
/// Areas are expressed in square micrometres. The defaults model a 65 nm implementation:
/// a 3T-1M SOT-MRAM bit cell of ≈ 0.5 µm², per-row peripheral circuitry (comparator,
/// latch, stochastic unit, ArgMax branch) of ≈ 120 µm², and per-column drivers of
/// ≈ 25 µm².
///
/// # Example
///
/// ```
/// use taxi_xbar::{AreaModel, BitPrecision};
///
/// let model = AreaModel::nm65();
/// let a2 = model.macro_area_um2(12, BitPrecision::TWO);
/// let a4 = model.macro_area_um2(12, BitPrecision::FOUR);
/// assert!(a4 > a2, "higher precision needs a bigger macro");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Area of one 3T-1M SOT-MRAM cell, in µm².
    pub cell_area_um2: f64,
    /// Peripheral area per row (comparator + latch + stochastic unit + ArgMax branch),
    /// in µm².
    pub row_periphery_um2: f64,
    /// Driver area per column, in µm².
    pub column_periphery_um2: f64,
    /// Fixed control overhead per macro, in µm².
    pub control_overhead_um2: f64,
}

impl AreaModel {
    /// The 65 nm model used throughout the reproduction.
    pub fn nm65() -> Self {
        Self {
            cell_area_um2: 0.5,
            row_periphery_um2: 120.0,
            column_periphery_um2: 25.0,
            control_overhead_um2: 2_000.0,
        }
    }

    /// Area of the crossbar array alone, in µm².
    pub fn array_area_um2(&self, geometry: ArrayGeometry) -> f64 {
        geometry.cells() as f64 * self.cell_area_um2
    }

    /// Total area of one macro (array + peripherals + control), in µm².
    pub fn macro_area_um2(&self, cities: usize, precision: BitPrecision) -> f64 {
        let geometry = ArrayGeometry::new(cities, precision);
        self.array_area_um2(geometry)
            + geometry.rows as f64 * self.row_periphery_um2
            + geometry.columns() as f64 * self.column_periphery_um2
            + self.control_overhead_um2
    }

    /// Total area of one macro, in mm².
    pub fn macro_area_mm2(&self, cities: usize, precision: BitPrecision) -> f64 {
        self.macro_area_um2(cities, precision) / 1e6
    }

    /// Number of macros that fit in a silicon budget of `budget_mm2` square millimetres.
    pub fn macros_per_budget(
        &self,
        budget_mm2: f64,
        cities: usize,
        precision: BitPrecision,
    ) -> usize {
        let per_macro = self.macro_area_mm2(cities, precision);
        if per_macro <= 0.0 {
            return 0;
        }
        (budget_mm2 / per_macro).floor() as usize
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::nm65()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_grows_with_precision_and_cities() {
        let model = AreaModel::nm65();
        let a12_2 = model.macro_area_um2(12, BitPrecision::TWO);
        let a12_4 = model.macro_area_um2(12, BitPrecision::FOUR);
        let a20_4 = model.macro_area_um2(20, BitPrecision::FOUR);
        assert!(a12_4 > a12_2);
        assert!(a20_4 > a12_4);
    }

    #[test]
    fn table_one_geometries_stay_compact() {
        // A 12-city macro at any of the paper's precisions should stay well below a
        // square millimetre — the compactness claim that motivates the design.
        let model = AreaModel::nm65();
        for bits in [2u8, 3, 4] {
            let area = model.macro_area_mm2(12, BitPrecision::new(bits).unwrap());
            assert!(
                area < 0.1,
                "{bits}-bit macro area {area} mm² is implausibly large"
            );
            assert!(area > 0.001);
        }
    }

    #[test]
    fn budget_packing_is_monotone() {
        let model = AreaModel::nm65();
        let small = model.macros_per_budget(10.0, 12, BitPrecision::FOUR);
        let large = model.macros_per_budget(100.0, 12, BitPrecision::FOUR);
        assert!(large >= 10 * small - 10);
        assert!(small > 0);
        // Bigger macros → fewer per budget.
        let big_macros = model.macros_per_budget(10.0, 20, BitPrecision::FOUR);
        assert!(big_macros < small);
    }

    #[test]
    fn array_area_matches_cell_count() {
        let model = AreaModel::nm65();
        let geometry = ArrayGeometry::new(12, BitPrecision::FOUR);
        assert!((model.array_area_um2(geometry) - geometry.cells() as f64 * 0.5).abs() < 1e-9);
    }
}
