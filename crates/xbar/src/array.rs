//! The SOT-MRAM crossbar array with bit-sliced weight partitions and spin storage.

use taxi_device::{DeviceParams, MagState};
use taxi_dist::LANES;

use crate::{BitPrecision, QuantizedDistances, XbarError};

/// Geometry of an Ising-macro crossbar.
///
/// For a sub-problem of `N` cities at bit precision `B` the array is `N` rows by
/// `N · (B + 1)` columns: `B` weight partitions of `N` columns each followed by the
/// spin-storage partition whose columns are visiting orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayGeometry {
    /// Number of rows (= number of cities of the sub-problem).
    pub rows: usize,
    /// Weight bit precision.
    pub precision: BitPrecision,
}

impl ArrayGeometry {
    /// Creates a geometry for `rows` cities at the given precision.
    pub fn new(rows: usize, precision: BitPrecision) -> Self {
        Self { rows, precision }
    }

    /// Total number of columns (`rows · (B + 1)`).
    pub fn columns(&self) -> usize {
        self.rows * self.precision.partitions()
    }

    /// Total number of SOT-MRAM cells.
    pub fn cells(&self) -> usize {
        self.rows * self.columns()
    }

    /// Index of the first column of weight partition `p` (0 = most significant bit).
    pub fn weight_partition_start(&self, p: u8) -> usize {
        usize::from(p) * self.rows
    }

    /// Index of the first column of the spin-storage partition.
    pub fn spin_storage_start(&self) -> usize {
        usize::from(self.precision.bits()) * self.rows
    }
}

impl std::fmt::Display for ArrayGeometry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} × {}", self.rows, self.columns())
    }
}

/// Non-ideality configuration for analog reads.
///
/// Wire resistance adds a series term that grows with the cell's Manhattan distance from
/// the drivers (bottom-left corner), attenuating the effective conductance. Storing the
/// most significant bit closest to the left end (as the paper does) therefore minimises
/// the error on the most significant partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonIdealityConfig {
    /// Series wire resistance per crossed cell, in ohms. Zero disables the effect.
    pub wire_resistance_per_cell_ohms: f64,
    /// Relative Gaussian conductance variation (sigma / mean). Zero disables the effect.
    pub conductance_variation: f64,
}

impl NonIdealityConfig {
    /// Ideal array: no wire resistance, no device variation.
    pub fn ideal() -> Self {
        Self {
            wire_resistance_per_cell_ohms: 0.0,
            conductance_variation: 0.0,
        }
    }

    /// Realistic defaults used in the paper reproduction (≈ 1 Ω of wire per cell, 2 %
    /// conductance variation).
    pub fn realistic() -> Self {
        Self {
            wire_resistance_per_cell_ohms: 1.0,
            conductance_variation: 0.02,
        }
    }
}

impl Default for NonIdealityConfig {
    fn default() -> Self {
        Self::realistic()
    }
}

/// An `N × N·(B+1)` crossbar of 3T-1M SOT-MRAM cells.
///
/// The array exposes exactly the analogue operations the Ising macro needs:
///
/// * [`program_weights`](Self::program_weights) — deterministic writes of the bit-sliced
///   distance weights into the first `B` partitions,
/// * spin-storage reads/writes ([`spin`](Self::spin), [`write_spin`](Self::write_spin),
///   [`reset_order_column`](Self::reset_order_column)),
/// * [`superpose_orders`](Self::superpose_orders) — activate two spin-storage columns and
///   read the per-row current (the superposed visiting vector), and
/// * [`weighted_column_currents`](Self::weighted_column_currents) — apply a binary row
///   vector and read per-city currents through the weight partitions, already scaled by
///   bit significance (the current-mirror bank model).
///
/// # Example
///
/// ```
/// use taxi_xbar::{BitPrecision, CrossbarArray, QuantizedDistances};
/// use taxi_xbar::array::NonIdealityConfig;
/// use taxi_device::DeviceParams;
/// use taxi_dist::DistanceMatrix;
///
/// let d = DistanceMatrix::from_rows(&[
///     vec![0.0, 1.0, 5.0],
///     vec![1.0, 0.0, 2.0],
///     vec![5.0, 2.0, 0.0],
/// ])
/// .expect("square matrix");
/// let q = QuantizedDistances::from_distances(&d, BitPrecision::FOUR)?;
/// let mut array = CrossbarArray::new(3, BitPrecision::FOUR, DeviceParams::default(),
///                                    NonIdealityConfig::ideal());
/// array.program_weights(&q)?;
/// // City 1 is much closer to city 0 than city 2 is, so with row 0 active the current
/// // through city 1's columns dominates.
/// let currents = array.weighted_column_currents(&[true, false, false]);
/// assert!(currents[1] > currents[2]);
/// # Ok::<(), taxi_xbar::XbarError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CrossbarArray {
    geometry: ArrayGeometry,
    params: DeviceParams,
    non_ideality: NonIdealityConfig,
    /// Row-major cell states, `rows × columns`.
    cells: Vec<MagState>,
    /// Per-cell fixed conductance perturbation factors (device-to-device variation).
    variation: Vec<f64>,
    /// Cached effective conductance per cell (state + variation + wire resistance).
    ///
    /// The read kernels are the anneal loop's hot path; the conductance formula is
    /// deterministic in the cell state, so it only needs re-evaluation at the four
    /// mutation points (`new`, `program_weights`, `write_spin`, `reset_order_column`)
    /// instead of once per MAC term. Values are identical to computing on the fly.
    g_eff: Vec<f64>,
    /// Reusable per-city scratch for assignment validation (no per-write allocation).
    seen_buf: Vec<bool>,
    write_ops: u64,
    read_ops: u64,
}

impl CrossbarArray {
    /// Creates an array with every cell in the high-resistance (logic 0) state.
    pub fn new(
        rows: usize,
        precision: BitPrecision,
        params: DeviceParams,
        non_ideality: NonIdealityConfig,
    ) -> Self {
        let geometry = ArrayGeometry::new(rows, precision);
        let n_cells = geometry.cells();
        // Deterministic pseudo-random variation pattern derived from cell index; this
        // keeps the array reproducible without threading an RNG through construction.
        let variation = (0..n_cells)
            .map(|i| {
                if non_ideality.conductance_variation == 0.0 {
                    1.0
                } else {
                    // Simple hash → uniform in [-1, 1] → scaled.
                    let h = (i as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .rotate_left(31)
                        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
                    1.0 + (2.0 * u - 1.0) * non_ideality.conductance_variation
                }
            })
            .collect();
        let mut array = Self {
            geometry,
            params,
            non_ideality,
            cells: vec![MagState::AntiParallel; n_cells],
            variation,
            g_eff: vec![0.0; n_cells],
            seen_buf: vec![false; rows],
            write_ops: 0,
            read_ops: 0,
        };
        let columns = array.geometry.columns();
        for row in 0..rows {
            for col in 0..columns {
                array.refresh_conductance(row, col);
            }
        }
        array
    }

    /// The array geometry.
    pub fn geometry(&self) -> ArrayGeometry {
        self.geometry
    }

    /// Number of rows (cities).
    pub fn num_rows(&self) -> usize {
        self.geometry.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.geometry.columns()
    }

    /// Device parameters shared by every cell.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Total deterministic write operations issued so far.
    pub fn write_ops(&self) -> u64 {
        self.write_ops
    }

    /// Total analog read (MAC) operations issued so far.
    pub fn read_ops(&self) -> u64 {
        self.read_ops
    }

    fn cell_index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.geometry.rows && col < self.geometry.columns());
        row * self.geometry.columns() + col
    }

    /// Effective conductance of the cell at (`row`, `col`) including non-idealities.
    pub fn effective_conductance(&self, row: usize, col: usize) -> f64 {
        self.g_eff[self.cell_index(row, col)]
    }

    /// Recomputes the cached effective conductance of one cell; must be called whenever
    /// the cell's state changes.
    fn refresh_conductance(&mut self, row: usize, col: usize) {
        let idx = self.cell_index(row, col);
        let base = match self.cells[idx] {
            MagState::Parallel => self.params.g_parallel(),
            MagState::AntiParallel => self.params.g_antiparallel(),
        } * self.variation[idx];
        let r_wire = self.non_ideality.wire_resistance_per_cell_ohms * ((row + col) as f64 + 1.0);
        self.g_eff[idx] = if r_wire <= 0.0 {
            base
        } else {
            1.0 / (1.0 / base + r_wire)
        };
    }

    /// Programs the bit-sliced distance weights into the first `B` partitions.
    ///
    /// Partition 0 stores the most significant bit (closest to the drivers, minimising
    /// wire-resistance error on the most significant contribution, as in the paper).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidDistanceMatrix`] if the quantised matrix size or
    /// precision does not match the array geometry.
    pub fn program_weights(&mut self, weights: &QuantizedDistances) -> Result<(), XbarError> {
        if weights.num_cities() != self.geometry.rows {
            return Err(XbarError::InvalidDistanceMatrix {
                reason: format!(
                    "weight matrix is for {} cities but the array has {} rows",
                    weights.num_cities(),
                    self.geometry.rows
                ),
            });
        }
        if weights.precision() != self.geometry.precision {
            return Err(XbarError::InvalidDistanceMatrix {
                reason: format!(
                    "weight precision {} does not match array precision {}",
                    weights.precision(),
                    self.geometry.precision
                ),
            });
        }
        let n = self.geometry.rows;
        let bits = self.geometry.precision.bits();
        for row in 0..n {
            for city in 0..n {
                for p in 0..bits {
                    // Partition p stores bit (bits - 1 - p): MSB in partition 0.
                    let bit = bits - 1 - p;
                    let col = self.geometry.weight_partition_start(p) + city;
                    let state = MagState::from_bit(weights.weight_bit(row, city, bit));
                    let idx = self.cell_index(row, col);
                    self.cells[idx] = state;
                    self.refresh_conductance(row, col);
                    self.write_ops += 1;
                }
            }
        }
        Ok(())
    }

    /// Reads the spin-storage bit for (`city`, `order`).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::IndexOutOfRange`] if either index is out of range.
    pub fn spin(&self, city: usize, order: usize) -> Result<bool, XbarError> {
        self.check_city(city)?;
        self.check_order(order)?;
        let col = self.geometry.spin_storage_start() + order;
        Ok(self.cells[self.cell_index(city, col)] == MagState::Parallel)
    }

    /// Deterministically writes the spin-storage bit for (`city`, `order`).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::IndexOutOfRange`] if either index is out of range.
    pub fn write_spin(&mut self, city: usize, order: usize, value: bool) -> Result<(), XbarError> {
        self.check_city(city)?;
        self.check_order(order)?;
        let col = self.geometry.spin_storage_start() + order;
        let idx = self.cell_index(city, col);
        self.cells[idx] = MagState::from_bit(value);
        self.refresh_conductance(city, col);
        self.write_ops += 1;
        Ok(())
    }

    /// Resets every cell of the spin-storage column for `order` to the high-resistance
    /// state (the pre-update reset described in Section III-C5).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::IndexOutOfRange`] if `order` is out of range.
    pub fn reset_order_column(&mut self, order: usize) -> Result<(), XbarError> {
        self.check_order(order)?;
        let col = self.geometry.spin_storage_start() + order;
        for city in 0..self.geometry.rows {
            let idx = self.cell_index(city, col);
            self.cells[idx] = MagState::AntiParallel;
            self.refresh_conductance(city, col);
            self.write_ops += 1;
        }
        Ok(())
    }

    /// Activates the spin-storage columns of `orders` and returns the per-row read
    /// current: the analogue superposition of the visiting vectors at those orders
    /// (Section III-C1).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::IndexOutOfRange`] if any order is out of range.
    pub fn superpose_orders(&mut self, orders: &[usize]) -> Result<Vec<f64>, XbarError> {
        let mut currents = vec![0.0f64; self.geometry.rows];
        self.superpose_orders_into(orders, &mut currents)?;
        Ok(currents)
    }

    /// Like [`superpose_orders`](Self::superpose_orders), but writes the per-row currents
    /// into a caller-provided slice (one entry per row) instead of allocating.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::IndexOutOfRange`] if any order is out of range.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the number of rows.
    pub fn superpose_orders_into(
        &mut self,
        orders: &[usize],
        out: &mut [f64],
    ) -> Result<(), XbarError> {
        assert_eq!(
            out.len(),
            self.geometry.rows,
            "output length must equal the number of rows"
        );
        for &o in orders {
            self.check_order(o)?;
        }
        self.read_ops += 1;
        let v = self.params.read_voltage;
        let n = self.geometry.rows;
        let columns = self.geometry.columns();
        out.fill(0.0);
        // Rows are chunked [`LANES`] wide (independent outputs gathered into an array
        // temporary the autovectorizer can lower to SIMD); each out[row] still receives
        // exactly one add per order, in order order, so results are bit-identical to the
        // scalar loop.
        for &order in orders {
            let col = self.geometry.spin_storage_start() + order;
            let mut row = 0;
            while row + LANES <= n {
                let mut gathered = [0.0f64; LANES];
                for l in 0..LANES {
                    gathered[l] = self.g_eff[(row + l) * columns + col];
                }
                for (l, &g) in gathered.iter().enumerate() {
                    out[row + l] += v * g;
                }
                row += LANES;
            }
            while row < n {
                out[row] += v * self.g_eff[row * columns + col];
                row += 1;
            }
        }
        Ok(())
    }

    /// Applies the binary `row_vector` to the rows and returns the per-city current
    /// through the weight partitions, with each partition scaled by its bit significance
    /// (`2^b`, the current-mirror bank of Fig. 4b).
    ///
    /// The returned vector has one entry per city; larger current means a shorter
    /// combined distance to the active rows (Eq. 5).
    ///
    /// # Panics
    ///
    /// Panics if `row_vector.len()` differs from the number of rows.
    pub fn weighted_column_currents(&mut self, row_vector: &[bool]) -> Vec<f64> {
        let mut per_city = vec![0.0f64; self.geometry.rows];
        self.weighted_column_currents_into(row_vector, &mut per_city);
        per_city
    }

    /// Like [`weighted_column_currents`](Self::weighted_column_currents), but writes the
    /// per-city currents into a caller-provided slice (one entry per city) instead of
    /// allocating.
    ///
    /// # Panics
    ///
    /// Panics if `row_vector.len()` or `out.len()` differs from the number of rows.
    pub fn weighted_column_currents_into(&mut self, row_vector: &[bool], out: &mut [f64]) {
        assert_eq!(
            row_vector.len(),
            self.geometry.rows,
            "row vector length must equal the number of rows"
        );
        assert_eq!(
            out.len(),
            self.geometry.rows,
            "output length must equal the number of cities"
        );
        self.read_ops += 1;
        let v = self.params.read_voltage;
        let bits = self.geometry.precision.bits();
        let n = self.geometry.rows;
        let columns = self.geometry.columns();
        out.fill(0.0);
        // Cities (columns within a partition) are chunked [`LANES`] wide: each lane's
        // accumulator sums its active rows in exactly the original row order, so per-city
        // currents are bit-identical to the scalar scan while four adjacent columns are
        // processed from one contiguous row slice.
        for p in 0..bits {
            let significance = f64::from(1u32 << (bits - 1 - p));
            let start = self.geometry.weight_partition_start(p);
            let mut city = 0;
            while city + LANES <= n {
                let mut acc = [0.0f64; LANES];
                for (row, &active) in row_vector.iter().enumerate() {
                    if active {
                        let base = row * columns + start + city;
                        for l in 0..LANES {
                            acc[l] += v * self.g_eff[base + l];
                        }
                    }
                }
                for (l, &i_col) in acc.iter().enumerate() {
                    out[city + l] += significance * i_col;
                }
                city += LANES;
            }
            while city < n {
                let col = start + city;
                let mut i_col = 0.0;
                for (row, &active) in row_vector.iter().enumerate() {
                    if active {
                        i_col += v * self.g_eff[row * columns + col];
                    }
                }
                out[city] += significance * i_col;
                city += 1;
            }
        }
    }

    /// Returns the full spin-storage contents as an `orders → city` assignment.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::CorruptSpinStorage`] if any order column does not contain
    /// exactly one low-resistance cell.
    pub fn read_assignment(&self) -> Result<Vec<usize>, XbarError> {
        let mut assignment = Vec::with_capacity(self.geometry.rows);
        self.read_assignment_into(&mut assignment)?;
        Ok(assignment)
    }

    /// Like [`read_assignment`](Self::read_assignment), but writes into a caller-provided
    /// buffer (cleared and refilled) instead of allocating.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`read_assignment`](Self::read_assignment).
    pub fn read_assignment_into(&self, assignment: &mut Vec<usize>) -> Result<(), XbarError> {
        let n = self.geometry.rows;
        assignment.clear();
        for order in 0..n {
            let col = self.geometry.spin_storage_start() + order;
            let mut chosen = None;
            for city in 0..n {
                if self.cells[self.cell_index(city, col)] == MagState::Parallel {
                    if chosen.is_some() {
                        return Err(XbarError::CorruptSpinStorage {
                            reason: format!("order {order} has more than one city selected"),
                        });
                    }
                    chosen = Some(city);
                }
            }
            match chosen {
                Some(city) => assignment.push(city),
                None => {
                    return Err(XbarError::CorruptSpinStorage {
                        reason: format!("order {order} has no city selected"),
                    })
                }
            }
        }
        Ok(())
    }

    /// Writes a full `orders → city` assignment into the spin storage.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::CorruptSpinStorage`] if `assignment` is not a permutation of
    /// `0..rows`, or [`XbarError::IndexOutOfRange`] if it has the wrong length.
    pub fn write_assignment(&mut self, assignment: &[usize]) -> Result<(), XbarError> {
        let n = self.geometry.rows;
        if assignment.len() != n {
            return Err(XbarError::IndexOutOfRange {
                kind: "order",
                index: assignment.len(),
                len: n,
            });
        }
        self.seen_buf.fill(false);
        for &city in assignment {
            if city >= n {
                return Err(XbarError::IndexOutOfRange {
                    kind: "city",
                    index: city,
                    len: n,
                });
            }
            if self.seen_buf[city] {
                return Err(XbarError::CorruptSpinStorage {
                    reason: format!("city {city} assigned to more than one order"),
                });
            }
            self.seen_buf[city] = true;
        }
        for (order, &city) in assignment.iter().enumerate() {
            self.reset_order_column(order)?;
            self.write_spin(city, order, true)?;
        }
        Ok(())
    }

    fn check_city(&self, city: usize) -> Result<(), XbarError> {
        if city < self.geometry.rows {
            Ok(())
        } else {
            Err(XbarError::IndexOutOfRange {
                kind: "city",
                index: city,
                len: self.geometry.rows,
            })
        }
    }

    fn check_order(&self, order: usize) -> Result<(), XbarError> {
        if order < self.geometry.rows {
            Ok(())
        } else {
            Err(XbarError::IndexOutOfRange {
                kind: "order",
                index: order,
                len: self.geometry.rows,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn distances() -> taxi_dist::DistanceMatrix {
        taxi_dist::DistanceMatrix::from_rows(&[
            vec![0.0, 1.0, 5.0, 9.0],
            vec![1.0, 0.0, 2.0, 7.0],
            vec![5.0, 2.0, 0.0, 1.5],
            vec![9.0, 7.0, 1.5, 0.0],
        ])
        .unwrap()
    }

    fn ideal_array() -> CrossbarArray {
        let q = QuantizedDistances::from_distances(&distances(), BitPrecision::FOUR).unwrap();
        let mut a = CrossbarArray::new(
            4,
            BitPrecision::FOUR,
            DeviceParams::default(),
            NonIdealityConfig::ideal(),
        );
        a.program_weights(&q).unwrap();
        a
    }

    #[test]
    fn geometry_matches_paper_formula() {
        // Table I: a 12-city problem needs 12 × 36/48/60 arrays for 2/3/4-bit precision.
        for (bits, cols) in [(2u8, 36usize), (3, 48), (4, 60)] {
            let g = ArrayGeometry::new(12, BitPrecision::new(bits).unwrap());
            assert_eq!(g.columns(), cols);
            assert_eq!(g.cells(), 12 * cols);
        }
    }

    #[test]
    fn program_weights_rejects_mismatched_sizes() {
        let q = QuantizedDistances::from_distances(&distances(), BitPrecision::FOUR).unwrap();
        let mut a = CrossbarArray::new(
            5,
            BitPrecision::FOUR,
            DeviceParams::default(),
            NonIdealityConfig::ideal(),
        );
        assert!(a.program_weights(&q).is_err());
    }

    #[test]
    fn program_weights_rejects_mismatched_precision() {
        let q = QuantizedDistances::from_distances(&distances(), BitPrecision::TWO).unwrap();
        let mut a = CrossbarArray::new(
            4,
            BitPrecision::FOUR,
            DeviceParams::default(),
            NonIdealityConfig::ideal(),
        );
        assert!(a.program_weights(&q).is_err());
    }

    #[test]
    fn closer_city_draws_more_current() {
        let mut a = ideal_array();
        // Activate only row 0: city 1 (d=1) should beat city 2 (d=5) and city 3 (d=9).
        let currents = a.weighted_column_currents(&[true, false, false, false]);
        assert!(currents[1] > currents[2]);
        assert!(currents[2] > currents[3]);
    }

    #[test]
    fn superposition_reflects_spin_storage() {
        let mut a = ideal_array();
        a.write_assignment(&[0, 1, 2, 3]).unwrap();
        let currents = a.superpose_orders(&[0, 2]).unwrap();
        // Cities 0 and 2 are selected at orders 0 and 2; their rows carry high current.
        assert!(currents[0] > currents[1]);
        assert!(currents[2] > currents[3]);
    }

    #[test]
    fn assignment_round_trips() {
        let mut a = ideal_array();
        let perm = vec![2, 0, 3, 1];
        a.write_assignment(&perm).unwrap();
        assert_eq!(a.read_assignment().unwrap(), perm);
    }

    #[test]
    fn write_assignment_rejects_duplicates() {
        let mut a = ideal_array();
        assert!(matches!(
            a.write_assignment(&[0, 0, 1, 2]),
            Err(XbarError::CorruptSpinStorage { .. })
        ));
    }

    #[test]
    fn read_assignment_detects_missing_selection() {
        let a = ideal_array();
        // Fresh spin storage is all zeros → every order column is empty.
        assert!(matches!(
            a.read_assignment(),
            Err(XbarError::CorruptSpinStorage { .. })
        ));
    }

    #[test]
    fn reset_order_column_clears_spins() {
        let mut a = ideal_array();
        a.write_assignment(&[0, 1, 2, 3]).unwrap();
        a.reset_order_column(1).unwrap();
        for city in 0..4 {
            assert!(!a.spin(city, 1).unwrap());
        }
    }

    #[test]
    fn out_of_range_indices_are_rejected() {
        let mut a = ideal_array();
        assert!(a.spin(7, 0).is_err());
        assert!(a.spin(0, 7).is_err());
        assert!(a.write_spin(0, 9, true).is_err());
        assert!(a.reset_order_column(9).is_err());
        assert!(a.superpose_orders(&[9]).is_err());
    }

    #[test]
    fn wire_resistance_attenuates_far_cells() {
        let q = QuantizedDistances::from_distances(&distances(), BitPrecision::FOUR).unwrap();
        let mut ideal = CrossbarArray::new(
            4,
            BitPrecision::FOUR,
            DeviceParams::default(),
            NonIdealityConfig::ideal(),
        );
        ideal.program_weights(&q).unwrap();
        let mut lossy = CrossbarArray::new(
            4,
            BitPrecision::FOUR,
            DeviceParams::default(),
            NonIdealityConfig {
                wire_resistance_per_cell_ohms: 50.0,
                conductance_variation: 0.0,
            },
        );
        lossy.program_weights(&q).unwrap();
        let i_ideal = ideal.weighted_column_currents(&[true, true, true, true]);
        let i_lossy = lossy.weighted_column_currents(&[true, true, true, true]);
        for (a, b) in i_ideal.iter().zip(&i_lossy) {
            assert!(b < a, "wire resistance must reduce every column current");
        }
    }

    #[test]
    fn non_ideal_array_preserves_ranking_for_moderate_wire_resistance() {
        let q = QuantizedDistances::from_distances(&distances(), BitPrecision::FOUR).unwrap();
        let mut a = CrossbarArray::new(
            4,
            BitPrecision::FOUR,
            DeviceParams::default(),
            NonIdealityConfig::realistic(),
        );
        a.program_weights(&q).unwrap();
        let currents = a.weighted_column_currents(&[true, false, false, false]);
        assert!(currents[1] > currents[3]);
    }

    #[test]
    fn operation_counters_increase() {
        let mut a = ideal_array();
        let writes_before = a.write_ops();
        a.write_assignment(&[0, 1, 2, 3]).unwrap();
        assert!(a.write_ops() > writes_before);
        let reads_before = a.read_ops();
        let _ = a.weighted_column_currents(&[true, false, false, false]);
        assert_eq!(a.read_ops(), reads_before + 1);
    }
}
