//! Circuit-level latency / power / energy model of one Ising macro (Table I of the paper).
//!
//! The paper characterises a 12-city macro in TSMC 65 nm with Cadence Spectre for one
//! complete iteration (superposition + optimization + spin-storage update) at 2/3/4-bit
//! weight precision. This module provides an analytical model **calibrated to those
//! published numbers** so the architecture simulator can account for macro latency and
//! energy without a SPICE engine (see DESIGN.md, substitutions table).

use crate::{ArrayGeometry, BitPrecision};

/// Latency of the three phases of one macro iteration, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseLatency {
    /// Superposition phase (spin-storage read + comparator + latch).
    pub superposition: f64,
    /// Optimization phase (weight MAC + mirrors + stochastic mask + ArgMax).
    pub optimization: f64,
    /// Spin-storage update phase (reset + write).
    pub storage_update: f64,
}

impl PhaseLatency {
    /// The phase latencies reported in Table I (3 ns / 4 ns / 2 ns), independent of bit
    /// precision.
    pub fn paper() -> Self {
        Self {
            superposition: 3e-9,
            optimization: 4e-9,
            storage_update: 2e-9,
        }
    }

    /// Total latency of one iteration.
    pub fn total(&self) -> f64 {
        self.superposition + self.optimization + self.storage_update
    }
}

impl Default for PhaseLatency {
    fn default() -> Self {
        Self::paper()
    }
}

/// Circuit-level characterisation of one macro configuration, mirroring one column of
/// Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitReport {
    /// Number of cities (rows).
    pub cities: usize,
    /// Weight bit precision.
    pub precision: BitPrecision,
    /// Array geometry (rows × columns).
    pub geometry: ArrayGeometry,
    /// Average power during one iteration, in watts.
    pub power_watts: f64,
    /// Phase latencies.
    pub latency: PhaseLatency,
    /// Energy of one complete iteration, in joules.
    pub energy_per_iteration_joules: f64,
}

impl CircuitReport {
    /// Power in milliwatts (Table I units).
    pub fn power_milliwatts(&self) -> f64 {
        self.power_watts * 1e3
    }

    /// Energy per iteration in picojoules (Table I units).
    pub fn energy_picojoules(&self) -> f64 {
        self.energy_per_iteration_joules * 1e12
    }
}

/// Calibration anchors: (bits, power in watts) measured at the 12-city reference size.
const CALIBRATION_CITIES: usize = 12;
const CALIBRATION: [(u8, f64); 3] = [(2, 4.202e-3), (3, 5.033e-3), (4, 5.11e-3)];

/// Analytical circuit model of the Ising macro, calibrated to Table I.
///
/// * Phase latencies are the published 3/4/2 ns, independent of precision.
/// * Power at the 12-city calibration size reproduces the published 4.202/5.033/5.11 mW
///   for 2/3/4-bit precision; other precisions are extrapolated from the per-column trend.
/// * Power for other problem sizes scales with the number of columns relative to the
///   calibration geometry (array and peripheral circuits both grow with column count).
/// * Energy per iteration is power × total iteration latency, matching the published
///   37.82/45.3/45.98 pJ at the calibration point.
///
/// # Example
///
/// ```
/// use taxi_xbar::{BitPrecision, MacroCircuitModel};
///
/// let model = MacroCircuitModel::paper_calibrated();
/// let report = model.report(12, BitPrecision::FOUR);
/// assert!((report.power_milliwatts() - 5.11).abs() < 1e-6);
/// assert!((report.energy_picojoules() - 45.99).abs() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacroCircuitModel {
    latency: PhaseLatency,
    /// Per-column incremental power derived from the 3-bit → 4-bit calibration step, in
    /// watts per column, used to extrapolate outside the calibration table.
    extrapolation_watts_per_column: f64,
    /// Energy to program (map) one SOT-MRAM cell, in joules.
    program_energy_per_cell_joules: f64,
    /// Time to program one row of cells (cells in a row are written sequentially per
    /// partition but partitions share the write driver), in seconds.
    program_latency_per_cell_seconds: f64,
}

impl MacroCircuitModel {
    /// The model calibrated to the paper's Table I and device write figures.
    pub fn paper_calibrated() -> Self {
        let p3 = CALIBRATION[1].1;
        let p4 = CALIBRATION[2].1;
        let cols3 = CALIBRATION_CITIES * (3 + 1);
        let cols4 = CALIBRATION_CITIES * (4 + 1);
        Self {
            latency: PhaseLatency::paper(),
            extrapolation_watts_per_column: (p4 - p3) / (cols4 - cols3) as f64,
            program_energy_per_cell_joules: 50e-15,
            program_latency_per_cell_seconds: 1e-9,
        }
    }

    /// The phase latencies of one iteration.
    pub fn latency(&self) -> PhaseLatency {
        self.latency
    }

    /// Average power of one iteration for a macro of `cities` cities at `precision`, in
    /// watts.
    pub fn power_watts(&self, cities: usize, precision: BitPrecision) -> f64 {
        let calibrated = CALIBRATION
            .iter()
            .find(|(b, _)| *b == precision.bits())
            .map(|&(_, p)| p)
            .unwrap_or_else(|| {
                // Extrapolate from the 4-bit anchor using the per-column trend.
                let (b4, p4) = CALIBRATION[2];
                let cols_anchor = CALIBRATION_CITIES * (usize::from(b4) + 1);
                let cols_target = CALIBRATION_CITIES * precision.partitions();
                p4 + self.extrapolation_watts_per_column * (cols_target as f64 - cols_anchor as f64)
            });
        // Scale with column count relative to the 12-city calibration geometry.
        let cols_calibration = (CALIBRATION_CITIES * precision.partitions()) as f64;
        let cols_actual = (cities * precision.partitions()) as f64;
        calibrated * (cols_actual / cols_calibration)
    }

    /// Energy of one complete iteration (superpose + optimize + update), in joules.
    pub fn energy_per_iteration_joules(&self, cities: usize, precision: BitPrecision) -> f64 {
        self.power_watts(cities, precision) * self.latency.total()
    }

    /// Latency of one complete iteration, in seconds.
    pub fn latency_per_iteration_seconds(&self) -> f64 {
        self.latency.total()
    }

    /// Energy to program (map) the distance weights and initial spin storage of a macro,
    /// in joules.
    pub fn mapping_energy_joules(&self, cities: usize, precision: BitPrecision) -> f64 {
        let cells = ArrayGeometry::new(cities, precision).cells() as f64;
        cells * self.program_energy_per_cell_joules
    }

    /// Latency to program (map) a macro, in seconds. Rows are programmed one after the
    /// other; the cells of a row are written in parallel across partitions.
    pub fn mapping_latency_seconds(&self, cities: usize, precision: BitPrecision) -> f64 {
        let writes = (cities * precision.partitions()) as f64;
        writes * self.program_latency_per_cell_seconds
    }

    /// Full circuit report for one configuration (one column of Table I).
    pub fn report(&self, cities: usize, precision: BitPrecision) -> CircuitReport {
        CircuitReport {
            cities,
            precision,
            geometry: ArrayGeometry::new(cities, precision),
            power_watts: self.power_watts(cities, precision),
            latency: self.latency,
            energy_per_iteration_joules: self.energy_per_iteration_joules(cities, precision),
        }
    }

    /// Generates the full Table I (2/3/4-bit columns at the 12-city calibration size).
    pub fn table_one(&self) -> Vec<CircuitReport> {
        [BitPrecision::TWO, BitPrecision::THREE, BitPrecision::FOUR]
            .into_iter()
            .map(|p| self.report(CALIBRATION_CITIES, p))
            .collect()
    }
}

impl Default for MacroCircuitModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_latencies_match_table_one() {
        let l = PhaseLatency::paper();
        assert_eq!(l.superposition, 3e-9);
        assert_eq!(l.optimization, 4e-9);
        assert_eq!(l.storage_update, 2e-9);
        assert!((l.total() - 9e-9).abs() < 1e-18);
    }

    #[test]
    fn power_matches_table_one_at_calibration_point() {
        let model = MacroCircuitModel::paper_calibrated();
        for (bits, expected_mw) in [(2u8, 4.202), (3, 5.033), (4, 5.11)] {
            let p = BitPrecision::new(bits).unwrap();
            let report = model.report(12, p);
            assert!(
                (report.power_milliwatts() - expected_mw).abs() < 1e-9,
                "power for {bits}-bit"
            );
        }
    }

    #[test]
    fn energy_matches_table_one_within_rounding() {
        let model = MacroCircuitModel::paper_calibrated();
        for (bits, expected_pj) in [(2u8, 37.82), (3, 45.3), (4, 45.98)] {
            let p = BitPrecision::new(bits).unwrap();
            let report = model.report(12, p);
            assert!(
                (report.energy_picojoules() - expected_pj).abs() < 0.5,
                "energy for {bits}-bit: got {}",
                report.energy_picojoules()
            );
        }
    }

    #[test]
    fn array_sizes_match_table_one() {
        let model = MacroCircuitModel::paper_calibrated();
        let table = model.table_one();
        let sizes: Vec<String> = table.iter().map(|r| r.geometry.to_string()).collect();
        assert_eq!(sizes, vec!["12 × 36", "12 × 48", "12 × 60"]);
    }

    #[test]
    fn power_scales_with_problem_size() {
        let model = MacroCircuitModel::paper_calibrated();
        let p12 = model.power_watts(12, BitPrecision::FOUR);
        let p20 = model.power_watts(20, BitPrecision::FOUR);
        assert!(p20 > p12);
        assert!((p20 / p12 - 20.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn higher_precision_costs_more_energy() {
        let model = MacroCircuitModel::paper_calibrated();
        let e2 = model.energy_per_iteration_joules(12, BitPrecision::TWO);
        let e4 = model.energy_per_iteration_joules(12, BitPrecision::FOUR);
        assert!(e4 > e2);
    }

    #[test]
    fn extrapolation_outside_table_is_monotonic() {
        let model = MacroCircuitModel::paper_calibrated();
        let p4 = model.power_watts(12, BitPrecision::FOUR);
        let p5 = model.power_watts(12, BitPrecision::new(5).unwrap());
        let p6 = model.power_watts(12, BitPrecision::new(6).unwrap());
        assert!(p5 > p4);
        assert!(p6 > p5);
    }

    #[test]
    fn mapping_costs_grow_with_geometry() {
        let model = MacroCircuitModel::paper_calibrated();
        let e_small = model.mapping_energy_joules(12, BitPrecision::TWO);
        let e_large = model.mapping_energy_joules(12, BitPrecision::FOUR);
        assert!(e_large > e_small);
        assert!(model.mapping_latency_seconds(12, BitPrecision::FOUR) > 0.0);
    }
}
