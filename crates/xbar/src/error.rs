//! Error type for crossbar-level operations.

use std::error::Error;
use std::fmt;

use taxi_device::DeviceError;

/// Errors returned by crossbar and Ising-macro operations.
#[derive(Debug, Clone, PartialEq)]
pub enum XbarError {
    /// The distance matrix was empty, non-square, or contained invalid entries.
    InvalidDistanceMatrix {
        /// Explanation of the problem.
        reason: String,
    },
    /// The requested bit precision is unsupported.
    UnsupportedBitPrecision {
        /// The requested number of bits.
        bits: u8,
    },
    /// The sub-problem exceeds the macro capacity.
    ProblemTooLarge {
        /// Number of cities requested.
        cities: usize,
        /// Maximum number of cities the macro supports.
        capacity: usize,
    },
    /// A city or order index was out of range.
    IndexOutOfRange {
        /// Kind of index ("city" or "order").
        kind: &'static str,
        /// The offending index.
        index: usize,
        /// Valid exclusive upper bound.
        len: usize,
    },
    /// The spin storage does not currently encode a valid permutation.
    CorruptSpinStorage {
        /// Explanation of the inconsistency.
        reason: String,
    },
    /// An underlying device-level error.
    Device(DeviceError),
}

impl fmt::Display for XbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XbarError::InvalidDistanceMatrix { reason } => {
                write!(f, "invalid distance matrix: {reason}")
            }
            XbarError::UnsupportedBitPrecision { bits } => {
                write!(
                    f,
                    "unsupported bit precision: {bits} bits (supported: 1..=8)"
                )
            }
            XbarError::ProblemTooLarge { cities, capacity } => {
                write!(
                    f,
                    "sub-problem with {cities} cities exceeds macro capacity {capacity}"
                )
            }
            XbarError::IndexOutOfRange { kind, index, len } => {
                write!(f, "{kind} index {index} out of range (0..{len})")
            }
            XbarError::CorruptSpinStorage { reason } => {
                write!(f, "spin storage is not a valid permutation: {reason}")
            }
            XbarError::Device(err) => write!(f, "device error: {err}"),
        }
    }
}

impl Error for XbarError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            XbarError::Device(err) => Some(err),
            _ => None,
        }
    }
}

impl From<DeviceError> for XbarError {
    fn from(err: DeviceError) -> Self {
        XbarError::Device(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = XbarError::ProblemTooLarge {
            cities: 40,
            capacity: 20,
        };
        assert!(err.to_string().contains("40"));
        assert!(err.to_string().contains("20"));
    }

    #[test]
    fn device_error_converts_and_chains() {
        let device_err = DeviceError::EmptyVector;
        let err: XbarError = device_err.into();
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<XbarError>();
    }
}
