//! The Ising macro: crossbar array + peripherals operating as an autonomous TSP sub-solver.

use rand::Rng;

use taxi_device::{DeviceParams, WriteCurrent};
use taxi_dist::DistanceMatrix;

use crate::array::NonIdealityConfig;
use crate::{
    ArgMaxCircuit, BitPrecision, CrossbarArray, CurrentComparator, DLatch, QuantizedDistances,
    StochasticMaskCircuit, XbarError,
};

/// Configuration of one Ising macro.
///
/// # Example
///
/// ```
/// use taxi_xbar::MacroConfig;
///
/// let config = MacroConfig::new(4).with_capacity(12).with_ideal_devices();
/// assert_eq!(config.capacity(), 12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MacroConfig {
    precision: BitPrecision,
    capacity: usize,
    device_params: DeviceParams,
    non_ideality: NonIdealityConfig,
    argmax_resolution: f64,
}

impl MacroConfig {
    /// Creates a configuration at the given weight bit precision with the paper's default
    /// capacity (12 cities) and realistic non-idealities.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=8`.
    pub fn new(bits: u8) -> Self {
        Self {
            precision: BitPrecision::new(bits).expect("bit precision must be within 1..=8"),
            capacity: 12,
            device_params: DeviceParams::default(),
            non_ideality: NonIdealityConfig::realistic(),
            argmax_resolution: 1e-3,
        }
    }

    /// Sets the maximum sub-problem size this macro accepts.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Uses ideal devices (no wire resistance, no conductance variation, ideal ArgMax).
    pub fn with_ideal_devices(mut self) -> Self {
        self.non_ideality = NonIdealityConfig::ideal();
        self.argmax_resolution = 0.0;
        self
    }

    /// Overrides the device parameters.
    pub fn with_device_params(mut self, params: DeviceParams) -> Self {
        self.device_params = params;
        self
    }

    /// Overrides the non-ideality configuration.
    pub fn with_non_ideality(mut self, non_ideality: NonIdealityConfig) -> Self {
        self.non_ideality = non_ideality;
        self
    }

    /// Overrides the relative ArgMax resolution.
    pub fn with_argmax_resolution(mut self, resolution: f64) -> Self {
        self.argmax_resolution = resolution;
        self
    }

    /// Weight bit precision.
    pub fn precision(&self) -> BitPrecision {
        self.precision
    }

    /// Maximum sub-problem size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Device parameters.
    pub fn device_params(&self) -> &DeviceParams {
        &self.device_params
    }

    /// Non-ideality configuration.
    pub fn non_ideality(&self) -> NonIdealityConfig {
        self.non_ideality
    }
}

impl Default for MacroConfig {
    fn default() -> Self {
        Self::new(4)
    }
}

/// Operation counters accumulated by an Ising macro, consumed by the architecture
/// simulator for latency/energy accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MacroOpCounts {
    /// Number of superposition phases executed.
    pub superpose_ops: u64,
    /// Number of distance-MAC (optimize) phases executed.
    pub optimize_ops: u64,
    /// Number of spin-storage update phases executed.
    pub update_ops: u64,
    /// Number of full per-order optimisation steps (one step = one superpose + optimize +
    /// update sequence).
    pub order_steps: u64,
}

impl MacroOpCounts {
    /// Total number of complete iterations, where one iteration is a superpose + optimize
    /// + update sequence as characterised in Table I.
    pub fn iterations(&self) -> u64 {
        self.order_steps
    }
}

/// One crossbar-based Ising macro solving a single TSP sub-problem in place.
///
/// The macro owns the crossbar array (weights + spin storage) and all peripheral
/// circuits. The algorithm layer drives it through
/// [`initialize_order`](Self::initialize_order) and [`optimize_order`](Self::optimize_order)
/// and finally reads the solution back with [`read_solution`](Self::read_solution); no
/// intermediate spin state ever leaves the macro, mirroring the paper's in-macro
/// computing claim.
#[derive(Debug, Clone)]
pub struct IsingMacro {
    config: MacroConfig,
    array: CrossbarArray,
    comparator: CurrentComparator,
    latch: DLatch,
    mask_circuit: StochasticMaskCircuit,
    argmax: ArgMaxCircuit,
    counts: MacroOpCounts,
    /// The quantised weights currently programmed, kept for in-place remapping.
    weights: QuantizedDistances,
    /// Reusable per-step buffers (assignment readout, row currents, latched binary
    /// vector input, per-city MAC currents, gated currents): one optimisation step
    /// performs no heap allocation.
    assignment_buf: Vec<usize>,
    row_buf: Vec<f64>,
    binary_buf: Vec<bool>,
    city_buf: Vec<f64>,
    gated_buf: Vec<f64>,
}

impl IsingMacro {
    /// Builds a macro for the given sub-problem distance matrix and programs the weights.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::ProblemTooLarge`] if the matrix exceeds the configured
    /// capacity, or [`XbarError::InvalidDistanceMatrix`] if the matrix is malformed.
    pub fn new(distances: &DistanceMatrix, config: MacroConfig) -> Result<Self, XbarError> {
        let n = distances.n();
        if n > config.capacity {
            return Err(XbarError::ProblemTooLarge {
                cities: n,
                capacity: config.capacity,
            });
        }
        let weights = QuantizedDistances::from_distances(distances, config.precision)?;
        let mut array = CrossbarArray::new(
            n,
            config.precision,
            config.device_params.clone(),
            config.non_ideality,
        );
        array.program_weights(&weights)?;
        let comparator = CurrentComparator::for_device(&config.device_params);
        let latch = DLatch::new(n);
        let mask_circuit = StochasticMaskCircuit::new(config.device_params.clone(), n)?;
        let argmax = ArgMaxCircuit::new(config.argmax_resolution);
        Ok(Self {
            config,
            array,
            comparator,
            latch,
            mask_circuit,
            argmax,
            counts: MacroOpCounts::default(),
            weights,
            assignment_buf: Vec::with_capacity(n),
            row_buf: vec![0.0; n],
            binary_buf: vec![false; n],
            city_buf: vec![0.0; n],
            gated_buf: vec![0.0; n],
        })
    }

    /// Re-maps the macro onto a new sub-problem of the **same size** in place:
    /// re-quantises and re-programs the weight partitions and resets the operation
    /// counters, without reallocating the crossbar or any peripheral circuit.
    ///
    /// This is the tile-mapping reuse primitive behind the zero-realloc solve path:
    /// after one construction per sub-problem size, a worker solves every subsequent
    /// sub-problem of that size through `remap` with zero heap allocations. The spin
    /// storage is left untouched — callers re-initialise it through
    /// [`initialize_order`](Self::initialize_order), exactly as for a fresh macro.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidDistanceMatrix`] if `distances` is malformed or its
    /// size differs from the macro's current number of cities.
    pub fn remap(&mut self, distances: &DistanceMatrix) -> Result<(), XbarError> {
        if distances.n() != self.num_cities() {
            return Err(XbarError::InvalidDistanceMatrix {
                reason: format!(
                    "remap requires a {}-city matrix but got {} cities",
                    self.num_cities(),
                    distances.n()
                ),
            });
        }
        self.weights.requantize(distances)?;
        self.array.program_weights(&self.weights)?;
        self.counts = MacroOpCounts::default();
        Ok(())
    }

    /// Number of cities of the sub-problem mapped onto this macro.
    pub fn num_cities(&self) -> usize {
        self.array.num_rows()
    }

    /// The macro configuration.
    pub fn config(&self) -> &MacroConfig {
        &self.config
    }

    /// Read-only access to the underlying crossbar array.
    pub fn array(&self) -> &CrossbarArray {
        &self.array
    }

    /// Accumulated operation counts.
    pub fn op_counts(&self) -> MacroOpCounts {
        self.counts
    }

    /// Writes an initial visiting order (`assignment[order] = city`) into the spin
    /// storage.
    ///
    /// # Errors
    ///
    /// Returns an error if `assignment` is not a permutation of the macro's cities.
    pub fn initialize_order(&mut self, assignment: &[usize]) -> Result<(), XbarError> {
        self.array.write_assignment(assignment)
    }

    /// Reads the current visiting order (`result[order] = city`) out of the spin storage.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::CorruptSpinStorage`] if the spin storage does not encode a
    /// valid permutation.
    pub fn read_solution(&self) -> Result<Vec<usize>, XbarError> {
        self.array.read_assignment()
    }

    /// Like [`read_solution`](Self::read_solution), but writes into a caller-provided
    /// buffer (cleared and refilled) instead of allocating.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`read_solution`](Self::read_solution).
    pub fn read_solution_into(&self, out: &mut Vec<usize>) -> Result<(), XbarError> {
        self.array.read_assignment_into(out)
    }

    /// City currently assigned to `order`.
    ///
    /// # Errors
    ///
    /// Returns an error if the spin storage is corrupt or `order` is out of range.
    pub fn city_at_order(&self, order: usize) -> Result<usize, XbarError> {
        if order >= self.num_cities() {
            return Err(XbarError::IndexOutOfRange {
                kind: "order",
                index: order,
                len: self.num_cities(),
            });
        }
        Ok(self.read_solution()?[order])
    }

    /// Executes one full optimisation step for visiting position `order` at write current
    /// `i_write`, following Section III-C1–C5:
    ///
    /// 1. **Superpose** the spin-storage columns of the previous and next orders and
    ///    binarise the row currents into the D-latch.
    /// 2. **Optimize**: feed the latched vector back into the weight partitions and read
    ///    the per-city currents scaled by bit significance (Eq. 5).
    /// 3. Gate the currents with the **stochastic mask** generated at `i_write`.
    /// 4. Pick the winning city with the **ArgMax** WTA circuit.
    /// 5. **Update** the spin storage: the winner moves to `order`; to keep the stored
    ///    state a valid permutation, the displaced city takes the winner's former slot
    ///    (a swap).
    ///
    /// Returns the city now assigned to `order`.
    ///
    /// # Errors
    ///
    /// Returns an error if `order` is out of range, the write current is outside the
    /// stochastic window, or the spin storage is corrupt.
    pub fn optimize_order<R: Rng + ?Sized>(
        &mut self,
        order: usize,
        i_write: WriteCurrent,
        rng: &mut R,
    ) -> Result<usize, XbarError> {
        self.optimize_order_constrained(order, i_write, &[], rng)
    }

    /// Like [`optimize_order`](Self::optimize_order), but additionally suppresses
    /// `forbidden_cities` from the candidate set. The hierarchical solver uses this to
    /// keep the fixed first/last cities of a sub-problem (Section IV-2) pinned to their
    /// endpoints while interior orders are optimised.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`optimize_order`](Self::optimize_order).
    pub fn optimize_order_constrained<R: Rng + ?Sized>(
        &mut self,
        order: usize,
        i_write: WriteCurrent,
        forbidden_cities: &[usize],
        rng: &mut R,
    ) -> Result<usize, XbarError> {
        let n = self.num_cities();
        if order >= n {
            return Err(XbarError::IndexOutOfRange {
                kind: "order",
                index: order,
                len: n,
            });
        }
        self.array.read_assignment_into(&mut self.assignment_buf)?;
        let prev_order = (order + n - 1) % n;
        let next_order = (order + 1) % n;

        // Phase 1: superposition of the neighbouring visiting vectors.
        self.array
            .superpose_orders_into(&[prev_order, next_order], &mut self.row_buf)?;
        self.comparator
            .compare_into(&self.row_buf, &mut self.binary_buf);
        self.latch.store(&self.binary_buf);
        self.counts.superpose_ops += 1;

        // Phase 2: distance MAC through the weight partitions.
        self.array
            .weighted_column_currents_into(self.latch.read(), &mut self.city_buf);
        self.counts.optimize_ops += 1;

        // A city cannot be its own neighbour: suppress the cities already occupying the
        // neighbouring orders so the winner is a genuine intermediate stop.
        self.city_buf[self.assignment_buf[prev_order]] = 0.0;
        if next_order != prev_order {
            self.city_buf[self.assignment_buf[next_order]] = 0.0;
        }
        // Suppress explicitly forbidden cities (e.g. fixed sub-problem endpoints).
        for &city in forbidden_cities {
            if city < n {
                self.city_buf[city] = 0.0;
            }
        }

        // Phase 3: stochastic gating.
        self.mask_circuit
            .gate_into(&self.city_buf, i_write, rng, &mut self.gated_buf)?;

        // Phase 4: winner-take-all. If the mask suppressed every admissible column fall
        // back to the ungated currents (the circuit's NAND fallback already guarantees a
        // non-empty mask, but the neighbour suppression above can still zero everything
        // for tiny sub-problems).
        let winner = match self.argmax.winner(&self.gated_buf, rng) {
            Some(city) => city,
            None => match self.argmax.winner(&self.city_buf, rng) {
                Some(city) => city,
                None => self.assignment_buf[order],
            },
        };

        // Phase 5: spin-storage update with permutation-preserving swap.
        let incumbent = self.assignment_buf[order];
        if winner != incumbent {
            let winner_old_order = self
                .assignment_buf
                .iter()
                .position(|&c| c == winner)
                .expect("winner must currently occupy some order");
            self.array.reset_order_column(order)?;
            self.array.write_spin(winner, order, true)?;
            self.array.reset_order_column(winner_old_order)?;
            self.array.write_spin(incumbent, winner_old_order, true)?;
        }
        self.counts.update_ops += 1;
        self.counts.order_steps += 1;
        Ok(winner)
    }

    /// Expected fraction of columns passed by the stochastic mask at `i_write`.
    pub fn expected_mask_pass_fraction(&self, i_write: WriteCurrent) -> f64 {
        self.mask_circuit.expected_pass_fraction(i_write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Four cities on a line: 0 -- 1 -- 2 -- 3. Optimal open path visits them in order.
    fn line_distances() -> DistanceMatrix {
        let coords = [0.0f64, 1.0, 2.0, 3.0];
        DistanceMatrix::from_fn(4, |i, j| (coords[i] - coords[j]).abs())
    }

    fn tour_length(distances: &DistanceMatrix, order: &[usize]) -> f64 {
        let n = order.len();
        (0..n)
            .map(|i| distances.get(order[i], order[(i + 1) % n]))
            .sum()
    }

    #[test]
    fn construction_respects_capacity() {
        let d = line_distances();
        let config = MacroConfig::new(4).with_capacity(3);
        assert!(matches!(
            IsingMacro::new(&d, config),
            Err(XbarError::ProblemTooLarge { .. })
        ));
    }

    #[test]
    fn geometry_matches_problem() {
        let d = line_distances();
        let m = IsingMacro::new(&d, MacroConfig::new(3)).unwrap();
        assert_eq!(m.num_cities(), 4);
        assert_eq!(m.array().num_columns(), 4 * 4);
    }

    #[test]
    fn initialize_and_read_round_trip() {
        let d = line_distances();
        let mut m = IsingMacro::new(&d, MacroConfig::new(4)).unwrap();
        m.initialize_order(&[3, 1, 0, 2]).unwrap();
        assert_eq!(m.read_solution().unwrap(), vec![3, 1, 0, 2]);
        assert_eq!(m.city_at_order(1).unwrap(), 1);
    }

    #[test]
    fn optimize_order_keeps_permutation_valid() {
        let d = line_distances();
        let mut m = IsingMacro::new(&d, MacroConfig::new(4)).unwrap();
        m.initialize_order(&[2, 0, 3, 1]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        for step in 0..20 {
            let order = step % 4;
            m.optimize_order(order, WriteCurrent::from_micro_amps(400.0), &mut rng)
                .unwrap();
            let solution = m.read_solution().unwrap();
            let mut sorted = solution.clone();
            sorted.sort_unstable();
            assert_eq!(
                sorted,
                vec![0, 1, 2, 3],
                "spin storage must stay a permutation"
            );
        }
    }

    /// Six cities on a line: 0 -- 1 -- ... -- 5. The optimal cycle sweeps up and back
    /// (length 10).
    fn long_line_distances() -> DistanceMatrix {
        DistanceMatrix::from_fn(6, |i, j| (i as f64 - j as f64).abs())
    }

    #[test]
    fn annealing_improves_bad_initial_tour() {
        // The anneal is stochastic: a single unlucky RNG stream can end where it
        // started. Requiring an improvement within a handful of seeds keeps the test
        // meaningful without pinning it to one RNG vendor's exact bit stream.
        let d = long_line_distances();
        let bad = vec![0, 3, 1, 4, 2, 5];
        let start_len = tour_length(&d, &bad);
        let mut best_len = f64::INFINITY;
        for seed in 0..5u64 {
            let config = MacroConfig::new(4).with_ideal_devices();
            let mut m = IsingMacro::new(&d, config).unwrap();
            m.initialize_order(&bad).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            // Sweep all orders several times while reducing the stochasticity.
            for &ua in &[
                420.0, 410.0, 400.0, 390.0, 380.0, 370.0, 360.0, 355.0, 354.0, 353.5,
            ] {
                for order in 0..6 {
                    m.optimize_order(order, WriteCurrent::from_micro_amps(ua), &mut rng)
                        .unwrap();
                }
            }
            let end = m.read_solution().unwrap();
            // Still a valid permutation.
            let mut sorted = end.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
            best_len = best_len.min(tour_length(&d, &end));
            if best_len < start_len {
                break;
            }
        }
        assert!(
            best_len < start_len,
            "annealing must improve the scrambled line tour: {start_len} -> {best_len}"
        );
    }

    #[test]
    fn op_counts_accumulate() {
        let d = line_distances();
        let mut m = IsingMacro::new(&d, MacroConfig::new(4)).unwrap();
        m.initialize_order(&[0, 1, 2, 3]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for order in 0..4 {
            m.optimize_order(order, WriteCurrent::from_micro_amps(420.0), &mut rng)
                .unwrap();
        }
        let counts = m.op_counts();
        assert_eq!(counts.order_steps, 4);
        assert_eq!(counts.superpose_ops, 4);
        assert_eq!(counts.optimize_ops, 4);
        assert_eq!(counts.update_ops, 4);
        assert_eq!(counts.iterations(), 4);
    }

    #[test]
    fn out_of_range_order_is_rejected() {
        let d = line_distances();
        let mut m = IsingMacro::new(&d, MacroConfig::new(4)).unwrap();
        m.initialize_order(&[0, 1, 2, 3]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(m
            .optimize_order(9, WriteCurrent::from_micro_amps(420.0), &mut rng)
            .is_err());
    }

    /// A remapped macro must behave bit-identically to a freshly constructed one: the
    /// conductance variation pattern depends only on the geometry, the weights are fully
    /// re-programmed, and the counters restart from zero.
    #[test]
    fn remap_is_equivalent_to_fresh_construction() {
        let d1 = line_distances();
        let d2 = DistanceMatrix::from_fn(4, |i, j| ((i * i) as f64 - (j * j) as f64).abs());
        let config = MacroConfig::new(4);

        let mut fresh = IsingMacro::new(&d2, config.clone()).unwrap();
        let mut reused = IsingMacro::new(&d1, config).unwrap();
        // Drive the reused macro through some work first so its state is dirty.
        reused.initialize_order(&[3, 2, 1, 0]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for order in 0..4 {
            reused
                .optimize_order(order, WriteCurrent::from_micro_amps(400.0), &mut rng)
                .unwrap();
        }
        reused.remap(&d2).unwrap();
        assert_eq!(reused.op_counts(), MacroOpCounts::default());

        fresh.initialize_order(&[0, 1, 2, 3]).unwrap();
        reused.initialize_order(&[0, 1, 2, 3]).unwrap();
        let mut rng_a = ChaCha8Rng::seed_from_u64(42);
        let mut rng_b = ChaCha8Rng::seed_from_u64(42);
        for step in 0..40 {
            let order = step % 4;
            let a = fresh
                .optimize_order(order, WriteCurrent::from_micro_amps(390.0), &mut rng_a)
                .unwrap();
            let b = reused
                .optimize_order(order, WriteCurrent::from_micro_amps(390.0), &mut rng_b)
                .unwrap();
            assert_eq!(a, b, "step {step} diverged after remap");
        }
        assert_eq!(
            fresh.read_solution().unwrap(),
            reused.read_solution().unwrap()
        );
    }

    #[test]
    fn remap_rejects_size_changes() {
        let d = line_distances();
        let mut m = IsingMacro::new(&d, MacroConfig::new(4)).unwrap();
        let small = DistanceMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        assert!(matches!(
            m.remap(&small),
            Err(XbarError::InvalidDistanceMatrix { .. })
        ));
    }

    #[test]
    fn read_solution_into_reuses_buffer() {
        let d = line_distances();
        let mut m = IsingMacro::new(&d, MacroConfig::new(4)).unwrap();
        m.initialize_order(&[1, 0, 3, 2]).unwrap();
        let mut out = Vec::new();
        m.read_solution_into(&mut out).unwrap();
        assert_eq!(out, vec![1, 0, 3, 2]);
        m.initialize_order(&[0, 1, 2, 3]).unwrap();
        m.read_solution_into(&mut out).unwrap();
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn mask_pass_fraction_matches_device_curve() {
        let d = line_distances();
        let m = IsingMacro::new(&d, MacroConfig::new(4)).unwrap();
        let f = m.expected_mask_pass_fraction(WriteCurrent::from_micro_amps(420.0));
        assert!((f - 0.2).abs() < 0.01);
    }
}
