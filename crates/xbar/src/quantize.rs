//! Distance-to-conductance quantisation (Eq. 4 of the paper).
//!
//! The paper reformulates the inter-city distance `D_{A-B}` into a crossbar weight
//!
//! ```text
//! W_D(A, B) = (D_min / D_{A-B}) · B_precision
//! ```
//!
//! so that *shorter* distances map to *larger* conductances — the column with the largest
//! current is then the nearest admissible city. `B_precision` is the largest integer
//! representable at the chosen bit precision (`2^B − 1`). The integer weight is
//! bit-sliced: partition `b` of the crossbar stores bit `b` of every weight, and the
//! partition's column current is scaled by `2^b` by the current-mirror bank.

use taxi_dist::DistanceMatrix;

use crate::XbarError;

/// Weight bit precision of the crossbar (`B` in the paper; 2–4 bits are evaluated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitPrecision(u8);

impl BitPrecision {
    /// 2-bit precision (most energy-efficient configuration in the paper).
    pub const TWO: BitPrecision = BitPrecision(2);
    /// 3-bit precision.
    pub const THREE: BitPrecision = BitPrecision(3);
    /// 4-bit precision (highest quality configuration evaluated in the paper).
    pub const FOUR: BitPrecision = BitPrecision(4);

    /// Creates a bit precision, validating it is within the supported range (1–8).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::UnsupportedBitPrecision`] outside `1..=8`.
    pub fn new(bits: u8) -> Result<Self, XbarError> {
        if (1..=8).contains(&bits) {
            Ok(Self(bits))
        } else {
            Err(XbarError::UnsupportedBitPrecision { bits })
        }
    }

    /// Number of weight bits.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Number of crossbar partitions (`B` weight partitions plus one spin-storage
    /// partition).
    pub fn partitions(self) -> usize {
        usize::from(self.0) + 1
    }

    /// Largest representable integer weight (`2^B − 1`).
    pub fn max_level(self) -> u32 {
        (1u32 << self.0) - 1
    }
}

impl Default for BitPrecision {
    fn default() -> Self {
        BitPrecision::FOUR
    }
}

impl std::fmt::Display for BitPrecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-bit", self.0)
    }
}

/// The quantised distance-weight matrix of one sub-problem.
///
/// # Example
///
/// ```
/// use taxi_dist::DistanceMatrix;
/// use taxi_xbar::{BitPrecision, QuantizedDistances};
///
/// let d = DistanceMatrix::from_rows(&[
///     vec![0.0, 1.0, 2.0],
///     vec![1.0, 0.0, 4.0],
///     vec![2.0, 4.0, 0.0],
/// ])
/// .expect("square matrix");
/// let q = QuantizedDistances::from_distances(&d, BitPrecision::FOUR)?;
/// // The shortest edge gets the maximum weight, the 4× longer edge roughly a quarter.
/// assert_eq!(q.weight(0, 1), 15);
/// assert!(q.weight(1, 2) <= 4);
/// # Ok::<(), taxi_xbar::XbarError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedDistances {
    n: usize,
    precision: BitPrecision,
    /// Row-major `n × n` integer weights in `0..=2^B-1`; diagonal entries are zero.
    weights: Vec<u32>,
}

impl QuantizedDistances {
    /// Quantises a square distance matrix following Eq. 4.
    ///
    /// Diagonal entries and non-finite/∞ distances map to weight 0 (high-resistance,
    /// "never choose"). The minimum is taken over strictly positive off-diagonal
    /// distances.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidDistanceMatrix`] if the matrix is empty or contains
    /// negative distances.
    pub fn from_distances(
        distances: &DistanceMatrix,
        precision: BitPrecision,
    ) -> Result<Self, XbarError> {
        let mut quantized = Self {
            n: 0,
            precision,
            weights: Vec::new(),
        };
        quantized.requantize(distances)?;
        Ok(quantized)
    }

    /// Re-quantises a new distance matrix in place, reusing the weight buffer.
    ///
    /// After the buffer has grown to the largest sub-problem seen, re-quantising
    /// performs no heap allocation — the reuse primitive behind
    /// [`IsingMacro::remap`](crate::IsingMacro::remap).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`from_distances`](Self::from_distances); on error the
    /// previous contents are unspecified.
    pub fn requantize(&mut self, distances: &DistanceMatrix) -> Result<(), XbarError> {
        let n = distances.n();
        if n == 0 {
            return Err(XbarError::InvalidDistanceMatrix {
                reason: "matrix is empty".to_string(),
            });
        }
        let mut d_min = f64::INFINITY;
        for (i, row) in distances.rows().enumerate() {
            for (j, &d) in row.iter().enumerate() {
                if i == j {
                    continue;
                }
                if d < 0.0 {
                    return Err(XbarError::InvalidDistanceMatrix {
                        reason: format!("negative distance at ({i}, {j})"),
                    });
                }
                if d.is_finite() && d > 0.0 {
                    d_min = d_min.min(d);
                }
            }
        }
        if !d_min.is_finite() {
            // All off-diagonal distances are zero or infinite. Degenerate but legal for
            // n == 1 or identical points; use 1.0 so weights become max/0 consistently.
            d_min = 1.0;
        }
        let max_level = f64::from(self.precision.max_level());
        self.n = n;
        self.weights.clear();
        self.weights.resize(n * n, 0);
        for (i, row) in distances.rows().enumerate() {
            for (j, &d) in row.iter().enumerate() {
                if i == j || !d.is_finite() {
                    continue;
                }
                let w = if d <= 0.0 {
                    self.precision.max_level()
                } else {
                    ((d_min / d) * max_level).round().min(max_level) as u32
                };
                self.weights[i * n + j] = w;
            }
        }
        Ok(())
    }

    /// Number of cities in the sub-problem.
    pub fn num_cities(&self) -> usize {
        self.n
    }

    /// The bit precision used for quantisation.
    pub fn precision(&self) -> BitPrecision {
        self.precision
    }

    /// Integer weight between cities `from` and `to` (0 when `from == to`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn weight(&self, from: usize, to: usize) -> u32 {
        assert!(from < self.n && to < self.n, "city index out of range");
        self.weights[from * self.n + to]
    }

    /// Bit `bit` (0 = LSB) of the weight between `from` and `to`.
    pub fn weight_bit(&self, from: usize, to: usize, bit: u8) -> bool {
        (self.weight(from, to) >> bit) & 1 == 1
    }

    /// Iterator over all `(from, to, weight)` triples with `from != to`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, u32)> + '_ {
        (0..self.n).flat_map(move |i| {
            (0..self.n)
                .filter(move |&j| j != i)
                .map(move |j| (i, j, self.weights[i * self.n + j]))
        })
    }

    /// Reconstructs the "relative closeness" value encoded by the weights, i.e.
    /// `weight / max_level` — useful for quality analyses of quantisation error.
    pub fn normalized_weight(&self, from: usize, to: usize) -> f64 {
        f64::from(self.weight(from, to)) / f64::from(self.precision.max_level())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DistanceMatrix {
        DistanceMatrix::from_rows(&[
            vec![0.0, 1.0, 2.0, 8.0],
            vec![1.0, 0.0, 4.0, 2.0],
            vec![2.0, 4.0, 0.0, 1.0],
            vec![8.0, 2.0, 1.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn bit_precision_bounds() {
        assert!(BitPrecision::new(0).is_err());
        assert!(BitPrecision::new(9).is_err());
        assert_eq!(BitPrecision::new(4).unwrap(), BitPrecision::FOUR);
        assert_eq!(BitPrecision::FOUR.max_level(), 15);
        assert_eq!(BitPrecision::TWO.max_level(), 3);
        assert_eq!(BitPrecision::THREE.partitions(), 4);
    }

    #[test]
    fn shortest_edge_gets_max_weight() {
        let q = QuantizedDistances::from_distances(&sample(), BitPrecision::FOUR).unwrap();
        assert_eq!(q.weight(0, 1), 15);
        assert_eq!(q.weight(2, 3), 15);
    }

    #[test]
    fn weights_are_inverse_to_distance() {
        let q = QuantizedDistances::from_distances(&sample(), BitPrecision::FOUR).unwrap();
        // d=2 is twice d_min=1, so weight ≈ 15/2.
        assert!((f64::from(q.weight(0, 2)) - 7.5).abs() <= 0.5);
        // d=8 → weight ≈ 15/8 ≈ 2.
        assert_eq!(q.weight(0, 3), 2);
    }

    #[test]
    fn diagonal_is_zero() {
        let q = QuantizedDistances::from_distances(&sample(), BitPrecision::FOUR).unwrap();
        for i in 0..4 {
            assert_eq!(q.weight(i, i), 0);
        }
    }

    #[test]
    fn infinite_distance_maps_to_zero_weight() {
        let mut d = sample();
        d.set(0, 3, f64::INFINITY);
        let q = QuantizedDistances::from_distances(&d, BitPrecision::FOUR).unwrap();
        assert_eq!(q.weight(0, 3), 0);
    }

    #[test]
    fn negative_distance_is_rejected() {
        let mut d = sample();
        d.set(1, 2, -3.0);
        assert!(QuantizedDistances::from_distances(&d, BitPrecision::FOUR).is_err());
    }

    #[test]
    fn empty_matrix_is_rejected() {
        assert!(matches!(
            QuantizedDistances::from_distances(&DistanceMatrix::default(), BitPrecision::FOUR),
            Err(XbarError::InvalidDistanceMatrix { .. })
        ));
    }

    #[test]
    fn bit_slicing_reconstructs_weight() {
        let q = QuantizedDistances::from_distances(&sample(), BitPrecision::THREE).unwrap();
        for (i, j, w) in q.iter() {
            let mut reconstructed = 0u32;
            for b in 0..3 {
                if q.weight_bit(i, j, b) {
                    reconstructed |= 1 << b;
                }
            }
            assert_eq!(reconstructed, w);
        }
    }

    #[test]
    fn lower_precision_coarsens_weights() {
        let q4 = QuantizedDistances::from_distances(&sample(), BitPrecision::FOUR).unwrap();
        let q2 = QuantizedDistances::from_distances(&sample(), BitPrecision::TWO).unwrap();
        // The ordering of weights must be preserved even if resolution is lost.
        assert!(q2.weight(0, 1) >= q2.weight(0, 2));
        assert!(q4.weight(0, 1) >= q4.weight(0, 2));
        assert!(q2.weight(0, 1) <= 3);
    }

    #[test]
    fn normalized_weight_is_unit_range() {
        let q = QuantizedDistances::from_distances(&sample(), BitPrecision::FOUR).unwrap();
        for (i, j, _) in q.iter() {
            let nw = q.normalized_weight(i, j);
            assert!((0.0..=1.0).contains(&nw));
        }
    }
}
