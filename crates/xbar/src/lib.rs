//! Crossbar-array Ising-macro substrate for the TAXI reproduction.
//!
//! This crate models the hardware macro of Section III of the paper: an `N × N·(B+1)`
//! SOT-MRAM crossbar whose first `B` partitions hold the bit-sliced distance weights
//! `W_D` (Eq. 4) and whose last partition is the **spin storage** holding the current
//! visiting order, together with the peripheral circuits that make it an autonomous TSP
//! sub-solver:
//!
//! * a **current comparator** + **D-latch** capturing the superposed visiting vector,
//! * **current mirrors** scaling each bit partition by its significance,
//! * the **stochastic mask circuit** driven by SOT-MRAM stochastic switching, and
//! * the Lazzaro-style winner-take-all **ArgMax** circuit that picks the city with the
//!   largest column current.
//!
//! [`IsingMacro`] wires these together and exposes the per-iteration operations
//! (superpose → optimize → update) that the algorithm layer in `taxi-ising` drives.
//! [`energy::MacroCircuitModel`] provides the circuit-level latency/power/energy numbers
//! (Table I of the paper) consumed by the architecture simulator.
//!
//! # Example
//!
//! ```
//! use taxi_dist::DistanceMatrix;
//! use taxi_xbar::{IsingMacro, MacroConfig};
//!
//! // A 4-city sub-problem at 4-bit weight precision.
//! let distances = DistanceMatrix::from_rows(&[
//!     vec![0.0, 2.0, 9.0, 10.0],
//!     vec![2.0, 0.0, 6.0, 4.0],
//!     vec![9.0, 6.0, 0.0, 3.0],
//!     vec![10.0, 4.0, 3.0, 0.0],
//! ]).expect("square matrix");
//! let config = MacroConfig::new(4);
//! let mut macro_ = IsingMacro::new(&distances, config)?;
//! assert_eq!(macro_.num_cities(), 4);
//! assert_eq!(macro_.array().num_columns(), 4 * 5); // N * (B + 1)
//! # Ok::<(), taxi_xbar::XbarError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod array;
pub mod energy;
pub mod error;
pub mod ising_macro;
pub mod periphery;
pub mod quantize;

pub use area::AreaModel;
pub use array::{ArrayGeometry, CrossbarArray};
pub use energy::{CircuitReport, MacroCircuitModel, PhaseLatency};
pub use error::XbarError;
pub use ising_macro::{IsingMacro, MacroConfig, MacroOpCounts};
pub use periphery::{
    ArgMaxCircuit, CurrentComparator, CurrentMirrorBank, DLatch, StochasticMaskCircuit,
};
pub use quantize::{BitPrecision, QuantizedDistances};
