//! Error type for device-level operations.

use std::error::Error;
use std::fmt;

use crate::WriteCurrent;

/// Errors returned by device-level operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// The requested write current lies outside the stochastic operating window.
    CurrentOutsideStochasticWindow {
        /// The offending current.
        current: WriteCurrent,
        /// Lower bound of the stochastic window.
        min: WriteCurrent,
        /// Upper bound of the stochastic window.
        max: WriteCurrent,
    },
    /// The requested write current is below the deterministic switching threshold.
    CurrentBelowDeterministicThreshold {
        /// The offending current.
        current: WriteCurrent,
        /// Minimum current for deterministic switching.
        threshold: WriteCurrent,
    },
    /// A device parameter was invalid (non-positive resistance, inverted window, ...).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// A requested vector length was zero.
    EmptyVector,
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::CurrentOutsideStochasticWindow { current, min, max } => write!(
                f,
                "write current {current} outside stochastic window [{min}, {max}]"
            ),
            DeviceError::CurrentBelowDeterministicThreshold { current, threshold } => write!(
                f,
                "write current {current} below deterministic threshold {threshold}"
            ),
            DeviceError::InvalidParameter { name, reason } => {
                write!(f, "invalid device parameter `{name}`: {reason}")
            }
            DeviceError::EmptyVector => write!(f, "requested stochastic vector of length zero"),
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let err = DeviceError::EmptyVector;
        let text = err.to_string();
        assert!(!text.is_empty());
        assert!(text.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
    }

    #[test]
    fn window_error_mentions_bounds() {
        let err = DeviceError::CurrentOutsideStochasticWindow {
            current: WriteCurrent::from_micro_amps(700.0),
            min: WriteCurrent::from_micro_amps(300.0),
            max: WriteCurrent::from_micro_amps(650.0),
        };
        let text = err.to_string();
        assert!(text.contains("700.000"));
        assert!(text.contains("650.000"));
    }
}
