//! Strongly-typed write-current quantity.
//!
//! The annealing schedule in the paper is expressed directly in write current
//! (initialised at 420 µA, decreased by 50 nA per iteration, stopping at 353 µA), so a
//! dedicated newtype keeps units unambiguous throughout the stack.

use std::fmt;
use std::ops::{Add, Sub};

/// A write current applied to the heavy-metal line of a SOT-MRAM device.
///
/// Internally stored in amperes. Construction helpers exist for the unit scales the paper
/// quotes (µA and nA).
///
/// # Example
///
/// ```
/// use taxi_device::WriteCurrent;
///
/// let start = WriteCurrent::from_micro_amps(420.0);
/// let step = WriteCurrent::from_nano_amps(50.0);
/// let after_one_iteration = start - step;
/// assert!((after_one_iteration.as_micro_amps() - 419.95).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct WriteCurrent {
    amps: f64,
}

impl WriteCurrent {
    /// Zero current.
    pub const ZERO: WriteCurrent = WriteCurrent { amps: 0.0 };

    /// Creates a current from a value in amperes.
    pub fn from_amps(amps: f64) -> Self {
        Self { amps }
    }

    /// Creates a current from a value in microamperes.
    pub fn from_micro_amps(micro_amps: f64) -> Self {
        Self {
            amps: micro_amps * 1e-6,
        }
    }

    /// Creates a current from a value in nanoamperes.
    pub fn from_nano_amps(nano_amps: f64) -> Self {
        Self {
            amps: nano_amps * 1e-9,
        }
    }

    /// Returns the current in amperes.
    pub fn as_amps(self) -> f64 {
        self.amps
    }

    /// Returns the current in microamperes.
    pub fn as_micro_amps(self) -> f64 {
        self.amps * 1e6
    }

    /// Returns the current in nanoamperes.
    pub fn as_nano_amps(self) -> f64 {
        self.amps * 1e9
    }

    /// Returns the magnitude of the current (always non-negative).
    pub fn abs(self) -> Self {
        Self {
            amps: self.amps.abs(),
        }
    }

    /// Clamps the current between `min` and `max`.
    pub fn clamp(self, min: WriteCurrent, max: WriteCurrent) -> Self {
        Self {
            amps: self.amps.clamp(min.amps, max.amps),
        }
    }

    /// Returns `true` if this current is a finite number (not NaN or infinite).
    pub fn is_finite(self) -> bool {
        self.amps.is_finite()
    }
}

impl Add for WriteCurrent {
    type Output = WriteCurrent;

    fn add(self, rhs: WriteCurrent) -> WriteCurrent {
        WriteCurrent {
            amps: self.amps + rhs.amps,
        }
    }
}

impl Sub for WriteCurrent {
    type Output = WriteCurrent;

    fn sub(self, rhs: WriteCurrent) -> WriteCurrent {
        WriteCurrent {
            amps: self.amps - rhs.amps,
        }
    }
}

impl fmt::Display for WriteCurrent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} µA", self.as_micro_amps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_amp_round_trip() {
        let i = WriteCurrent::from_micro_amps(420.0);
        assert!((i.as_micro_amps() - 420.0).abs() < 1e-12);
        assert!((i.as_amps() - 420e-6).abs() < 1e-15);
    }

    #[test]
    fn nano_amp_round_trip() {
        let i = WriteCurrent::from_nano_amps(50.0);
        assert!((i.as_nano_amps() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_matches_paper_schedule_step() {
        let start = WriteCurrent::from_micro_amps(420.0);
        let step = WriteCurrent::from_nano_amps(50.0);
        let stop = WriteCurrent::from_micro_amps(353.0);
        let iterations = ((start - stop).as_amps() / step.as_amps()).round() as u64;
        assert_eq!(iterations, 1340);
    }

    #[test]
    fn clamp_limits_range() {
        let lo = WriteCurrent::from_micro_amps(300.0);
        let hi = WriteCurrent::from_micro_amps(650.0);
        assert_eq!(WriteCurrent::from_micro_amps(700.0).clamp(lo, hi), hi);
        assert_eq!(WriteCurrent::from_micro_amps(100.0).clamp(lo, hi), lo);
    }

    #[test]
    fn display_uses_micro_amps() {
        let i = WriteCurrent::from_micro_amps(353.0);
        assert_eq!(format!("{i}"), "353.000 µA");
    }

    #[test]
    fn ordering_follows_magnitude() {
        assert!(WriteCurrent::from_micro_amps(353.0) < WriteCurrent::from_micro_amps(420.0));
    }
}
