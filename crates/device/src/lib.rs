//! SOT-MRAM device substrate for the TAXI reproduction.
//!
//! This crate provides behavioural models of the Spin-Orbit-Torque MRAM devices that the
//! paper uses in two roles:
//!
//! 1. **Deterministic memory cells** inside the crossbar array, storing the bit-sliced
//!    distance matrix `W_D` and the spin-storage partition. These are operated above the
//!    deterministic write threshold (> 650 µA in the paper) and read as one of two
//!    resistance states (`R_P` parallel, `R_AP` anti-parallel).
//! 2. **Stochastic bit sources** for the annealing mask. Driven in the stochastic regime
//!    (300 µA – 650 µA), the switching probability follows the sigmoidal `P_sw(I_write)`
//!    characteristic of the device (Fig. 4c of the paper), anchored at
//!    1 % @ 353 µA and 20 % @ 420 µA.
//!
//! The crate deliberately models device *behaviour*, not micromagnetics: everything the
//! higher layers (crossbar, Ising macro, architecture simulator) need is the resistance in
//! each state, the switching probability as a function of write current, and energy/latency
//! per operation.
//!
//! # Example
//!
//! ```
//! use taxi_device::{DeviceParams, SotMram, WriteCurrent, MagState};
//! use rand::SeedableRng;
//!
//! let params = DeviceParams::default();
//! let mut device = SotMram::new(params);
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//!
//! // In the stochastic regime the device flips with probability P_sw(I).
//! let i = WriteCurrent::from_micro_amps(420.0);
//! let p = device.params().switching_probability(i);
//! assert!(p > 0.15 && p < 0.25);
//!
//! // In the deterministic regime a write always succeeds.
//! device.write_deterministic(MagState::Parallel);
//! assert_eq!(device.state(), MagState::Parallel);
//! # let _ = device.try_stochastic_flip(i, &mut rng);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod current;
pub mod error;
pub mod params;
pub mod rng;
pub mod rng_comparison;
pub mod sot_mram;
pub mod switching;

pub use current::WriteCurrent;
pub use error::DeviceError;
pub use params::DeviceParams;
pub use rng::{StochasticBitSource, StochasticVectorGenerator};
pub use rng_comparison::{RngProfile, RngTechnology};
pub use sot_mram::{MagState, SotMram};
pub use switching::SwitchingCurve;
