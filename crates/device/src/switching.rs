//! Sigmoidal switching-probability model.
//!
//! The paper (Fig. 4c, following the IEDM'22 device of ref. \[19\]) controls the expected
//! number of ones in the stochastic mask by setting the write current, exploiting the
//! native sigmoidal switching-probability vs. write-current characteristic of the SOT
//! device. Two operating points are quoted explicitly:
//!
//! * 20 % switching probability at 420 µA (annealing start), and
//! * 1 % switching probability at 353 µA (annealing stop),
//!
//! with deterministic switching above 650 µA and the stochastic window spanning roughly
//! 300 µA – 650 µA. [`SwitchingCurve`] is a logistic curve fitted through those anchor
//! points; by construction it also satisfies the deterministic-regime requirement
//! (P > 0.9999 above 650 µA).

use crate::WriteCurrent;

/// A logistic (sigmoidal) switching-probability curve `P_sw(I_write)`.
///
/// `P_sw(I) = 1 / (1 + exp(-(I - i_half) / slope))`.
///
/// # Example
///
/// ```
/// use taxi_device::{SwitchingCurve, WriteCurrent};
///
/// let curve = SwitchingCurve::paper_fit();
/// let p_start = curve.probability(WriteCurrent::from_micro_amps(420.0));
/// let p_stop = curve.probability(WriteCurrent::from_micro_amps(353.0));
/// assert!((p_start - 0.20).abs() < 0.01);
/// assert!((p_stop - 0.01).abs() < 0.005);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchingCurve {
    /// Current at which the switching probability is exactly 0.5, in amperes.
    i_half_amps: f64,
    /// Logistic slope parameter, in amperes.
    slope_amps: f64,
}

impl SwitchingCurve {
    /// Builds a curve from the half-probability current and logistic slope.
    ///
    /// # Panics
    ///
    /// Panics if `slope` is not strictly positive or either quantity is not finite.
    pub fn new(i_half: WriteCurrent, slope: WriteCurrent) -> Self {
        assert!(
            slope.as_amps() > 0.0 && slope.is_finite() && i_half.is_finite(),
            "switching curve requires finite i_half and strictly positive slope"
        );
        Self {
            i_half_amps: i_half.as_amps(),
            slope_amps: slope.as_amps(),
        }
    }

    /// Fits a logistic curve through two `(current, probability)` anchor points.
    ///
    /// # Panics
    ///
    /// Panics if the probabilities are not strictly between 0 and 1 or if the two anchors
    /// coincide.
    pub fn from_anchor_points(
        (i_a, p_a): (WriteCurrent, f64),
        (i_b, p_b): (WriteCurrent, f64),
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&p_a) && p_a > 0.0 && (0.0..1.0).contains(&p_b) && p_b > 0.0,
            "anchor probabilities must lie strictly inside (0, 1)"
        );
        let la = logit(p_a);
        let lb = logit(p_b);
        assert!(
            (la - lb).abs() > f64::EPSILON && (i_a.as_amps() - i_b.as_amps()).abs() > 0.0,
            "anchor points must be distinct"
        );
        // logit(p) = (I - i_half) / slope  =>  linear system in (i_half, slope).
        let slope = (i_a.as_amps() - i_b.as_amps()) / (la - lb);
        let i_half = i_a.as_amps() - la * slope;
        Self::new(
            WriteCurrent::from_amps(i_half),
            WriteCurrent::from_amps(slope),
        )
    }

    /// The curve used throughout the reproduction: fitted through the paper's quoted
    /// operating points (20 % @ 420 µA, 1 % @ 353 µA).
    pub fn paper_fit() -> Self {
        Self::from_anchor_points(
            (WriteCurrent::from_micro_amps(420.0), 0.20),
            (WriteCurrent::from_micro_amps(353.0), 0.01),
        )
    }

    /// Switching probability at the given write current, clamped to `[0, 1]`.
    pub fn probability(&self, current: WriteCurrent) -> f64 {
        let x = (current.as_amps() - self.i_half_amps) / self.slope_amps;
        1.0 / (1.0 + (-x).exp())
    }

    /// Inverse of [`probability`](Self::probability): the current that yields probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not strictly between 0 and 1.
    pub fn current_for_probability(&self, p: f64) -> WriteCurrent {
        assert!(
            p > 0.0 && p < 1.0,
            "probability must lie strictly inside (0, 1), got {p}"
        );
        WriteCurrent::from_amps(self.i_half_amps + logit(p) * self.slope_amps)
    }

    /// Current at which the curve crosses 50 % probability.
    pub fn i_half(&self) -> WriteCurrent {
        WriteCurrent::from_amps(self.i_half_amps)
    }

    /// Logistic slope parameter.
    pub fn slope(&self) -> WriteCurrent {
        WriteCurrent::from_amps(self.slope_amps)
    }
}

impl Default for SwitchingCurve {
    fn default() -> Self {
        Self::paper_fit()
    }
}

fn logit(p: f64) -> f64 {
    (p / (1.0 - p)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fit_hits_anchor_points() {
        let c = SwitchingCurve::paper_fit();
        assert!((c.probability(WriteCurrent::from_micro_amps(420.0)) - 0.20).abs() < 1e-9);
        assert!((c.probability(WriteCurrent::from_micro_amps(353.0)) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn deterministic_regime_is_essentially_certain() {
        let c = SwitchingCurve::paper_fit();
        assert!(c.probability(WriteCurrent::from_micro_amps(650.0)) > 0.999);
        assert!(c.probability(WriteCurrent::from_micro_amps(800.0)) > 0.9999);
    }

    #[test]
    fn low_currents_rarely_switch() {
        let c = SwitchingCurve::paper_fit();
        assert!(c.probability(WriteCurrent::from_micro_amps(300.0)) < 0.01);
        assert!(c.probability(WriteCurrent::ZERO) < 1e-6);
    }

    #[test]
    fn probability_is_monotonically_increasing() {
        let c = SwitchingCurve::paper_fit();
        let mut prev = 0.0;
        for ua in (300..=650).step_by(10) {
            let p = c.probability(WriteCurrent::from_micro_amps(ua as f64));
            assert!(p >= prev, "P_sw must be non-decreasing in I_write");
            prev = p;
        }
    }

    #[test]
    fn inverse_round_trips() {
        let c = SwitchingCurve::paper_fit();
        for &p in &[0.01, 0.05, 0.2, 0.5, 0.9] {
            let i = c.current_for_probability(p);
            assert!((c.probability(i) - p).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "strictly inside")]
    fn inverse_rejects_degenerate_probability() {
        SwitchingCurve::paper_fit().current_for_probability(1.0);
    }

    #[test]
    fn sigmoid_decays_faster_early_in_schedule() {
        // The paper argues the native sigmoidal shape gives a rapid decrease of
        // stochasticity early in the anneal and a slow decrease later. With a linear
        // current ramp from 420 µA to 353 µA, the probability drop in the first half of
        // the ramp must exceed the drop in the second half.
        let c = SwitchingCurve::paper_fit();
        let start = c.probability(WriteCurrent::from_micro_amps(420.0));
        let mid = c.probability(WriteCurrent::from_micro_amps(386.5));
        let stop = c.probability(WriteCurrent::from_micro_amps(353.0));
        assert!(start - mid > mid - stop);
    }
}
