//! Comparison of stochasticity sources (Section II-B of the paper).
//!
//! The paper motivates SOT-MRAM stochastic switching over the alternatives: CMOS true
//! random number generators are slower (< 2 400 Mb/s) and larger (> 375 µm²), low-barrier
//! MTJ RNGs need near-zero energy barriers and fast sense circuitry, and the intrinsic
//! noise of RRAM/FinFET crossbars becomes uncontrollable as the array grows. This module
//! captures those published figures in one place so analyses and examples can reproduce
//! the paper's argument quantitatively.

use crate::DeviceParams;

/// A class of random-number source considered by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RngTechnology {
    /// Fully-synthesised CMOS TRNG (the paper's ref. \[8\], 23 Mb/s, 23 pJ/bit).
    CmosSynthesized,
    /// All-digital high-performance CMOS TRNG (ref. \[9\], 2.4 Gb/s, 7 mW).
    CmosHighPerformance,
    /// Low-barrier MTJ / spin-dice style RNG (refs. \[15\]–\[18\]).
    LowBarrierMtj,
    /// SOT-MRAM stochastic switching as used by TAXI.
    SotMram,
}

/// Published (or modelled) characteristics of one RNG implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RngProfile {
    /// Technology class.
    pub technology: RngTechnology,
    /// Throughput per generator instance, in bits per second.
    pub throughput_bits_per_second: f64,
    /// Area per generator instance, in µm².
    pub area_um2: f64,
    /// Energy per generated bit, in joules.
    pub energy_per_bit_joules: f64,
}

impl RngProfile {
    /// The fully-synthesised CMOS TRNG of the paper's ref. \[8\] (23 Mb/s, 23 pJ/b,
    /// > 375 µm²).
    pub fn cmos_synthesized() -> Self {
        Self {
            technology: RngTechnology::CmosSynthesized,
            throughput_bits_per_second: 23e6,
            area_um2: 375.0,
            energy_per_bit_joules: 23e-12,
        }
    }

    /// The high-performance all-digital CMOS TRNG of ref. \[9\] (2.4 Gb/s at 7 mW,
    /// ≈ 2.9 pJ/b; area ≈ 4 000 µm² in 45 nm).
    pub fn cmos_high_performance() -> Self {
        Self {
            technology: RngTechnology::CmosHighPerformance,
            throughput_bits_per_second: 2.4e9,
            area_um2: 4_000.0,
            energy_per_bit_joules: 7e-3 / 2.4e9,
        }
    }

    /// A low-barrier MTJ RNG: very fast telegraphic switching (> 1 Gb/s) but requiring
    /// ≈ 0 kT barriers and high-frequency sense circuitry.
    pub fn low_barrier_mtj() -> Self {
        Self {
            technology: RngTechnology::LowBarrierMtj,
            throughput_bits_per_second: 1e9,
            area_um2: 50.0,
            energy_per_bit_joules: 1e-12,
        }
    }

    /// The SOT-MRAM stochastic unit used by TAXI, derived from the device parameters:
    /// one bit per write pulse, one 3T-1M cell plus a divider/inverter (≈ 5 µm²).
    pub fn sot_mram(params: &DeviceParams) -> Self {
        Self {
            technology: RngTechnology::SotMram,
            throughput_bits_per_second: 1.0 / params.write_pulse_seconds,
            area_um2: 5.0,
            energy_per_bit_joules: params.write_energy_joules,
        }
    }

    /// Time to produce one `width`-bit stochastic mask using as many generator instances
    /// as fit in `area_budget_um2`, in seconds.
    ///
    /// This is the figure of merit the paper cares about: the mask must be refreshed
    /// every macro iteration (9 ns), so the source must deliver `width` bits well inside
    /// that window without blowing up the area.
    pub fn mask_latency_seconds(&self, width: usize, area_budget_um2: f64) -> f64 {
        let instances = (area_budget_um2 / self.area_um2).floor().max(1.0);
        let bits_in_parallel = instances.min(width as f64);
        let rounds = (width as f64 / bits_in_parallel).ceil();
        rounds / self.throughput_bits_per_second
    }

    /// Energy to produce one `width`-bit mask, in joules.
    pub fn mask_energy_joules(&self, width: usize) -> f64 {
        width as f64 * self.energy_per_bit_joules
    }
}

/// All profiles compared by the paper, with SOT-MRAM derived from `params`.
pub fn all_profiles(params: &DeviceParams) -> Vec<RngProfile> {
    vec![
        RngProfile::cmos_synthesized(),
        RngProfile::cmos_high_performance(),
        RngProfile::low_barrier_mtj(),
        RngProfile::sot_mram(params),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sot_mram_is_most_area_efficient() {
        let params = DeviceParams::default();
        let sot = RngProfile::sot_mram(&params);
        for profile in all_profiles(&params) {
            if profile.technology != RngTechnology::SotMram {
                assert!(sot.area_um2 < profile.area_um2);
            }
        }
    }

    #[test]
    fn sot_mram_mask_fits_the_iteration_budget() {
        // A 12-wide mask must be produced well within the 9 ns iteration at a per-row
        // area budget comparable to one CMOS TRNG instance.
        let params = DeviceParams::default();
        let sot = RngProfile::sot_mram(&params);
        let latency = sot.mask_latency_seconds(12, 12.0 * sot.area_um2);
        assert!(latency <= 2e-9, "SOT mask latency {latency}");
    }

    #[test]
    fn synthesized_cmos_cannot_keep_up_at_the_same_area() {
        let params = DeviceParams::default();
        let cmos = RngProfile::cmos_synthesized();
        let sot = RngProfile::sot_mram(&params);
        let budget = 12.0 * sot.area_um2; // what TAXI spends on its 12 stochastic units
        let cmos_latency = cmos.mask_latency_seconds(12, budget);
        let sot_latency = sot.mask_latency_seconds(12, budget);
        assert!(
            cmos_latency > 100.0 * sot_latency,
            "CMOS {cmos_latency} vs SOT {sot_latency}"
        );
    }

    #[test]
    fn mask_energy_scales_with_width() {
        let params = DeviceParams::default();
        let sot = RngProfile::sot_mram(&params);
        assert!(sot.mask_energy_joules(24) > sot.mask_energy_joules(12));
    }

    #[test]
    fn published_throughput_figures_are_respected() {
        assert!(RngProfile::cmos_synthesized().throughput_bits_per_second < 2_400e6);
        assert!(RngProfile::cmos_high_performance().throughput_bits_per_second <= 2.4e9);
    }
}
