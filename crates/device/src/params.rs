//! Device parameter set.

use crate::{DeviceError, SwitchingCurve, WriteCurrent};

/// Behavioural parameters of the SOT-MRAM device used across the reproduction.
///
/// Resistance values follow typical perpendicular SOT-MRAM figures (consistent with the
/// field-free perpendicular SOT-MRAM of the paper's ref. \[19\]); the stochastic window and
/// switching-probability anchors come directly from the paper.
///
/// # Example
///
/// ```
/// use taxi_device::{DeviceParams, WriteCurrent};
///
/// let params = DeviceParams::default();
/// assert!(params.on_off_ratio() > 1.5);
/// let p = params.switching_probability(WriteCurrent::from_micro_amps(420.0));
/// assert!((p - 0.2).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceParams {
    /// Resistance in the parallel (low-resistance) state, in ohms.
    pub r_parallel_ohms: f64,
    /// Resistance in the anti-parallel (high-resistance) state, in ohms.
    pub r_antiparallel_ohms: f64,
    /// Lower bound of the stochastic write-current window.
    pub stochastic_window_min: WriteCurrent,
    /// Upper bound of the stochastic write-current window (also the deterministic
    /// threshold).
    pub deterministic_threshold: WriteCurrent,
    /// Switching-probability curve in the stochastic regime.
    pub switching_curve: SwitchingCurve,
    /// Duration of a single write pulse, in seconds.
    pub write_pulse_seconds: f64,
    /// Duration of a single read access, in seconds.
    pub read_pulse_seconds: f64,
    /// Energy of a deterministic write pulse, in joules.
    pub write_energy_joules: f64,
    /// Supply/read voltage across the device during reads, in volts.
    pub read_voltage: f64,
}

impl DeviceParams {
    /// Parameters used throughout the paper reproduction.
    ///
    /// * `R_P` = 5 kΩ, `R_AP` = 12.5 kΩ (TMR = 150 %), typical of perpendicular MTJs.
    /// * Stochastic window 300 µA – 650 µA, switching curve anchored at the paper's
    ///   quoted operating points.
    /// * 1 ns write pulse, ~0.2 ns read access, 50 fJ deterministic write energy.
    pub fn paper() -> Self {
        Self {
            r_parallel_ohms: 5_000.0,
            r_antiparallel_ohms: 12_500.0,
            stochastic_window_min: WriteCurrent::from_micro_amps(300.0),
            deterministic_threshold: WriteCurrent::from_micro_amps(650.0),
            switching_curve: SwitchingCurve::paper_fit(),
            write_pulse_seconds: 1e-9,
            read_pulse_seconds: 0.2e-9,
            write_energy_joules: 50e-15,
            read_voltage: 0.2,
        }
    }

    /// Validates the parameter set, returning an error describing the first violated
    /// constraint.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if any resistance is non-positive, the
    /// anti-parallel resistance does not exceed the parallel resistance, the stochastic
    /// window is inverted, or any timing/energy figure is non-positive.
    pub fn validate(&self) -> Result<(), DeviceError> {
        if self.r_parallel_ohms <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "r_parallel_ohms",
                reason: "must be strictly positive".to_string(),
            });
        }
        if self.r_antiparallel_ohms <= self.r_parallel_ohms {
            return Err(DeviceError::InvalidParameter {
                name: "r_antiparallel_ohms",
                reason: "must exceed the parallel-state resistance".to_string(),
            });
        }
        if self.stochastic_window_min >= self.deterministic_threshold {
            return Err(DeviceError::InvalidParameter {
                name: "stochastic_window_min",
                reason: "must be below the deterministic threshold".to_string(),
            });
        }
        if self.write_pulse_seconds <= 0.0
            || self.read_pulse_seconds <= 0.0
            || self.write_energy_joules <= 0.0
        {
            return Err(DeviceError::InvalidParameter {
                name: "timing/energy",
                reason: "pulse durations and write energy must be strictly positive".to_string(),
            });
        }
        if self.read_voltage <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "read_voltage",
                reason: "must be strictly positive".to_string(),
            });
        }
        Ok(())
    }

    /// Conductance of the parallel (low-resistance) state, in siemens.
    pub fn g_parallel(&self) -> f64 {
        1.0 / self.r_parallel_ohms
    }

    /// Conductance of the anti-parallel (high-resistance) state, in siemens.
    pub fn g_antiparallel(&self) -> f64 {
        1.0 / self.r_antiparallel_ohms
    }

    /// ON/OFF conductance ratio `G_P / G_AP = R_AP / R_P`.
    pub fn on_off_ratio(&self) -> f64 {
        self.r_antiparallel_ohms / self.r_parallel_ohms
    }

    /// Switching probability at the given write current.
    ///
    /// Below the stochastic window the probability is effectively zero; above the
    /// deterministic threshold it saturates at one. In between, the sigmoidal curve
    /// applies.
    pub fn switching_probability(&self, current: WriteCurrent) -> f64 {
        if current >= self.deterministic_threshold {
            1.0
        } else {
            self.switching_curve.probability(current)
        }
    }

    /// Returns `true` if `current` lies inside the stochastic operating window.
    pub fn is_in_stochastic_window(&self, current: WriteCurrent) -> bool {
        current >= self.stochastic_window_min && current < self.deterministic_threshold
    }

    /// Ensures `current` lies inside the stochastic window.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::CurrentOutsideStochasticWindow`] otherwise.
    pub fn require_stochastic(&self, current: WriteCurrent) -> Result<(), DeviceError> {
        if self.is_in_stochastic_window(current) {
            Ok(())
        } else {
            Err(DeviceError::CurrentOutsideStochasticWindow {
                current,
                min: self.stochastic_window_min,
                max: self.deterministic_threshold,
            })
        }
    }
}

impl Default for DeviceParams {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_valid() {
        DeviceParams::default()
            .validate()
            .expect("paper defaults must validate");
    }

    #[test]
    fn invalid_resistance_is_rejected() {
        let p = DeviceParams {
            r_parallel_ohms: -1.0,
            ..Default::default()
        };
        assert!(matches!(
            p.validate(),
            Err(DeviceError::InvalidParameter {
                name: "r_parallel_ohms",
                ..
            })
        ));
    }

    #[test]
    fn inverted_states_are_rejected() {
        let defaults = DeviceParams::default();
        let p = DeviceParams {
            r_antiparallel_ohms: defaults.r_parallel_ohms / 2.0,
            ..defaults
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn inverted_window_is_rejected() {
        let p = DeviceParams {
            stochastic_window_min: WriteCurrent::from_micro_amps(700.0),
            ..Default::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn deterministic_regime_saturates_probability() {
        let p = DeviceParams::default();
        assert_eq!(
            p.switching_probability(WriteCurrent::from_micro_amps(651.0)),
            1.0
        );
    }

    #[test]
    fn stochastic_window_membership() {
        let p = DeviceParams::default();
        assert!(p.is_in_stochastic_window(WriteCurrent::from_micro_amps(420.0)));
        assert!(!p.is_in_stochastic_window(WriteCurrent::from_micro_amps(299.0)));
        assert!(!p.is_in_stochastic_window(WriteCurrent::from_micro_amps(650.0)));
    }

    #[test]
    fn require_stochastic_reports_bounds() {
        let p = DeviceParams::default();
        let err = p
            .require_stochastic(WriteCurrent::from_micro_amps(700.0))
            .unwrap_err();
        assert!(matches!(
            err,
            DeviceError::CurrentOutsideStochasticWindow { .. }
        ));
    }

    #[test]
    fn conductances_are_reciprocal_resistances() {
        let p = DeviceParams::default();
        assert!((p.g_parallel() * p.r_parallel_ohms - 1.0).abs() < 1e-12);
        assert!((p.g_antiparallel() * p.r_antiparallel_ohms - 1.0).abs() < 1e-12);
        assert!(p.on_off_ratio() > 1.0);
    }
}
