//! SOT-MRAM based stochastic bit and vector sources.
//!
//! The stochastic-mask circuit of the paper (Fig. 4c) consists of `N` identical units,
//! each containing one SOT-MRAM device driven in the stochastic regime. Per iteration the
//! devices are pulsed; the units whose device switched let the column current pass. The
//! expected number of ones in the mask is therefore `N · P_sw(I_write)` and is swept down
//! during annealing by reducing the write current.

use rand::Rng;

use crate::{DeviceError, DeviceParams, MagState, SotMram, WriteCurrent};

/// A single stochastic bit source backed by one SOT-MRAM device.
///
/// # Example
///
/// ```
/// use taxi_device::{DeviceParams, StochasticBitSource, WriteCurrent};
/// use rand::SeedableRng;
///
/// let mut source = StochasticBitSource::new(DeviceParams::default());
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
/// let bit = source.sample(WriteCurrent::from_micro_amps(420.0), &mut rng)?;
/// assert!(bit == true || bit == false);
/// # Ok::<(), taxi_device::DeviceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StochasticBitSource {
    device: SotMram,
    samples_drawn: u64,
}

impl StochasticBitSource {
    /// Creates a bit source with the given device parameters.
    pub fn new(params: DeviceParams) -> Self {
        Self {
            device: SotMram::new(params),
            samples_drawn: 0,
        }
    }

    /// Draws one stochastic bit: the device is reset to the anti-parallel state and
    /// pulsed at `current`; the bit is 1 exactly when the device switched.
    ///
    /// # Errors
    ///
    /// Returns an error if `current` lies outside the stochastic window.
    pub fn sample<R: Rng + ?Sized>(
        &mut self,
        current: WriteCurrent,
        rng: &mut R,
    ) -> Result<bool, DeviceError> {
        self.device.write_deterministic(MagState::AntiParallel);
        let switched = self.device.try_stochastic_flip(current, rng)?;
        self.samples_drawn += 1;
        Ok(switched)
    }

    /// Number of bits drawn so far.
    pub fn samples_drawn(&self) -> u64 {
        self.samples_drawn
    }

    /// The underlying device (for inspecting resistance/energy figures).
    pub fn device(&self) -> &SotMram {
        &self.device
    }
}

/// Generates the length-`N` stochastic binary mask used by the Ising macro.
///
/// One SOT-MRAM unit exists per column of the sub-problem (Section III-B/III-C3 of the
/// paper). The generator also tracks aggregate energy and latency so the architecture
/// simulator can account for the mask-generation cost.
///
/// # Example
///
/// ```
/// use taxi_device::{DeviceParams, StochasticVectorGenerator, WriteCurrent};
/// use rand::SeedableRng;
///
/// let mut gen = StochasticVectorGenerator::new(DeviceParams::default(), 12)?;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
/// let mask = gen.generate(WriteCurrent::from_micro_amps(420.0), &mut rng)?;
/// assert_eq!(mask.len(), 12);
/// # Ok::<(), taxi_device::DeviceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StochasticVectorGenerator {
    units: Vec<StochasticBitSource>,
    params: DeviceParams,
    pulses_issued: u64,
}

impl StochasticVectorGenerator {
    /// Creates a generator with `width` independent SOT-MRAM units.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::EmptyVector`] if `width` is zero, or a parameter-validation
    /// error if `params` is inconsistent.
    pub fn new(params: DeviceParams, width: usize) -> Result<Self, DeviceError> {
        if width == 0 {
            return Err(DeviceError::EmptyVector);
        }
        params.validate()?;
        Ok(Self {
            units: (0..width)
                .map(|_| StochasticBitSource::new(params.clone()))
                .collect(),
            params,
            pulses_issued: 0,
        })
    }

    /// Number of units (mask width).
    pub fn width(&self) -> usize {
        self.units.len()
    }

    /// Generates one stochastic binary mask at the given write current.
    ///
    /// Mirrors the circuit behaviour described in the paper: if **no** unit switched
    /// (`S = ∅`), the NAND gate opens every unit, so the all-zero mask is replaced by the
    /// all-ones mask (all columns allowed to pass).
    ///
    /// # Errors
    ///
    /// Returns an error if `current` lies outside the stochastic window.
    pub fn generate<R: Rng + ?Sized>(
        &mut self,
        current: WriteCurrent,
        rng: &mut R,
    ) -> Result<Vec<bool>, DeviceError> {
        let mut mask = Vec::with_capacity(self.units.len());
        self.generate_into(current, rng, &mut mask)?;
        Ok(mask)
    }

    /// Like [`generate`](Self::generate), but writes the mask into a caller-provided
    /// buffer (cleared and refilled), so steady-state mask generation performs no heap
    /// allocation once the buffer is warm.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`generate`](Self::generate).
    pub fn generate_into<R: Rng + ?Sized>(
        &mut self,
        current: WriteCurrent,
        rng: &mut R,
        mask: &mut Vec<bool>,
    ) -> Result<(), DeviceError> {
        mask.clear();
        for unit in &mut self.units {
            mask.push(unit.sample(current, rng)?);
        }
        self.pulses_issued += 1;
        if mask.iter().all(|&b| !b) {
            mask.iter_mut().for_each(|b| *b = true);
        }
        Ok(())
    }

    /// Expected number of ones in a mask generated at `current` (before the empty-set
    /// fallback is applied).
    pub fn expected_ones(&self, current: WriteCurrent) -> f64 {
        self.units.len() as f64 * self.params.switching_probability(current)
    }

    /// Total number of mask-generation pulses issued so far.
    pub fn pulses_issued(&self) -> u64 {
        self.pulses_issued
    }

    /// Energy of generating one mask (all units pulsed once), in joules.
    pub fn energy_per_mask(&self) -> f64 {
        self.units.len() as f64 * self.params.write_energy_joules
    }

    /// Latency of generating one mask, in seconds (units are pulsed in parallel).
    pub fn latency_per_mask(&self) -> f64 {
        self.params.write_pulse_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zero_width_is_rejected() {
        assert!(matches!(
            StochasticVectorGenerator::new(DeviceParams::default(), 0),
            Err(DeviceError::EmptyVector)
        ));
    }

    #[test]
    fn mask_has_requested_width() {
        let mut gen = StochasticVectorGenerator::new(DeviceParams::default(), 12).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mask = gen
            .generate(WriteCurrent::from_micro_amps(420.0), &mut rng)
            .unwrap();
        assert_eq!(mask.len(), 12);
    }

    #[test]
    fn empty_mask_falls_back_to_all_ones() {
        // At the very bottom of the stochastic window the switching probability is tiny,
        // so most draws produce the empty set; the circuit must then pass every column.
        let mut gen = StochasticVectorGenerator::new(DeviceParams::default(), 4).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut saw_all_ones = false;
        for _ in 0..50 {
            let mask = gen
                .generate(WriteCurrent::from_micro_amps(305.0), &mut rng)
                .unwrap();
            assert!(mask.iter().any(|&b| b), "mask must never be all zeros");
            if mask.iter().all(|&b| b) {
                saw_all_ones = true;
            }
        }
        assert!(saw_all_ones);
    }

    #[test]
    fn mean_ones_tracks_switching_probability() {
        let params = DeviceParams::default();
        let width = 64;
        let mut gen = StochasticVectorGenerator::new(params.clone(), width).unwrap();
        let current = WriteCurrent::from_micro_amps(450.0);
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let trials = 2_000;
        let mut total_ones = 0usize;
        for _ in 0..trials {
            total_ones += gen
                .generate(current, &mut rng)
                .unwrap()
                .iter()
                .filter(|&&b| b)
                .count();
        }
        let observed = total_ones as f64 / trials as f64;
        let expected = gen.expected_ones(current);
        assert!(
            (observed - expected).abs() / expected < 0.05,
            "observed {observed}, expected {expected}"
        );
    }

    #[test]
    fn expected_ones_decreases_with_current() {
        let gen = StochasticVectorGenerator::new(DeviceParams::default(), 12).unwrap();
        let high = gen.expected_ones(WriteCurrent::from_micro_amps(420.0));
        let low = gen.expected_ones(WriteCurrent::from_micro_amps(353.0));
        assert!(high > low);
    }

    #[test]
    fn bookkeeping_counts_pulses_and_energy() {
        let mut gen = StochasticVectorGenerator::new(DeviceParams::default(), 8).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..3 {
            gen.generate(WriteCurrent::from_micro_amps(400.0), &mut rng)
                .unwrap();
        }
        assert_eq!(gen.pulses_issued(), 3);
        assert!(gen.energy_per_mask() > 0.0);
        assert!(gen.latency_per_mask() > 0.0);
    }

    #[test]
    fn bit_source_counts_samples() {
        let mut src = StochasticBitSource::new(DeviceParams::default());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..10 {
            src.sample(WriteCurrent::from_micro_amps(500.0), &mut rng)
                .unwrap();
        }
        assert_eq!(src.samples_drawn(), 10);
    }
}
