//! Single SOT-MRAM device model.

use rand::Rng;

use crate::{DeviceError, DeviceParams, WriteCurrent};

/// Magnetisation state of the free layer relative to the pinned layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MagState {
    /// Parallel alignment: low resistance (`R_P`), read as logic 1 in the spin storage.
    Parallel,
    /// Anti-parallel alignment: high resistance (`R_AP`), read as logic 0.
    #[default]
    AntiParallel,
}

impl MagState {
    /// Returns the opposite state.
    pub fn flipped(self) -> Self {
        match self {
            MagState::Parallel => MagState::AntiParallel,
            MagState::AntiParallel => MagState::Parallel,
        }
    }

    /// Interprets the state as a binary spin value (`Parallel` → 1, `AntiParallel` → 0),
    /// matching the spin-storage encoding of the paper.
    pub fn as_bit(self) -> u8 {
        match self {
            MagState::Parallel => 1,
            MagState::AntiParallel => 0,
        }
    }

    /// Builds a state from a binary spin value.
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            MagState::Parallel
        } else {
            MagState::AntiParallel
        }
    }
}

/// A single 3T-1M SOT-MRAM cell's magnetic tunnel junction.
///
/// The cell tracks its magnetisation state and exposes deterministic writes (used for the
/// distance-matrix and spin-storage partitions), stochastic writes (used by the
/// stochastic-mask circuit), and resistance/conductance reads.
///
/// # Example
///
/// ```
/// use taxi_device::{DeviceParams, MagState, SotMram};
///
/// let mut cell = SotMram::new(DeviceParams::default());
/// cell.write_deterministic(MagState::Parallel);
/// assert!(cell.conductance() > 1.0 / 6_000.0); // low-resistance state
/// cell.write_deterministic(MagState::AntiParallel);
/// assert!(cell.resistance() > 10_000.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SotMram {
    params: DeviceParams,
    state: MagState,
    write_count: u64,
}

impl SotMram {
    /// Creates a device in the anti-parallel (high-resistance / logic 0) state.
    pub fn new(params: DeviceParams) -> Self {
        Self {
            params,
            state: MagState::AntiParallel,
            write_count: 0,
        }
    }

    /// Creates a device in a specific initial state.
    pub fn with_state(params: DeviceParams, state: MagState) -> Self {
        Self {
            params,
            state,
            write_count: 0,
        }
    }

    /// The device parameters.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Current magnetisation state.
    pub fn state(&self) -> MagState {
        self.state
    }

    /// Number of write operations performed on this device (wear proxy).
    pub fn write_count(&self) -> u64 {
        self.write_count
    }

    /// Resistance in the current state, in ohms.
    pub fn resistance(&self) -> f64 {
        match self.state {
            MagState::Parallel => self.params.r_parallel_ohms,
            MagState::AntiParallel => self.params.r_antiparallel_ohms,
        }
    }

    /// Conductance in the current state, in siemens.
    pub fn conductance(&self) -> f64 {
        1.0 / self.resistance()
    }

    /// Deterministic write: forces the device into `target` (models a write pulse above
    /// the deterministic threshold, > 650 µA in the paper).
    pub fn write_deterministic(&mut self, target: MagState) {
        self.state = target;
        self.write_count += 1;
    }

    /// Attempts a deterministic write with an explicit current, validating the regime.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::CurrentBelowDeterministicThreshold`] if `current` is below
    /// the deterministic switching threshold.
    pub fn write_with_current(
        &mut self,
        target: MagState,
        current: WriteCurrent,
    ) -> Result<(), DeviceError> {
        if current < self.params.deterministic_threshold {
            return Err(DeviceError::CurrentBelowDeterministicThreshold {
                current,
                threshold: self.params.deterministic_threshold,
            });
        }
        self.write_deterministic(target);
        Ok(())
    }

    /// Stochastic write pulse in the stochastic regime: the device flips with probability
    /// `P_sw(current)`. Returns whether the device switched.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::CurrentOutsideStochasticWindow`] if the current lies outside
    /// the stochastic operating window.
    pub fn try_stochastic_flip<R: Rng + ?Sized>(
        &mut self,
        current: WriteCurrent,
        rng: &mut R,
    ) -> Result<bool, DeviceError> {
        self.params.require_stochastic(current)?;
        let p = self.params.switching_probability(current);
        self.write_count += 1;
        let switched = rng.gen_bool(p.clamp(0.0, 1.0));
        if switched {
            self.state = self.state.flipped();
        }
        Ok(switched)
    }

    /// Energy dissipated by a single write pulse, in joules.
    pub fn write_energy(&self) -> f64 {
        self.params.write_energy_joules
    }

    /// Latency of a single write pulse, in seconds.
    pub fn write_latency(&self) -> f64 {
        self.params.write_pulse_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn starts_in_high_resistance_state() {
        let cell = SotMram::new(DeviceParams::default());
        assert_eq!(cell.state(), MagState::AntiParallel);
        assert!(cell.resistance() > 10_000.0);
    }

    #[test]
    fn deterministic_write_sets_state() {
        let mut cell = SotMram::new(DeviceParams::default());
        cell.write_deterministic(MagState::Parallel);
        assert_eq!(cell.state(), MagState::Parallel);
        assert_eq!(cell.write_count(), 1);
    }

    #[test]
    fn write_with_low_current_is_rejected() {
        let mut cell = SotMram::new(DeviceParams::default());
        let err = cell
            .write_with_current(MagState::Parallel, WriteCurrent::from_micro_amps(400.0))
            .unwrap_err();
        assert!(matches!(
            err,
            DeviceError::CurrentBelowDeterministicThreshold { .. }
        ));
        assert_eq!(cell.state(), MagState::AntiParallel);
    }

    #[test]
    fn write_with_sufficient_current_succeeds() {
        let mut cell = SotMram::new(DeviceParams::default());
        cell.write_with_current(MagState::Parallel, WriteCurrent::from_micro_amps(700.0))
            .expect("write in deterministic regime");
        assert_eq!(cell.state(), MagState::Parallel);
    }

    #[test]
    fn stochastic_flip_outside_window_is_rejected() {
        let mut cell = SotMram::new(DeviceParams::default());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let err = cell
            .try_stochastic_flip(WriteCurrent::from_micro_amps(700.0), &mut rng)
            .unwrap_err();
        assert!(matches!(
            err,
            DeviceError::CurrentOutsideStochasticWindow { .. }
        ));
    }

    #[test]
    fn stochastic_flip_rate_tracks_probability() {
        let params = DeviceParams::default();
        let current = WriteCurrent::from_micro_amps(420.0);
        let expected = params.switching_probability(current);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let trials = 20_000;
        let mut flips = 0u32;
        for _ in 0..trials {
            let mut cell = SotMram::new(params.clone());
            if cell.try_stochastic_flip(current, &mut rng).unwrap() {
                flips += 1;
            }
        }
        let observed = f64::from(flips) / f64::from(trials);
        assert!(
            (observed - expected).abs() < 0.01,
            "observed {observed}, expected {expected}"
        );
    }

    #[test]
    fn bit_round_trip() {
        assert_eq!(MagState::from_bit(true).as_bit(), 1);
        assert_eq!(MagState::from_bit(false).as_bit(), 0);
        assert_eq!(MagState::Parallel.flipped(), MagState::AntiParallel);
    }

    #[test]
    fn conductance_matches_state() {
        let params = DeviceParams::default();
        let mut cell = SotMram::new(params.clone());
        assert!((cell.conductance() - params.g_antiparallel()).abs() < 1e-15);
        cell.write_deterministic(MagState::Parallel);
        assert!((cell.conductance() - params.g_parallel()).abs() < 1e-15);
    }
}
