//! Property-based tests of the switching-probability model.

use proptest::prelude::*;

use taxi_device::{DeviceParams, SwitchingCurve, WriteCurrent};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The switching probability is always a valid probability and is monotone in the
    /// write current.
    #[test]
    fn probability_is_bounded_and_monotone(ua_a in 0.0f64..1000.0, ua_b in 0.0f64..1000.0) {
        let curve = SwitchingCurve::paper_fit();
        let (lo, hi) = if ua_a <= ua_b { (ua_a, ua_b) } else { (ua_b, ua_a) };
        let p_lo = curve.probability(WriteCurrent::from_micro_amps(lo));
        let p_hi = curve.probability(WriteCurrent::from_micro_amps(hi));
        prop_assert!((0.0..=1.0).contains(&p_lo));
        prop_assert!((0.0..=1.0).contains(&p_hi));
        prop_assert!(p_hi >= p_lo);
    }

    /// `current_for_probability` is the exact inverse of `probability` over the open
    /// unit interval.
    #[test]
    fn inverse_round_trips(p in 0.001f64..0.999) {
        let curve = SwitchingCurve::paper_fit();
        let current = curve.current_for_probability(p);
        prop_assert!((curve.probability(current) - p).abs() < 1e-9);
    }

    /// Any curve fitted through two anchor points reproduces them exactly.
    #[test]
    fn anchor_fit_reproduces_anchors(
        ua_a in 300.0f64..450.0,
        delta in 20.0f64..200.0,
        p_a in 0.01f64..0.4,
        p_extra in 0.05f64..0.5,
    ) {
        let ua_b = ua_a + delta;
        let p_b = (p_a + p_extra).min(0.95);
        let curve = SwitchingCurve::from_anchor_points(
            (WriteCurrent::from_micro_amps(ua_a), p_a),
            (WriteCurrent::from_micro_amps(ua_b), p_b),
        );
        prop_assert!((curve.probability(WriteCurrent::from_micro_amps(ua_a)) - p_a).abs() < 1e-9);
        prop_assert!((curve.probability(WriteCurrent::from_micro_amps(ua_b)) - p_b).abs() < 1e-9);
    }

    /// Device parameters in the deterministic regime always report certainty, and the
    /// stochastic-window check matches the window bounds.
    #[test]
    fn deterministic_regime_saturates(ua in 650.0f64..2000.0) {
        let params = DeviceParams::default();
        let current = WriteCurrent::from_micro_amps(ua);
        prop_assert_eq!(params.switching_probability(current), 1.0);
        prop_assert!(!params.is_in_stochastic_window(current));
    }
}
