//! The SLO engine: declarative objectives, error budgets, and multi-window
//! burn-rate alerting.
//!
//! An [`SloSpec`] declares an objective (e.g. "99.9% of resolved requests
//! succeed") whose complement is the **error budget** (0.1% may fail). The
//! engine measures the windowed error rate and expresses it as a **burn
//! rate** — the multiple of the budget being consumed: burn 1.0 spends the
//! budget exactly at the sustainable pace, burn 10 exhausts it ten times too
//! fast. Alerting is **multi-window**: a rule fires only when the *fast*
//! window (reacts quickly, noisy) **and** the *slow* window (smooths noise,
//! reacts slowly) both burn above the threshold — the standard defence
//! against paging on a transient blip — and clears with hysteresis: both
//! windows must sit below the clear threshold for several consecutive
//! evaluations before the alert resets. Evaluation allocates nothing; all
//! scratch is preallocated per rule.

use std::time::Duration;

use crate::store::HistoryStore;
use crate::window::ServiceWindow;

/// What an [`SloSpec`] measures over each window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloKind {
    /// Fraction of resolved requests (completed + failed + shed + rejected)
    /// that completed. Errors: failures, sheds, rejections.
    Availability,
    /// Fraction of completions that met their deadline. Errors: deadline
    /// misses.
    DeadlineHits,
    /// Fraction of completions faster than the target. Errors: end-to-end
    /// observations above the threshold (align the threshold to a
    /// power-of-two-microsecond histogram boundary for exact accounting).
    LatencyBelow(Duration),
    /// Fraction of routed solves with quality ratio at or below the bound.
    /// Errors: ratios above it (align the bound to one of
    /// [`taxi_dispatch::QualityHistogram::BOUNDS`] for exact accounting).
    QualityBelow(f64),
}

/// A declarative service-level objective with burn-rate alert policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Rule name (rendered in telemetry labels and dashboards).
    pub name: String,
    /// What is measured.
    pub kind: SloKind,
    /// Target good fraction in `(0, 1)`; the error budget is `1 − objective`.
    pub objective: f64,
    /// Fast alert window (reacts quickly).
    pub fast: Duration,
    /// Slow alert window (smooths noise). Must be ≥ `fast` to be useful.
    pub slow: Duration,
    /// Burn rate at or above which **both** windows must sit to fire.
    pub fire_burn: f64,
    /// Burn rate below which both windows must sit to make clearing progress.
    pub clear_burn: f64,
    /// Consecutive clear evaluations required before a firing alert resets.
    pub clear_after: u32,
    /// Minimum measured events in each window before the rule may fire (an
    /// idle service never alerts).
    pub min_events: u64,
}

impl SloSpec {
    fn new(name: &str, kind: SloKind, objective: f64) -> Self {
        Self {
            name: name.to_string(),
            kind,
            objective: objective.clamp(0.0, 1.0 - 1e-9),
            fast: Duration::from_secs(2),
            slow: Duration::from_secs(10),
            fire_burn: 2.0,
            clear_burn: 1.0,
            clear_after: 3,
            min_events: 10,
        }
    }

    /// Availability SLO: `objective` of resolved requests complete.
    pub fn availability(name: &str, objective: f64) -> Self {
        Self::new(name, SloKind::Availability, objective)
    }

    /// Deadline SLO: `objective` of completions meet their deadline.
    pub fn deadline_hits(name: &str, objective: f64) -> Self {
        Self::new(name, SloKind::DeadlineHits, objective)
    }

    /// Latency SLO: `objective` of completions finish within `target`
    /// end-to-end.
    pub fn latency_below(name: &str, target: Duration, objective: f64) -> Self {
        Self::new(name, SloKind::LatencyBelow(target), objective)
    }

    /// Quality SLO: `objective` of routed solves stay at or below
    /// `max_ratio` (cost / shadow reference).
    pub fn quality_below(name: &str, max_ratio: f64, objective: f64) -> Self {
        Self::new(name, SloKind::QualityBelow(max_ratio), objective)
    }

    /// Overrides the fast/slow alert windows.
    pub fn with_windows(mut self, fast: Duration, slow: Duration) -> Self {
        self.fast = fast;
        self.slow = slow.max(fast);
        self
    }

    /// Overrides the fire/clear burn thresholds (clear clamped below fire).
    pub fn with_burn(mut self, fire: f64, clear: f64) -> Self {
        self.fire_burn = fire.max(0.0);
        self.clear_burn = clear.clamp(0.0, self.fire_burn);
        self
    }

    /// Overrides the clear hysteresis depth (min 1 evaluation).
    pub fn with_clear_after(mut self, evaluations: u32) -> Self {
        self.clear_after = evaluations.max(1);
        self
    }

    /// Overrides the minimum per-window event count.
    pub fn with_min_events(mut self, events: u64) -> Self {
        self.min_events = events;
        self
    }

    /// The error budget: the allowed bad fraction, `1 − objective`.
    pub fn budget(&self) -> f64 {
        (1.0 - self.objective).max(1e-9)
    }

    /// Bad and total event counts of `window` under this spec's kind.
    fn measure(&self, window: &ServiceWindow) -> (u64, u64) {
        match self.kind {
            SloKind::Availability => {
                let bad = window.failed + window.shed + window.rejected;
                (bad, window.resolved())
            }
            SloKind::DeadlineHits => (window.deadline_misses, window.completed),
            SloKind::LatencyBelow(target) => (
                window.end_to_end.count_above(target),
                window.end_to_end.count,
            ),
            SloKind::QualityBelow(bound) => {
                (window.quality.count_above(bound), window.quality.count)
            }
        }
    }
}

/// Whether an alert rule is currently firing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Within budget (or clearing hysteresis completed).
    Ok,
    /// Both windows burned above the fire threshold; not yet cleared.
    Firing,
}

/// Point-in-time status of one SLO rule — stamped into fleet snapshots and
/// rendered by telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// Rule name.
    pub name: String,
    /// Current alert state.
    pub state: AlertState,
    /// Burn rate over the fast window.
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// Events measured in the fast window.
    pub fast_events: u64,
    /// Events measured in the slow window.
    pub slow_events: u64,
    /// The rule's error budget (allowed bad fraction).
    pub budget: f64,
    /// The rule's objective.
    pub objective: f64,
}

#[derive(Debug)]
struct Rule {
    spec: SloSpec,
    clear_streak: u32,
}

/// Evaluates a set of [`SloSpec`]s against a [`HistoryStore`].
///
/// `evaluate` is allocation-free: windows are computed into per-engine
/// scratch, and statuses are updated in place (names were allocated when the
/// specs were added).
#[derive(Debug)]
pub struct SloEngine {
    rules: Vec<Rule>,
    statuses: Vec<SloStatus>,
    evaluations: u64,
    fast_scratch: ServiceWindow,
    slow_scratch: ServiceWindow,
}

impl SloEngine {
    /// Creates an engine over `specs` (empty specs ⇒ a no-op engine).
    pub fn new(specs: Vec<SloSpec>) -> Self {
        let statuses = specs
            .iter()
            .map(|spec| SloStatus {
                name: spec.name.clone(),
                state: AlertState::Ok,
                fast_burn: 0.0,
                slow_burn: 0.0,
                fast_events: 0,
                slow_events: 0,
                budget: spec.budget(),
                objective: spec.objective,
            })
            .collect();
        Self {
            rules: specs
                .into_iter()
                .map(|spec| Rule {
                    spec,
                    clear_streak: 0,
                })
                .collect(),
            statuses,
            evaluations: 0,
            fast_scratch: ServiceWindow::default(),
            slow_scratch: ServiceWindow::default(),
        }
    }

    /// True when no rules are configured.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Number of configured rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Total evaluation passes performed.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Current statuses, one per rule in spec order.
    pub fn statuses(&self) -> &[SloStatus] {
        &self.statuses
    }

    /// Number of rules currently firing.
    pub fn firing(&self) -> usize {
        self.statuses
            .iter()
            .filter(|s| s.state == AlertState::Firing)
            .count()
    }

    /// Re-evaluates every rule against the store's current history. One call
    /// is one alert "tick": firing needs one tick with both windows breaching,
    /// clearing needs `clear_after` consecutive clean ticks.
    pub fn evaluate(&mut self, store: &HistoryStore) {
        self.evaluations += 1;
        for (rule, status) in self.rules.iter_mut().zip(&mut self.statuses) {
            let spec = &rule.spec;
            let fast_ok = store.fleet_window_into(spec.fast, &mut self.fast_scratch);
            let slow_ok = store.fleet_window_into(spec.slow, &mut self.slow_scratch);
            let (fast_bad, fast_total) = if fast_ok {
                spec.measure(&self.fast_scratch)
            } else {
                (0, 0)
            };
            let (slow_bad, slow_total) = if slow_ok {
                spec.measure(&self.slow_scratch)
            } else {
                (0, 0)
            };
            let budget = spec.budget();
            let burn = |bad: u64, total: u64| {
                if total == 0 {
                    0.0
                } else {
                    (bad as f64 / total as f64) / budget
                }
            };
            status.fast_burn = burn(fast_bad, fast_total);
            status.slow_burn = burn(slow_bad, slow_total);
            status.fast_events = fast_total;
            status.slow_events = slow_total;
            match status.state {
                AlertState::Ok => {
                    let breach = status.fast_burn >= spec.fire_burn
                        && status.slow_burn >= spec.fire_burn
                        && fast_total >= spec.min_events
                        && slow_total >= spec.min_events;
                    if breach {
                        status.state = AlertState::Firing;
                        rule.clear_streak = 0;
                    }
                }
                AlertState::Firing => {
                    let clean =
                        status.fast_burn < spec.clear_burn && status.slow_burn < spec.clear_burn;
                    if clean {
                        rule.clear_streak += 1;
                        if rule.clear_streak >= spec.clear_after {
                            status.state = AlertState::Ok;
                            rule.clear_streak = 0;
                        }
                    } else {
                        rule.clear_streak = 0;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::ShardSample;

    fn record(store: &HistoryStore, millis: u64, completed: u64, misses: u64) {
        store.record_with(|sample| {
            sample.reset(1);
            sample.at = Duration::from_millis(millis);
            sample.fleet.completed = completed;
            sample.fleet.deadline_misses = misses;
            sample.shards[0] = ShardSample::default();
        });
    }

    fn engine() -> SloEngine {
        SloEngine::new(vec![SloSpec::deadline_hits("deadline", 0.99)
            .with_windows(Duration::from_millis(100), Duration::from_millis(400))
            .with_burn(2.0, 1.0)
            .with_clear_after(2)
            .with_min_events(10)])
    }

    #[test]
    fn fires_only_when_both_windows_breach_and_clears_with_hysteresis() {
        let store = HistoryStore::new(64, 1);
        let mut engine = engine();

        // Healthy baseline across the whole slow window.
        for tick in 0..=8u64 {
            record(&store, tick * 50, tick * 100, 0);
        }
        engine.evaluate(&store);
        assert_eq!(engine.statuses()[0].state, AlertState::Ok);
        assert_eq!(engine.firing(), 0);

        // A miss storm confined to the fast window: fast burns, the slow
        // window still dilutes it below the fire threshold → no alert.
        record(&store, 450, 910, 10);
        engine.evaluate(&store);
        let status = &engine.statuses()[0];
        assert!(status.fast_burn >= 2.0, "fast burn {}", status.fast_burn);
        assert_eq!(status.state, AlertState::Ok);

        // The storm persists across the slow window too → fire.
        for tick in 10..=18u64 {
            record(
                &store,
                tick * 50,
                910 + (tick - 9) * 100,
                10 + (tick - 9) * 60,
            );
        }
        engine.evaluate(&store);
        assert_eq!(engine.statuses()[0].state, AlertState::Firing);

        // Recovery: clean traffic. One clean evaluation is not enough
        // (hysteresis depth 2)...
        for tick in 19..=30u64 {
            record(&store, tick * 50, 1810 + (tick - 18) * 100, 550);
        }
        engine.evaluate(&store);
        assert_eq!(engine.statuses()[0].state, AlertState::Firing);
        // ...the second consecutive clean evaluation clears it.
        record(&store, 1560, 3100, 550);
        engine.evaluate(&store);
        assert_eq!(engine.statuses()[0].state, AlertState::Ok);
    }

    #[test]
    fn idle_windows_never_fire() {
        let store = HistoryStore::new(8, 1);
        let mut engine = engine();
        for tick in 0..10u64 {
            record(&store, tick * 50, 0, 0);
        }
        engine.evaluate(&store);
        assert_eq!(engine.statuses()[0].state, AlertState::Ok);
        assert_eq!(engine.statuses()[0].fast_events, 0);
    }

    #[test]
    fn min_events_gates_thin_windows() {
        let store = HistoryStore::new(8, 1);
        let mut engine = engine();
        // 100% miss rate but only 4 completions — below min_events.
        record(&store, 0, 0, 0);
        record(&store, 50, 4, 4);
        engine.evaluate(&store);
        let status = &engine.statuses()[0];
        assert!(status.fast_burn > 2.0);
        assert_eq!(status.state, AlertState::Ok);
    }
}
