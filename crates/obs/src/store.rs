//! [`HistoryStore`] — the shared, thread-safe history of fleet samples.
//!
//! A mutex around a [`SeriesRing`] plus window-selection logic. Producers (the
//! fleet reconciler, the background [`Scraper`](crate::Scraper), synchronous
//! `scrape_now` calls) all record through the same lock, which serialises
//! samples and therefore guarantees **per-series monotonicity**: every counter
//! in sample *n+1* is ≥ its value in sample *n* (fleet level; per shard,
//! within one generation). Consumers select windows by *lookback*: the window
//! right edge is the newest sample, the left edge the oldest sample still
//! within the lookback horizon — so producers with different cadences feeding
//! the same store never skew a window, they only change its resolution.

use std::sync::Mutex;
use std::time::Duration;

use crate::ring::SeriesRing;
use crate::sample::{FleetSample, SampleSource};
use crate::window::ServiceWindow;

/// Windowed view of one shard, generation-guarded.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ShardWindow {
    /// Generation both window edges belong to.
    pub generation: u64,
    /// Whether the shard was in rotation at the newest edge.
    pub in_rotation: bool,
    /// Instantaneous queue depth at the newest edge.
    pub queue_depth: usize,
    /// Queue capacity at the newest edge.
    pub queue_capacity: usize,
    /// The windowed counters and distributions.
    pub window: ServiceWindow,
}

/// Thread-safe fixed-capacity history of [`FleetSample`]s with windowed reads.
#[derive(Debug)]
pub struct HistoryStore {
    ring: Mutex<SeriesRing>,
    /// Staging slot for [`record_from`](Self::record_from): the source fills
    /// this *outside* the ring lock, so a source that takes its own locks (the
    /// fleet's control-state mutex) can never deadlock against a producer that
    /// records while already holding those locks (the reconciler, which calls
    /// [`record_with`](Self::record_with) under its state lock).
    scratch: Mutex<FleetSample>,
}

impl HistoryStore {
    /// Creates a store with `capacity` ring slots, each preallocated for
    /// `shards` shards. Everything is allocated here; recording never grows
    /// the ring.
    pub fn new(capacity: usize, shards: usize) -> Self {
        Self {
            ring: Mutex::new(SeriesRing::new(capacity, shards)),
            scratch: Mutex::new(FleetSample::new(shards)),
        }
    }

    /// Records one sample by filling the oldest ring slot in place under the
    /// store lock. The closure must stamp `sample.at` with a monotone offset,
    /// and must not call back into this store (the ring lock is held).
    pub fn record_with(&self, fill: impl FnOnce(&mut FleetSample)) {
        let mut ring = self.ring.lock().expect("history ring poisoned");
        ring.push_with(fill);
    }

    /// Records one sample from a [`SampleSource`]. The source runs with only
    /// the staging lock held — never the ring lock — so it may freely take its
    /// own locks while sampling; the staged capture is then copied into the
    /// ring slot buffer-reusingly (zero allocation in steady state).
    pub fn record_from(&self, source: &dyn SampleSource) {
        let mut scratch = self.scratch.lock().expect("history scratch poisoned");
        source.sample_into(&mut scratch);
        self.record_with(|slot| slot.clone_from(&scratch));
    }

    /// Total samples ever recorded.
    pub fn recorded(&self) -> u64 {
        self.ring.lock().expect("history ring poisoned").recorded()
    }

    /// Samples currently resident.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("history ring poisoned").len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.recorded() == 0
    }

    /// Ring capacity in samples.
    pub fn capacity(&self) -> usize {
        self.ring.lock().expect("history ring poisoned").capacity()
    }

    /// Copies the newest sample into `out` (reusing `out`'s buffers — zero
    /// allocation once `out` has warmed to the shard count). False when the
    /// store is empty.
    pub fn latest_into(&self, out: &mut FleetSample) -> bool {
        let ring = self.ring.lock().expect("history ring poisoned");
        match ring.latest() {
            Some(sample) => {
                out.clone_from(sample);
                true
            }
            None => false,
        }
    }

    /// Runs `read` against the ring under the store lock — the escape hatch
    /// for whole-series consumers (dashboards, JSON dumps). Keep `read` short;
    /// producers block while it runs.
    pub fn with_ring<R>(&self, read: impl FnOnce(&SeriesRing) -> R) -> R {
        let ring = self.ring.lock().expect("history ring poisoned");
        read(&ring)
    }

    /// Materialises the fleet-level window reaching `lookback` behind the
    /// newest sample into `out`, without allocating. The left edge is the
    /// oldest resident sample within the horizon. False (and `out` untouched)
    /// when fewer than two samples qualify — windows need two edges.
    pub fn fleet_window_into(&self, lookback: Duration, out: &mut ServiceWindow) -> bool {
        let ring = self.ring.lock().expect("history ring poisoned");
        let Some(newest) = ring.latest() else {
            return false;
        };
        let horizon = newest.at.saturating_sub(lookback);
        let mut left = None;
        for age in 1..ring.len() {
            let sample = ring.get(age).expect("age < len");
            if sample.at < horizon {
                break;
            }
            left = Some(age);
        }
        let Some(age) = left else { return false };
        let older = ring.get(age).expect("age < len");
        out.set_between(&older.fleet, &newest.fleet, newest.at - older.at);
        true
    }

    /// Materialises shard `shard`'s window reaching `lookback` behind the
    /// newest sample into `out`, without allocating. Both edges must be live
    /// samples of the **same generation** as the newest edge — a recycled
    /// shard restarts its counters, so subtracting across a generation bump
    /// would manufacture negative (saturated-to-zero) garbage; instead the
    /// window simply shrinks to the new generation's history. False when the
    /// newest sample has no live entry for `shard` or no older same-generation
    /// sample exists within the horizon.
    pub fn shard_window_into(
        &self,
        shard: usize,
        lookback: Duration,
        out: &mut ShardWindow,
    ) -> bool {
        let ring = self.ring.lock().expect("history ring poisoned");
        let Some(newest) = ring.latest() else {
            return false;
        };
        let Some(current) = newest.shards.get(shard) else {
            return false;
        };
        if !current.live {
            return false;
        }
        let horizon = newest.at.saturating_sub(lookback);
        let mut left = None;
        for age in 1..ring.len() {
            let sample = ring.get(age).expect("age < len");
            if sample.at < horizon {
                break;
            }
            match sample.shards.get(shard) {
                Some(past) if past.live && past.generation == current.generation => {
                    left = Some(age);
                }
                // An older generation (or a gap with no live service) ends the
                // usable history for this generation.
                _ => break,
            }
        }
        let Some(age) = left else { return false };
        let older = ring.get(age).expect("age < len");
        let older_shard = &older.shards[shard];
        out.generation = current.generation;
        out.in_rotation = current.in_rotation;
        out.queue_depth = current.queue_depth;
        out.queue_capacity = current.queue_capacity;
        out.window.set_between(
            &older_shard.counters,
            &current.counters,
            newest.at - older.at,
        );
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::{ServiceCounters, ShardSample};

    fn record(store: &HistoryStore, millis: u64, completed: u64, generation: u64, live: bool) {
        store.record_with(|sample| {
            sample.reset(1);
            sample.at = Duration::from_millis(millis);
            sample.fleet.completed = completed;
            sample.shards[0] = ShardSample {
                live,
                generation,
                in_rotation: live,
                queue_depth: 3,
                queue_capacity: 64,
                counters: ServiceCounters {
                    completed,
                    ..Default::default()
                },
            };
        });
    }

    #[test]
    fn fleet_window_selects_oldest_sample_within_lookback() {
        let store = HistoryStore::new(8, 1);
        let mut window = ServiceWindow::default();
        assert!(!store.fleet_window_into(Duration::from_secs(1), &mut window));
        for (millis, completed) in [(0, 10), (100, 20), (200, 35), (300, 50)] {
            record(&store, millis, completed, 1, true);
        }
        // Lookback 150ms from t=300 admits t=200 and t=300 only.
        assert!(store.fleet_window_into(Duration::from_millis(150), &mut window));
        assert_eq!(window.completed, 15);
        assert_eq!(window.span, Duration::from_millis(100));
        // A huge lookback reaches the oldest resident sample.
        assert!(store.fleet_window_into(Duration::from_secs(60), &mut window));
        assert_eq!(window.completed, 40);
    }

    #[test]
    fn shard_window_stops_at_generation_bumps() {
        let store = HistoryStore::new(8, 1);
        record(&store, 0, 100, 1, true);
        record(&store, 100, 150, 1, true);
        // Generation bump: counters restart from zero.
        record(&store, 200, 5, 2, true);
        let mut window = ShardWindow::default();
        // Only one sample of generation 2 exists — no window yet.
        assert!(!store.shard_window_into(0, Duration::from_secs(1), &mut window));
        record(&store, 300, 20, 2, true);
        assert!(store.shard_window_into(0, Duration::from_secs(1), &mut window));
        assert_eq!(window.generation, 2);
        // The window is generation-2 only: 20 − 5, never 20 − 150.
        assert_eq!(window.window.completed, 15);
        assert_eq!(window.window.span, Duration::from_millis(100));
    }

    #[test]
    fn shard_window_requires_live_newest_edge() {
        let store = HistoryStore::new(8, 1);
        record(&store, 0, 10, 1, true);
        record(&store, 100, 20, 1, false);
        let mut window = ShardWindow::default();
        assert!(!store.shard_window_into(0, Duration::from_secs(1), &mut window));
    }
}
