//! Windowed views: exact interval statistics from cumulative sample deltas.
//!
//! Because samples store raw histogram *bucket arrays*, the distribution of
//! exactly the observations recorded between two samples is recoverable by
//! subtracting the arrays bucket-wise — no lifetime-cumulative smearing, no
//! decaying averages. [`LatencyWindow::quantile`] on such a delta equals (at
//! bucket resolution) the quantile of a fresh histogram fed only the window's
//! values; `tests/windows.rs` holds that equivalence as a property.
//!
//! All deltas saturate at zero: producers serialise samples behind the store
//! lock, so counters are monotone per series, but saturation keeps a torn or
//! misused pair from manufacturing astronomical rates.

use std::time::Duration;

use taxi_dispatch::{HistogramBuckets, LatencyHistogram, QualityBuckets, QualityHistogram};

use crate::sample::{ServiceCounters, BACKENDS};

/// Windowed latency distribution: bucket deltas between two cumulative
/// captures of the same [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyWindow {
    /// Observations per bucket inside the window.
    pub counts: [u64; LatencyHistogram::BUCKETS],
    /// Total observations inside the window.
    pub count: u64,
    /// Sum of the window's observations in nanoseconds.
    pub sum_nanos: u64,
    /// Upper bound on the window maximum (the newer edge's lifetime maximum —
    /// the window max itself is not recoverable from deltas).
    pub max_hint_nanos: u64,
}

impl Default for LatencyWindow {
    fn default() -> Self {
        Self {
            counts: [0; LatencyHistogram::BUCKETS],
            count: 0,
            sum_nanos: 0,
            max_hint_nanos: 0,
        }
    }
}

impl LatencyWindow {
    /// Fills `self` with `newer − older`, saturating, without allocating.
    pub fn set_between(&mut self, older: &HistogramBuckets, newer: &HistogramBuckets) {
        for (slot, (new, old)) in self
            .counts
            .iter_mut()
            .zip(newer.counts.iter().zip(&older.counts))
        {
            *slot = new.saturating_sub(*old);
        }
        self.count = newer.count.saturating_sub(older.count);
        self.sum_nanos = newer.sum_nanos.saturating_sub(older.sum_nanos);
        self.max_hint_nanos = newer.max_nanos;
    }

    /// The window between two captures, by value.
    pub fn between(older: &HistogramBuckets, newer: &HistogramBuckets) -> Self {
        let mut window = Self::default();
        window.set_between(older, newer);
        window
    }

    /// Estimated `q`-quantile of the window: the upper bound of the bucket
    /// holding the target rank, clamped to the lifetime maximum — conservative
    /// (never under-reports), exactly like the cumulative histogram's
    /// estimator. Zero when the window is empty.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let max = Duration::from_nanos(self.max_hint_nanos);
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &bucket) in self.counts.iter().enumerate() {
            seen += bucket;
            if seen >= target {
                if index == LatencyHistogram::BUCKETS - 1 {
                    return max;
                }
                return LatencyHistogram::bucket_upper(index).min(max);
            }
        }
        max
    }

    /// Mean of the window's observations. Zero when empty.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_nanos / self.count)
    }

    /// Observations **guaranteed** above `threshold`: the sum of buckets whose
    /// entire range lies above it. Exact when `threshold` is a power-of-two
    /// microsecond value (a bucket boundary); conservative (an undercount, so
    /// alert-averse) otherwise — align SLO latency targets to bucket
    /// boundaries for exact accounting.
    pub fn count_above(&self, threshold: Duration) -> u64 {
        let boundary = LatencyHistogram::bucket_of(threshold);
        self.counts.iter().skip(boundary + 1).sum()
    }

    /// Fraction of the window's observations above `threshold` (see
    /// [`count_above`](Self::count_above)). Zero when the window is empty.
    pub fn fraction_above(&self, threshold: Duration) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.count_above(threshold) as f64 / self.count as f64
    }
}

/// Windowed quality-ratio distribution: bucket deltas between two cumulative
/// captures of the same [`QualityHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QualityWindow {
    /// Ratios per bucket inside the window.
    pub counts: [u64; QualityHistogram::BUCKETS],
    /// Total ratios inside the window.
    pub count: u64,
    /// Sum of the window's ratios in millionths.
    pub sum_micro: u64,
    /// Upper bound on the window maximum (newer edge's lifetime max).
    pub max_hint_micro: u64,
}

impl QualityWindow {
    /// Fills `self` with `newer − older`, saturating, without allocating.
    pub fn set_between(&mut self, older: &QualityBuckets, newer: &QualityBuckets) {
        for (slot, (new, old)) in self
            .counts
            .iter_mut()
            .zip(newer.counts.iter().zip(&older.counts))
        {
            *slot = new.saturating_sub(*old);
        }
        self.count = newer.count.saturating_sub(older.count);
        self.sum_micro = newer.sum_micro.saturating_sub(older.sum_micro);
        self.max_hint_micro = newer.max_micro;
    }

    /// The window between two captures, by value.
    pub fn between(older: &QualityBuckets, newer: &QualityBuckets) -> Self {
        let mut window = Self::default();
        window.set_between(older, newer);
        window
    }

    /// Estimated `q`-quantile of the window: bucket upper bound clamped to the
    /// lifetime maximum, like the cumulative estimator. Zero when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let max = self.max_hint_micro as f64 * 1e-6;
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &bucket) in self.counts.iter().enumerate() {
            seen += bucket;
            if seen >= target {
                return match QualityHistogram::BOUNDS.get(index) {
                    Some(&bound) => bound.min(max),
                    None => max,
                };
            }
        }
        max
    }

    /// Mean ratio inside the window. Zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_micro as f64 * 1e-6 / self.count as f64
    }

    /// Ratios **guaranteed** above `max_ratio`: the sum of buckets entirely
    /// above it. Exact when `max_ratio` equals one of
    /// [`QualityHistogram::BOUNDS`]; conservative otherwise.
    pub fn count_above(&self, max_ratio: f64) -> u64 {
        let boundary = QualityHistogram::BOUNDS
            .iter()
            .position(|&bound| max_ratio <= bound)
            .unwrap_or(QualityHistogram::BOUNDS.len());
        self.counts.iter().skip(boundary + 1).sum()
    }

    /// Fraction of the window's ratios above `max_ratio`. Zero when empty.
    pub fn fraction_above(&self, max_ratio: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.count_above(max_ratio) as f64 / self.count as f64
    }
}

/// Per-backend windowed lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackendWindow {
    /// Solves routed to this backend inside the window.
    pub routed: u64,
    /// Windowed solve latency distribution.
    pub solve: LatencyWindow,
    /// Windowed quality-ratio distribution.
    pub quality: QualityWindow,
}

/// Full windowed view of one service (or the fleet aggregate): every scalar
/// counter delta plus the windowed histograms, over `span` of wall time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServiceWindow {
    /// Wall-clock span between the window's edges.
    pub span: Duration,
    /// Requests admitted inside the window.
    pub submitted: u64,
    /// Requests completed inside the window.
    pub completed: u64,
    /// Requests failed inside the window.
    pub failed: u64,
    /// Requests shed inside the window.
    pub shed: u64,
    /// Submissions rejected inside the window.
    pub rejected: u64,
    /// Degraded completions inside the window.
    pub degraded: u64,
    /// Deadline misses inside the window.
    pub deadline_misses: u64,
    /// Cache-served completions inside the window.
    pub cache_hits: u64,
    /// Coalesced completions inside the window.
    pub coalesced: u64,
    /// Contained worker panics inside the window.
    pub worker_panics: u64,
    /// Exploration-arm routed solves inside the window.
    pub explored: u64,
    /// Solution-cache lookup hits inside the window (0 without a cache).
    pub cache_lookup_hits: u64,
    /// Solution-cache lookup misses inside the window (0 without a cache).
    pub cache_lookup_misses: u64,
    /// Whether both window edges carried cache statistics.
    pub has_cache: bool,
    /// Windowed queue-wait latency.
    pub queue_wait: LatencyWindow,
    /// Windowed solve latency.
    pub solve: LatencyWindow,
    /// Windowed end-to-end latency.
    pub end_to_end: LatencyWindow,
    /// Windowed quality ratios.
    pub quality: QualityWindow,
    /// Per-backend windowed lanes, indexed like `SolverBackend::ALL`.
    pub per_backend: [BackendWindow; BACKENDS],
}

impl ServiceWindow {
    /// Fills `self` with the deltas `newer − older` over `span`, saturating,
    /// without allocating.
    pub fn set_between(
        &mut self,
        older: &ServiceCounters,
        newer: &ServiceCounters,
        span: Duration,
    ) {
        self.span = span;
        self.submitted = newer.submitted.saturating_sub(older.submitted);
        self.completed = newer.completed.saturating_sub(older.completed);
        self.failed = newer.failed.saturating_sub(older.failed);
        self.shed = newer.shed.saturating_sub(older.shed);
        self.rejected = newer.rejected.saturating_sub(older.rejected);
        self.degraded = newer.degraded.saturating_sub(older.degraded);
        self.deadline_misses = newer.deadline_misses.saturating_sub(older.deadline_misses);
        self.cache_hits = newer.cache_hits.saturating_sub(older.cache_hits);
        self.coalesced = newer.coalesced.saturating_sub(older.coalesced);
        self.worker_panics = newer.worker_panics.saturating_sub(older.worker_panics);
        self.explored = newer.explored.saturating_sub(older.explored);
        match (&older.cache, &newer.cache) {
            (Some(old), Some(new)) => {
                self.has_cache = true;
                self.cache_lookup_hits = new.hits.saturating_sub(old.hits);
                self.cache_lookup_misses = new.misses.saturating_sub(old.misses);
            }
            _ => {
                self.has_cache = false;
                self.cache_lookup_hits = 0;
                self.cache_lookup_misses = 0;
            }
        }
        self.queue_wait
            .set_between(&older.queue_wait, &newer.queue_wait);
        self.solve.set_between(&older.solve, &newer.solve);
        self.end_to_end
            .set_between(&older.end_to_end, &newer.end_to_end);
        self.quality.set_between(&older.quality, &newer.quality);
        for (lane, (old, new)) in self
            .per_backend
            .iter_mut()
            .zip(older.per_backend.iter().zip(&newer.per_backend))
        {
            lane.routed = new.routed.saturating_sub(old.routed);
            lane.solve.set_between(&old.solve, &new.solve);
            lane.quality.set_between(&old.quality, &new.quality);
        }
    }

    /// The window between two captures, by value.
    pub fn between(older: &ServiceCounters, newer: &ServiceCounters, span: Duration) -> Self {
        let mut window = Self::default();
        window.set_between(older, newer, span);
        window
    }

    /// Requests that reached a terminal outcome inside the window.
    pub fn resolved(&self) -> u64 {
        self.completed + self.failed + self.shed + self.rejected
    }

    /// Completions per second over the window span (0 for an empty span).
    pub fn throughput_per_sec(&self) -> f64 {
        per_second(self.completed, self.span)
    }

    /// Admissions per second over the window span (0 for an empty span).
    pub fn request_rate_per_sec(&self) -> f64 {
        per_second(self.submitted, self.span)
    }

    /// Shed fraction of admission pressure inside the window
    /// (`shed / (submitted + shed)`; 0 when nothing arrived).
    pub fn shed_rate(&self) -> f64 {
        ratio(self.shed, self.submitted + self.shed)
    }

    /// Deadline-miss fraction of completions inside the window.
    pub fn deadline_miss_rate(&self) -> f64 {
        ratio(self.deadline_misses, self.completed)
    }

    /// Failure fraction of resolved requests inside the window.
    pub fn failure_rate(&self) -> f64 {
        ratio(self.failed, self.resolved())
    }

    /// Cache hit rate over the window's lookups (0 without a cache).
    pub fn cache_hit_rate(&self) -> f64 {
        ratio(
            self.cache_lookup_hits,
            self.cache_lookup_hits + self.cache_lookup_misses,
        )
    }
}

fn per_second(count: u64, span: Duration) -> f64 {
    if span.is_zero() {
        0.0
    } else {
        count as f64 / span.as_secs_f64()
    }
}

fn ratio(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_window_deltas_match_direct_feed() {
        let cumulative = LatencyHistogram::new();
        for micros in [10u64, 50, 400] {
            cumulative.record(Duration::from_micros(micros));
        }
        let older = cumulative.buckets();
        let direct = LatencyHistogram::new();
        for micros in [20u64, 800, 3000, 90] {
            cumulative.record(Duration::from_micros(micros));
            direct.record(Duration::from_micros(micros));
        }
        let window = LatencyWindow::between(&older, &cumulative.buckets());
        assert_eq!(window.count, 4);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(window.quantile(q), direct.quantile(q), "q={q}");
        }
        assert_eq!(window.mean(), direct.mean());
    }

    #[test]
    fn count_above_is_exact_on_bucket_boundaries() {
        let h = LatencyHistogram::new();
        let older = h.buckets();
        for micros in [100u64, 1000, 1024, 1025, 5000, 100_000] {
            h.record(Duration::from_micros(micros));
        }
        let window = LatencyWindow::between(&older, &h.buckets());
        // 1024µs is a bucket boundary: observations strictly above it are
        // 1025, 5000 and 100000.
        assert_eq!(window.count_above(Duration::from_micros(1024)), 3);
        assert!((window.fraction_above(Duration::from_micros(1024)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quality_window_count_above_aligns_to_bounds() {
        let h = QualityHistogram::new();
        let older = h.buckets();
        for ratio in [1.0, 1.02, 1.04, 1.3, 2.5] {
            h.record(ratio);
        }
        let window = QualityWindow::between(&older, &h.buckets());
        // 1.05 is a bound: guaranteed-above are 1.3 (bucket (1.2, 1.5]) and
        // 2.5 (open bucket); 1.04 sits inside (1.02, 1.05] and is not counted.
        assert_eq!(window.count_above(1.05), 2);
        assert_eq!(window.count_above(2.0), 1);
    }

    #[test]
    fn service_window_rates() {
        let older = ServiceCounters {
            submitted: 10,
            completed: 8,
            shed: 1,
            ..Default::default()
        };
        let newer = ServiceCounters {
            submitted: 30,
            completed: 24,
            shed: 5,
            deadline_misses: 4,
            ..older
        };
        let window = ServiceWindow::between(&older, &newer, Duration::from_secs(2));
        assert_eq!(window.submitted, 20);
        assert_eq!(window.completed, 16);
        assert!((window.throughput_per_sec() - 8.0).abs() < 1e-12);
        assert!((window.shed_rate() - 4.0 / 24.0).abs() < 1e-12);
        assert!((window.deadline_miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn saturating_deltas_never_go_negative() {
        let older = ServiceCounters {
            completed: 100,
            ..Default::default()
        };
        let newer = ServiceCounters::default(); // reset (e.g. misuse across a generation)
        let window = ServiceWindow::between(&older, &newer, Duration::from_secs(1));
        assert_eq!(window.completed, 0);
    }
}
