//! Sample types: the point-in-time counter captures the ring stores.
//!
//! A [`FleetSample`] is a plain-old-data capture of every cumulative counter
//! and raw histogram bucket array of a fleet — fleet-wide totals plus one
//! [`ShardSample`] per shard. Samples are **cumulative**, not windowed: the
//! windowed views in [`window`](crate::window) are derived later by
//! subtracting two samples. Keeping the ring cumulative is what makes windows
//! of *any* span computable after the fact, and what makes recording cheap —
//! one relaxed atomic load per counter, no aggregation.

use std::time::Duration;

use taxi::{SolutionCacheStats, SolverBackend};
use taxi_dispatch::{HistogramBuckets, QualityBuckets, ServiceMetrics};

/// Number of routed solver backends (sizing for per-backend arrays).
pub const BACKENDS: usize = SolverBackend::ALL.len();

/// Per-backend cumulative capture: routed count plus the backend's solve
/// latency and quality-ratio bucket arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackendCounters {
    /// Fresh solves the router placed on this backend.
    pub routed: u64,
    /// Solve latency buckets of this backend's routed solves.
    pub solve: HistogramBuckets,
    /// Quality-ratio buckets of this backend's routed solves.
    pub quality: QualityBuckets,
}

/// Cumulative counter capture of one dispatch service (or a fleet-wide merge
/// of several): every scalar counter plus the raw bucket arrays of every
/// histogram, copied without allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceCounters {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests solved successfully.
    pub completed: u64,
    /// Requests whose solve failed.
    pub failed: u64,
    /// Requests shed by the admission policy.
    pub shed: u64,
    /// Submissions refused outright.
    pub rejected: u64,
    /// Completions served by the degraded backend.
    pub degraded: u64,
    /// Completions that resolved after their deadline.
    pub deadline_misses: u64,
    /// Completions served from the solution cache.
    pub cache_hits: u64,
    /// Completions coalesced onto another request's solve.
    pub coalesced: u64,
    /// Contained worker solve panics.
    pub worker_panics: u64,
    /// Routed solves placed by the exploration arm.
    pub explored: u64,
    /// Statistics of the attached solution cache, when one exists.
    pub cache: Option<SolutionCacheStats>,
    /// Queue-wait latency buckets.
    pub queue_wait: HistogramBuckets,
    /// Solve latency buckets.
    pub solve: HistogramBuckets,
    /// End-to-end latency buckets.
    pub end_to_end: HistogramBuckets,
    /// Quality-ratio buckets of routed solves.
    pub quality: QualityBuckets,
    /// Per-backend lanes, indexed like [`SolverBackend::ALL`].
    pub per_backend: [BackendCounters; BACKENDS],
}

impl Default for ServiceCounters {
    fn default() -> Self {
        Self {
            submitted: 0,
            completed: 0,
            failed: 0,
            shed: 0,
            rejected: 0,
            degraded: 0,
            deadline_misses: 0,
            cache_hits: 0,
            coalesced: 0,
            worker_panics: 0,
            explored: 0,
            cache: None,
            queue_wait: HistogramBuckets::default(),
            solve: HistogramBuckets::default(),
            end_to_end: HistogramBuckets::default(),
            quality: QualityBuckets::default(),
            per_backend: [BackendCounters::default(); BACKENDS],
        }
    }
}

fn add_hist(into: &mut HistogramBuckets, from: &HistogramBuckets) {
    for (mine, theirs) in into.counts.iter_mut().zip(&from.counts) {
        *mine += theirs;
    }
    into.count += from.count;
    into.sum_nanos = into.sum_nanos.saturating_add(from.sum_nanos);
    into.max_nanos = into.max_nanos.max(from.max_nanos);
}

fn add_quality(into: &mut QualityBuckets, from: &QualityBuckets) {
    for (mine, theirs) in into.counts.iter_mut().zip(&from.counts) {
        *mine += theirs;
    }
    into.count += from.count;
    into.sum_micro = into.sum_micro.saturating_add(from.sum_micro);
    into.max_micro = into.max_micro.max(from.max_micro);
}

fn add_cache(into: &mut Option<SolutionCacheStats>, from: &Option<SolutionCacheStats>) {
    let Some(theirs) = from else { return };
    let mine = into.get_or_insert_with(SolutionCacheStats::default);
    mine.hits += theirs.hits;
    mine.exact_hits += theirs.exact_hits;
    mine.remapped_hits += theirs.remapped_hits;
    mine.misses += theirs.misses;
    mine.insertions += theirs.insertions;
    mine.evictions += theirs.evictions;
    mine.expirations += theirs.expirations;
    mine.entries += theirs.entries;
    mine.bytes += theirs.bytes;
}

impl ServiceCounters {
    /// Resets every counter to zero (the accumulation identity).
    pub fn clear(&mut self) {
        *self = Self::default();
    }

    /// Captures every counter and raw histogram bucket of `metrics`, without
    /// allocating. The `cache` field is left `None` — a bare
    /// [`ServiceMetrics`] has no attached cache; callers that do have one
    /// assign it afterwards.
    pub fn fill_from(&mut self, metrics: &ServiceMetrics) {
        let snap = metrics.snapshot();
        self.submitted = snap.submitted;
        self.completed = snap.completed;
        self.failed = snap.failed;
        self.shed = snap.shed;
        self.rejected = snap.rejected;
        self.degraded = snap.degraded;
        self.deadline_misses = snap.deadline_misses;
        self.cache_hits = snap.cache_hits;
        self.coalesced = snap.coalesced;
        self.worker_panics = snap.worker_panics;
        self.explored = snap.explored;
        self.cache = None;
        metrics
            .queue_wait_histogram()
            .load_into(&mut self.queue_wait);
        metrics.solve_histogram().load_into(&mut self.solve);
        metrics
            .end_to_end_histogram()
            .load_into(&mut self.end_to_end);
        metrics.quality_histogram().load_into(&mut self.quality);
        for (index, backend) in SolverBackend::ALL.iter().enumerate() {
            let lane = &mut self.per_backend[index];
            lane.routed = snap.routed_per_backend[index];
            metrics
                .backend_solve_histogram(*backend)
                .load_into(&mut lane.solve);
            metrics
                .backend_quality_histogram(*backend)
                .load_into(&mut lane.quality);
        }
    }

    /// Adds `other` element-wise into `self` — the fleet-level aggregation
    /// (retired generations + every live shard) at capture time. Histograms
    /// add bucket-wise, so the aggregate is exact at bucket resolution.
    pub fn accumulate(&mut self, other: &Self) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.failed += other.failed;
        self.shed += other.shed;
        self.rejected += other.rejected;
        self.degraded += other.degraded;
        self.deadline_misses += other.deadline_misses;
        self.cache_hits += other.cache_hits;
        self.coalesced += other.coalesced;
        self.worker_panics += other.worker_panics;
        self.explored += other.explored;
        add_cache(&mut self.cache, &other.cache);
        add_hist(&mut self.queue_wait, &other.queue_wait);
        add_hist(&mut self.solve, &other.solve);
        add_hist(&mut self.end_to_end, &other.end_to_end);
        add_quality(&mut self.quality, &other.quality);
        for (mine, theirs) in self.per_backend.iter_mut().zip(&other.per_backend) {
            mine.routed += theirs.routed;
            add_hist(&mut mine.solve, &theirs.solve);
            add_quality(&mut mine.quality, &theirs.quality);
        }
    }
}

/// Cumulative capture of one shard at one instant.
///
/// Shard counters are **per-generation**: a recycled shard restarts its
/// service (and therefore its counters) from zero, which is why windowed
/// consumers must never subtract across a generation bump — the
/// [`HistoryStore`](crate::HistoryStore) guards this with the `generation`
/// field. The fleet-level [`FleetSample::fleet`] aggregate stays monotone
/// across bumps because retired generations are merged into it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ShardSample {
    /// Whether the shard had a live service at capture time (a `Failed` or
    /// `Stopped` shard has none; its slot records zeroes).
    pub live: bool,
    /// Service generation the counters belong to.
    pub generation: u64,
    /// Whether the shard was in the routing ring.
    pub in_rotation: bool,
    /// Instantaneous admission-queue depth.
    pub queue_depth: usize,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    /// The shard's cumulative counters (zeroed when not `live`).
    pub counters: ServiceCounters,
}

/// One ring slot: a full cumulative capture of the fleet at one instant.
#[derive(Debug, PartialEq)]
pub struct FleetSample {
    /// Monotonic capture timestamp — an offset on the sampled system's own
    /// clock (the fleet stamps its uptime). Windows are selected by comparing
    /// these offsets, so cadence jitter between producers is harmless.
    pub at: Duration,
    /// Fleet-wide aggregate: retired generations plus every live shard,
    /// merged bucket-exactly. Monotone non-decreasing across samples.
    pub fleet: ServiceCounters,
    /// Per-shard captures, indexed by shard.
    pub shards: Vec<ShardSample>,
}

// Hand-written so `clone_from` reuses the destination's shard buffer — the
// derived fallback (`*self = source.clone()`) reallocates the Vec, which
// would put an allocation on the steady-state record path
// (`tests/obs_alloc.rs` holds the zero-allocation property).
impl Clone for FleetSample {
    fn clone(&self) -> Self {
        Self {
            at: self.at,
            fleet: self.fleet,
            shards: self.shards.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.at = source.at;
        self.fleet = source.fleet;
        // `ShardSample` is plain `Copy` data: resize + copy never allocates
        // once the destination has warmed to the source's shard count.
        self.shards
            .resize(source.shards.len(), ShardSample::default());
        self.shards.copy_from_slice(&source.shards);
    }
}

impl FleetSample {
    /// Creates a zeroed sample with `shards` preallocated shard slots.
    pub fn new(shards: usize) -> Self {
        Self {
            at: Duration::ZERO,
            fleet: ServiceCounters::default(),
            shards: vec![ShardSample::default(); shards],
        }
    }

    /// Zeroes the sample in place, adjusting the shard slot count without
    /// reallocating when `shards` is within the existing capacity.
    pub fn reset(&mut self, shards: usize) {
        self.at = Duration::ZERO;
        self.fleet.clear();
        self.shards.resize(shards, ShardSample::default());
        for shard in &mut self.shards {
            *shard = ShardSample::default();
        }
    }
}

/// Anything a [`Scraper`](crate::Scraper) can sample: fills a [`FleetSample`]
/// in place (including its `at` timestamp) without allocating in steady
/// state. The fleet implements this over its control state.
pub trait SampleSource: Send + Sync {
    /// Captures the current cumulative counters into `sample`.
    fn sample_into(&self, sample: &mut FleetSample);
}
