//! The background scraper thread: samples a [`SampleSource`] into a
//! [`HistoryStore`] at a fixed cadence and evaluates the [`SloEngine`] after
//! every scrape.
//!
//! The scraper is deliberately dumb: no batching, no backpressure, no
//! skipping. Each tick is one `record_from` (which fills a preallocated ring
//! slot in place — zero allocation in steady state) plus one engine
//! evaluation (also allocation-free). Owners stop it explicitly or let `Drop`
//! join it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::sample::SampleSource;
use crate::slo::SloEngine;
use crate::store::HistoryStore;

/// Handle to the background scraper thread.
#[derive(Debug)]
pub struct Scraper {
    handle: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl Scraper {
    /// Spawns a scraper recording `source` into `store` every `interval`
    /// (clamped to ≥ 1ms) and evaluating `engine` after each scrape.
    pub fn spawn(
        interval: Duration,
        store: Arc<HistoryStore>,
        engine: Arc<Mutex<SloEngine>>,
        source: Arc<dyn SampleSource>,
    ) -> Self {
        let interval = interval.max(Duration::from_millis(1));
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("taxi-obs-scraper".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Acquire) {
                    store.record_from(&*source);
                    engine.lock().expect("slo engine poisoned").evaluate(&store);
                    std::thread::park_timeout(interval);
                }
            })
            .expect("spawn obs scraper thread");
        Self {
            handle: Some(handle),
            stop,
        }
    }

    /// Stops the thread and joins it. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

impl Drop for Scraper {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::FleetSample;
    use std::sync::atomic::AtomicU64;
    use std::time::Instant;

    struct TickSource {
        epoch: Instant,
        ticks: AtomicU64,
    }

    impl SampleSource for TickSource {
        fn sample_into(&self, sample: &mut FleetSample) {
            sample.reset(1);
            sample.at = self.epoch.elapsed();
            sample.fleet.completed = self.ticks.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn scraper_records_until_stopped() {
        let store = Arc::new(HistoryStore::new(16, 1));
        let engine = Arc::new(Mutex::new(SloEngine::new(Vec::new())));
        let source = Arc::new(TickSource {
            epoch: Instant::now(),
            ticks: AtomicU64::new(0),
        });
        let mut scraper = Scraper::spawn(
            Duration::from_millis(2),
            Arc::clone(&store),
            Arc::clone(&engine),
            source,
        );
        let deadline = Instant::now() + Duration::from_secs(5);
        while store.recorded() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        scraper.stop();
        let recorded = store.recorded();
        assert!(recorded >= 3, "scraper only recorded {recorded} samples");
        assert_eq!(engine.lock().unwrap().evaluations(), recorded);
        // Stopped means stopped.
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(store.recorded(), recorded);
    }
}
