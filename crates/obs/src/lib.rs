//! `taxi-obs` — time-series observability for the dispatch fleet.
//!
//! Everything the fleet exposed before this crate was *lifetime-cumulative*: a
//! [`ServiceSnapshot`](taxi_dispatch::ServiceSnapshot) tells you how many
//! requests ever completed, but not whether the shard is burning its error
//! budget *right now*. This crate adds the missing time axis:
//!
//! * [`SeriesRing`] — a fixed-capacity, overwrite-oldest ring of
//!   [`FleetSample`]s. Every slot is fully preallocated at construction, and
//!   recording fills slots **in place**, so the steady-state scrape path
//!   performs zero heap allocations (proven by `tests/obs_alloc.rs`, in the
//!   style of the trace and dispatch allocation tests).
//! * [`HistoryStore`] — the shared, thread-safe face of the ring. Producers
//!   (a background scraper thread, the fleet reconciler) record samples;
//!   consumers materialise **windowed** views: per-window request/shed/
//!   deadline-miss rates and *exact* windowed latency/quality percentiles
//!   computed from histogram **bucket deltas** — subtracting the cumulative
//!   bucket arrays at the window edges yields the precise distribution of just
//!   the observations inside the window (see [`ServiceWindow`]).
//! * [`SloEngine`] — declarative [`SloSpec`]s (availability, latency target,
//!   quality-ratio floor, deadline hits) with error budgets and multi-window
//!   burn-rate alerting: an alert fires only when the **fast and slow**
//!   windows both burn above threshold, and clears with hysteresis. The
//!   resulting [`SloStatus`]es are stamped into fleet snapshots.
//! * [`Scraper`] — the background thread gluing a [`SampleSource`] to the
//!   store at a configurable cadence, evaluating the SLO engine after every
//!   scrape.
//! * [`spark`] — text sparkline dashboards and a JSON time-series dump
//!   readable by `taxi_bench::json::parse`.
//!
//! The per-shard and per-backend windowed series ([`ShardWindow`],
//! [`BackendWindow`]) are the data feed for backend quarantine decisions
//! (ROADMAP item 1): "is this backend's windowed p99/quality collapsing on
//! this shard?" is answered here, not from lifetime aggregates.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use taxi_dispatch::ServiceMetrics;
//! use taxi_obs::{FleetSample, HistoryStore};
//!
//! let metrics = ServiceMetrics::new();
//! let store = HistoryStore::new(64, 1);
//! let mut at = Duration::ZERO;
//! let mut record = |metrics: &ServiceMetrics, at: Duration| {
//!     store.record_with(|sample: &mut FleetSample| {
//!         sample.at = at;
//!         sample.fleet.fill_from(metrics);
//!         sample.shards[0].live = true;
//!         sample.shards[0].counters = sample.fleet;
//!     });
//! };
//! record(&metrics, at);
//! for _ in 0..10 {
//!     metrics.record_submitted();
//!     metrics.record_completed(
//!         Duration::from_micros(5),
//!         Duration::from_micros(100),
//!         Duration::from_micros(120),
//!         false,
//!         false,
//!     );
//!     at += Duration::from_millis(10);
//!     record(&metrics, at);
//! }
//! let mut window = taxi_obs::ServiceWindow::default();
//! assert!(store.fleet_window_into(Duration::from_millis(50), &mut window));
//! assert_eq!(window.completed, 5); // exactly the completions inside the window
//! assert!(window.end_to_end.quantile(0.5) >= Duration::from_micros(120));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ring;
pub mod sample;
pub mod scraper;
pub mod slo;
pub mod spark;
pub mod store;
pub mod window;

pub use ring::SeriesRing;
pub use sample::{
    BackendCounters, FleetSample, SampleSource, ServiceCounters, ShardSample, BACKENDS,
};
pub use scraper::Scraper;
pub use slo::{AlertState, SloEngine, SloKind, SloSpec, SloStatus};
pub use store::{HistoryStore, ShardWindow};
pub use window::{BackendWindow, LatencyWindow, QualityWindow, ServiceWindow};
