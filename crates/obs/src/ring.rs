//! The fixed-capacity, overwrite-oldest sample ring.
//!
//! [`SeriesRing`] follows the data-acquisition discipline of a flight
//! recorder: a bounded buffer that always accepts the newest sample by
//! overwriting the oldest, with **every slot fully preallocated at
//! construction**. Recording fills the victim slot in place through a caller
//! closure, so after the first lap no push ever touches the heap — the
//! property `tests/obs_alloc.rs` proves with a counting allocator.

use crate::sample::FleetSample;

/// Fixed-capacity ring of [`FleetSample`]s, oldest-overwriting.
///
/// Single-writer by construction (the [`HistoryStore`](crate::HistoryStore)
/// serialises producers behind a mutex); readers access slots through the
/// same store. Indexing is by *age*: age 0 is the newest sample.
#[derive(Debug)]
pub struct SeriesRing {
    slots: Vec<FleetSample>,
    /// Total samples ever recorded; `recorded % capacity` is the next victim.
    recorded: u64,
}

impl SeriesRing {
    /// Creates a ring with `capacity` slots (clamped to at least 2 — a window
    /// needs two edges), each preallocated for `shards` shard slots.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(2);
        Self {
            slots: (0..capacity).map(|_| FleetSample::new(shards)).collect(),
            recorded: 0,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Samples currently resident (≤ capacity).
    pub fn len(&self) -> usize {
        self.recorded.min(self.slots.len() as u64) as usize
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.recorded == 0
    }

    /// Total samples ever recorded (monotone; `recorded - len` have been
    /// overwritten).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Records one sample by filling the oldest slot in place. The closure
    /// receives the victim slot with its previous contents — fillers must
    /// overwrite every field they use (or call [`FleetSample::reset`]), and
    /// must not allocate if the zero-allocation guarantee matters to them.
    pub fn push_with(&mut self, fill: impl FnOnce(&mut FleetSample)) {
        let index = (self.recorded % self.slots.len() as u64) as usize;
        fill(&mut self.slots[index]);
        self.recorded += 1;
    }

    /// The sample recorded `age` pushes ago (age 0 = newest). `None` when the
    /// ring holds fewer samples.
    pub fn get(&self, age: usize) -> Option<&FleetSample> {
        if age >= self.len() {
            return None;
        }
        let newest = (self.recorded - 1) % self.slots.len() as u64;
        let capacity = self.slots.len() as u64;
        let index = (newest + capacity - age as u64) % capacity;
        Some(&self.slots[index as usize])
    }

    /// The newest sample, if any.
    pub fn latest(&self) -> Option<&FleetSample> {
        self.get(0)
    }

    /// Iterates resident samples oldest → newest.
    pub fn iter_oldest_first(&self) -> impl Iterator<Item = &FleetSample> {
        (0..self.len()).rev().filter_map(|age| self.get(age))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn stamp(ring: &mut SeriesRing, millis: u64) {
        ring.push_with(|sample| sample.at = Duration::from_millis(millis));
    }

    #[test]
    fn overwrites_oldest_and_indexes_by_age() {
        let mut ring = SeriesRing::new(4, 1);
        assert!(ring.is_empty());
        for millis in 0..6 {
            stamp(&mut ring, millis);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.recorded(), 6);
        // Resident samples are 2, 3, 4, 5; age 0 is the newest.
        assert_eq!(ring.latest().unwrap().at, Duration::from_millis(5));
        assert_eq!(ring.get(3).unwrap().at, Duration::from_millis(2));
        assert!(ring.get(4).is_none());
        let order: Vec<u64> = ring
            .iter_oldest_first()
            .map(|s| s.at.as_millis() as u64)
            .collect();
        assert_eq!(order, vec![2, 3, 4, 5]);
    }

    #[test]
    fn capacity_clamps_to_two() {
        let ring = SeriesRing::new(0, 1);
        assert_eq!(ring.capacity(), 2);
    }
}
