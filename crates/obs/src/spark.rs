//! Text sparkline dashboard and JSON time-series dump.
//!
//! The display path is allowed to allocate (it builds strings); only the
//! record path is allocation-free. The JSON dump is deliberately plain —
//! cumulative series plus per-gap derived rates — and parses with
//! `taxi_bench::json::parse`, so bench harnesses and scripts can consume
//! fleet history without a JSON dependency.

use std::fmt::Write as _;

use crate::slo::{AlertState, SloStatus};
use crate::store::HistoryStore;
use crate::window::LatencyWindow;

/// Sparkline glyphs, lowest to highest.
const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a fixed-height sparkline, scaled min→max. An empty
/// slice renders empty; a flat series renders at the lowest level.
pub fn sparkline(values: &[f64]) -> String {
    let mut out = String::with_capacity(values.len() * 3);
    if values.is_empty() {
        return out;
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        let v = if v.is_finite() { v } else { 0.0 };
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let range = (hi - lo).max(f64::MIN_POSITIVE);
    for &v in values {
        let v = if v.is_finite() { v } else { 0.0 };
        let level = (((v - lo) / range) * (LEVELS.len() - 1) as f64).round() as usize;
        out.push(LEVELS[level.min(LEVELS.len() - 1)]);
    }
    out
}

/// Per-gap derived series extracted from the store for display and export.
struct Series {
    at_secs: Vec<f64>,
    submitted: Vec<u64>,
    completed: Vec<u64>,
    failed: Vec<u64>,
    shed: Vec<u64>,
    deadline_misses: Vec<u64>,
    // Derived, one entry per gap between consecutive samples.
    throughput: Vec<f64>,
    request_rate: Vec<f64>,
    miss_rate: Vec<f64>,
    shed_rate: Vec<f64>,
    p99_us: Vec<f64>,
    // Per shard: instantaneous queue depth and generation per sample.
    shard_queue_depth: Vec<Vec<u64>>,
    shard_generation: Vec<Vec<u64>>,
}

fn extract(store: &HistoryStore) -> Series {
    store.with_ring(|ring| {
        let len = ring.len();
        let shard_count = ring.latest().map_or(0, |s| s.shards.len());
        let mut series = Series {
            at_secs: Vec::with_capacity(len),
            submitted: Vec::with_capacity(len),
            completed: Vec::with_capacity(len),
            failed: Vec::with_capacity(len),
            shed: Vec::with_capacity(len),
            deadline_misses: Vec::with_capacity(len),
            throughput: Vec::new(),
            request_rate: Vec::new(),
            miss_rate: Vec::new(),
            shed_rate: Vec::new(),
            p99_us: Vec::new(),
            shard_queue_depth: vec![Vec::with_capacity(len); shard_count],
            shard_generation: vec![Vec::with_capacity(len); shard_count],
        };
        let mut prev: Option<&crate::sample::FleetSample> = None;
        for sample in ring.iter_oldest_first() {
            series.at_secs.push(sample.at.as_secs_f64());
            series.submitted.push(sample.fleet.submitted);
            series.completed.push(sample.fleet.completed);
            series.failed.push(sample.fleet.failed);
            series.shed.push(sample.fleet.shed);
            series.deadline_misses.push(sample.fleet.deadline_misses);
            for (index, shard) in sample.shards.iter().enumerate().take(shard_count) {
                series.shard_queue_depth[index].push(shard.queue_depth as u64);
                series.shard_generation[index].push(shard.generation);
            }
            if let Some(older) = prev {
                let span = sample.at.saturating_sub(older.at);
                let secs = span.as_secs_f64().max(f64::MIN_POSITIVE);
                let completed = sample.fleet.completed.saturating_sub(older.fleet.completed);
                let submitted = sample.fleet.submitted.saturating_sub(older.fleet.submitted);
                let shed = sample.fleet.shed.saturating_sub(older.fleet.shed);
                let misses = sample
                    .fleet
                    .deadline_misses
                    .saturating_sub(older.fleet.deadline_misses);
                series.throughput.push(completed as f64 / secs);
                series.request_rate.push(submitted as f64 / secs);
                series.miss_rate.push(if completed == 0 {
                    0.0
                } else {
                    misses as f64 / completed as f64
                });
                series.shed_rate.push(if submitted + shed == 0 {
                    0.0
                } else {
                    shed as f64 / (submitted + shed) as f64
                });
                let window =
                    LatencyWindow::between(&older.fleet.end_to_end, &sample.fleet.end_to_end);
                series
                    .p99_us
                    .push(window.quantile(0.99).as_secs_f64() * 1e6);
            }
            prev = Some(sample);
        }
        series
    })
}

fn tail(values: &[f64], width: usize) -> &[f64] {
    &values[values.len().saturating_sub(width)..]
}

/// Renders a text dashboard: one sparkline row per derived series (most
/// recent `width` gaps), per-shard queue-depth rows, and the alert table.
pub fn dashboard(store: &HistoryStore, statuses: &[SloStatus], width: usize) -> String {
    let series = extract(store);
    let samples = series.at_secs.len();
    let mut out = String::with_capacity(1024);
    let span = if samples >= 2 {
        series.at_secs[samples - 1] - series.at_secs[0]
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "fleet history: {samples} samples spanning {span:.1}s (recorded {}, capacity {})",
        store.recorded(),
        store.capacity(),
    );
    if samples < 2 {
        out.push_str("  (not enough samples for windows yet)\n");
        return out;
    }
    let rows: [(&str, &[f64], f64); 5] = [
        ("done/s", &series.throughput, 1.0),
        ("req/s", &series.request_rate, 1.0),
        ("p99 µs", &series.p99_us, 1.0),
        ("miss %", &series.miss_rate, 100.0),
        ("shed %", &series.shed_rate, 100.0),
    ];
    for (label, values, scale) in rows {
        let window = tail(values, width);
        let last = window.last().copied().unwrap_or(0.0) * scale;
        let _ = writeln!(out, "  {label:<7} {} last {last:.1}", sparkline(window));
    }
    for (index, depths) in series.shard_queue_depth.iter().enumerate() {
        let values: Vec<f64> = depths.iter().map(|&d| d as f64).collect();
        let window = tail(&values, width);
        let generation = series.shard_generation[index].last().copied().unwrap_or(0);
        let _ = writeln!(
            out,
            "  s{index} q     {} depth {:.0} gen {generation}",
            sparkline(window),
            window.last().copied().unwrap_or(0.0),
        );
    }
    if !statuses.is_empty() {
        out.push_str("  slo:\n");
        for status in statuses {
            let state = match status.state {
                AlertState::Firing => "FIRING",
                AlertState::Ok => "ok",
            };
            let _ = writeln!(
                out,
                "    {:<16} {state:<6} burn fast {:.2} / slow {:.2} (budget {:.3}%)",
                status.name,
                status.fast_burn,
                status.slow_burn,
                status.budget * 100.0,
            );
        }
    }
    out
}

fn push_f64_array(out: &mut String, key: &str, values: &[f64]) {
    let _ = write!(out, "\"{key}\":[");
    for (i, v) in values.iter().enumerate() {
        let v = if v.is_finite() { *v } else { 0.0 };
        let _ = write!(out, "{}{v:.3}", if i == 0 { "" } else { "," });
    }
    out.push(']');
}

fn push_u64_array(out: &mut String, key: &str, values: &[u64]) {
    let _ = write!(out, "\"{key}\":[");
    for (i, v) in values.iter().enumerate() {
        let _ = write!(out, "{}{v}", if i == 0 { "" } else { "," });
    }
    out.push(']');
}

/// Dumps the store as a JSON time-series object.
///
/// Cumulative series (`at_secs`, `completed`, …) have one entry per resident
/// sample; derived series (`throughput_per_sec`, `e2e_p99_us`, …) have one
/// entry per gap between consecutive samples (length − 1). The output parses
/// with `taxi_bench::json::parse`.
pub fn series_json(store: &HistoryStore, statuses: &[SloStatus]) -> String {
    let series = extract(store);
    let mut out = String::with_capacity(4096);
    let _ = write!(
        out,
        "{{\"samples\":{},\"recorded\":{},\"capacity\":{},\"series\":{{",
        series.at_secs.len(),
        store.recorded(),
        store.capacity(),
    );
    push_f64_array(&mut out, "at_secs", &series.at_secs);
    out.push(',');
    push_u64_array(&mut out, "submitted", &series.submitted);
    out.push(',');
    push_u64_array(&mut out, "completed", &series.completed);
    out.push(',');
    push_u64_array(&mut out, "failed", &series.failed);
    out.push(',');
    push_u64_array(&mut out, "shed", &series.shed);
    out.push(',');
    push_u64_array(&mut out, "deadline_misses", &series.deadline_misses);
    out.push(',');
    push_f64_array(&mut out, "throughput_per_sec", &series.throughput);
    out.push(',');
    push_f64_array(&mut out, "request_rate_per_sec", &series.request_rate);
    out.push(',');
    push_f64_array(&mut out, "deadline_miss_rate", &series.miss_rate);
    out.push(',');
    push_f64_array(&mut out, "shed_rate", &series.shed_rate);
    out.push(',');
    push_f64_array(&mut out, "e2e_p99_us", &series.p99_us);
    out.push_str("},\"shards\":[");
    for index in 0..series.shard_queue_depth.len() {
        if index > 0 {
            out.push(',');
        }
        out.push('{');
        push_u64_array(&mut out, "queue_depth", &series.shard_queue_depth[index]);
        out.push(',');
        push_u64_array(&mut out, "generation", &series.shard_generation[index]);
        out.push('}');
    }
    out.push_str("],\"alerts\":[");
    for (i, status) in statuses.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"firing\":{},\"fast_burn\":{:.4},\"slow_burn\":{:.4},\
             \"objective\":{:.6}}}",
            status.name.replace('\\', "\\\\").replace('"', "\\\""),
            status.state == AlertState::Firing,
            status.fast_burn,
            status.slow_burn,
            status.objective,
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::ShardSample;
    use crate::slo::SloSpec;
    use std::time::Duration;

    #[test]
    fn sparkline_scales_min_to_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0]), "▁");
        let line = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.starts_with('▁') && line.ends_with('█'));
        // Flat series render at the lowest level, not NaN garbage.
        assert_eq!(sparkline(&[3.0, 3.0, 3.0]), "▁▁▁");
    }

    fn seeded_store() -> HistoryStore {
        let store = HistoryStore::new(16, 2);
        for tick in 0..6u64 {
            store.record_with(|sample| {
                sample.reset(2);
                sample.at = Duration::from_millis(tick * 100);
                sample.fleet.submitted = tick * 12;
                sample.fleet.completed = tick * 10;
                sample.fleet.deadline_misses = tick;
                for (index, shard) in sample.shards.iter_mut().enumerate() {
                    *shard = ShardSample {
                        live: true,
                        generation: 1,
                        in_rotation: true,
                        queue_depth: tick as usize + index,
                        queue_capacity: 64,
                        ..Default::default()
                    };
                }
            });
        }
        store
    }

    #[test]
    fn dashboard_renders_rows_and_alerts() {
        let store = seeded_store();
        let spec = SloSpec::availability("avail", 0.999);
        let engine = crate::slo::SloEngine::new(vec![spec]);
        let text = dashboard(&store, engine.statuses(), 32);
        assert!(text.contains("6 samples"));
        assert!(text.contains("done/s"));
        assert!(text.contains("s1 q"));
        assert!(text.contains("avail"));
    }

    #[test]
    fn series_json_has_cumulative_and_derived_lengths() {
        let store = seeded_store();
        let json = series_json(&store, &[]);
        assert!(json.contains("\"samples\":6"));
        assert!(json.contains("\"completed\":[0,10,20,30,40,50]"));
        // Derived series are per-gap: 5 entries.
        let derived = json
            .split("\"throughput_per_sec\":[")
            .nth(1)
            .unwrap()
            .split(']')
            .next()
            .unwrap();
        assert_eq!(derived.split(',').count(), 5);
    }
}
