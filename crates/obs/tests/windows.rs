//! Integration properties of the windowed history store.
//!
//! Three claims the crate's design rests on, held here end-to-end through real
//! [`taxi_dispatch::ServiceMetrics`] captures:
//!
//! 1. **Bucket-delta percentiles are exact** (at bucket resolution): the
//!    quantiles of a window computed by subtracting cumulative bucket arrays
//!    equal the quantiles of a fresh histogram fed only the window's
//!    observations.
//! 2. **Racy capture stays per-series monotone**: with writer threads
//!    hammering the metrics while samples are recorded concurrently, every
//!    counter and every histogram bucket is non-decreasing across successive
//!    resident samples, and windows built from any adjacent pair stay sane.
//! 3. **Generation bumps never leak across a window**: a shard restart
//!    (counters reset to zero) shrinks the shard window to the new
//!    generation's history instead of manufacturing saturated garbage, and
//!    the property survives ring wrap-around.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use taxi::SolverBackend;
use taxi_dispatch::{LatencyHistogram, QualityHistogram, ServiceMetrics};
use taxi_obs::{HistoryStore, ServiceWindow, ShardWindow};

/// Deterministic mix so the tests need no RNG dependency.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Records one cumulative sample of `metrics` as a single-shard fleet.
fn record_sample(store: &HistoryStore, metrics: &ServiceMetrics, at: Duration) {
    store.record_with(|sample| {
        sample.reset(1);
        sample.at = at;
        sample.fleet.fill_from(metrics);
        sample.shards[0].live = true;
        sample.shards[0].generation = 1;
        sample.shards[0].in_rotation = true;
        sample.shards[0].counters = sample.fleet;
    });
}

#[test]
fn windowed_percentiles_match_a_directly_fed_histogram() {
    let metrics = ServiceMetrics::new();
    let store = HistoryStore::new(16, 1);
    let mut state = 0x9E3779B97F4A7C15u64;

    // Phase A: history that must NOT leak into the window. Latencies capped
    // well below phase B's ceiling so the lifetime maximum lands in phase B
    // (the window max hint is the newer edge's lifetime max).
    for _ in 0..300 {
        let micros = lcg(&mut state) % 1_500 + 1;
        metrics.record_submitted();
        metrics.record_completed(
            Duration::from_micros(micros / 10),
            Duration::from_micros(micros),
            Duration::from_micros(micros + micros / 10),
            false,
            false,
        );
        metrics.record_routed(
            SolverBackend::ALL[0],
            false,
            Some(1.0 + (lcg(&mut state) % 400) as f64 * 1e-3),
            Duration::from_micros(micros),
        );
    }
    record_sample(&store, &metrics, Duration::from_millis(100));

    // Phase B: every observation goes to the cumulative metrics AND to fresh
    // direct-fed histograms — the window must equal the direct feed.
    let direct_latency = LatencyHistogram::new();
    let direct_quality = QualityHistogram::new();
    for index in 0..500 {
        let micros = if index == 0 {
            30_000 // force the lifetime maximum into the window
        } else {
            lcg(&mut state) % 20_000 + 1
        };
        let end_to_end = Duration::from_micros(micros);
        metrics.record_submitted();
        metrics.record_completed(
            Duration::from_micros(micros / 10),
            Duration::from_micros(micros * 9 / 10),
            end_to_end,
            false,
            false,
        );
        direct_latency.record(end_to_end);
        let ratio = if index == 1 {
            3.5 // force the quality maximum into the window too
        } else {
            1.0 + (lcg(&mut state) % 2_000) as f64 * 1e-3
        };
        metrics.record_routed(
            SolverBackend::ALL[0],
            false,
            Some(ratio),
            Duration::from_micros(micros * 9 / 10),
        );
        direct_quality.record(ratio);
    }
    record_sample(&store, &metrics, Duration::from_millis(200));

    // Lookback 100ms from t=200 selects exactly the phase-A/phase-B pair.
    let mut window = ServiceWindow::default();
    assert!(store.fleet_window_into(Duration::from_millis(100), &mut window));
    assert_eq!(window.completed, 500);
    assert_eq!(window.end_to_end.count, 500);
    assert_eq!(window.quality.count, 500);
    for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
        assert_eq!(
            window.end_to_end.quantile(q),
            direct_latency.quantile(q),
            "latency quantile q={q}"
        );
        assert!(
            (window.quality.quantile(q) - direct_quality.quantile(q)).abs() < 1e-12,
            "quality quantile q={q}"
        );
    }
    assert_eq!(window.end_to_end.mean(), direct_latency.mean());
    assert!((window.quality.mean() - direct_quality.mean()).abs() < 1e-9);
    // The per-backend lane saw the same routed stream.
    assert_eq!(window.per_backend[0].routed, 500);
    assert_eq!(
        window.per_backend[0].quality.quantile(0.95),
        window.quality.quantile(0.95)
    );
}

#[test]
fn racy_capture_stays_per_series_monotone() {
    let metrics = Arc::new(ServiceMetrics::new());
    let store = HistoryStore::new(128, 1);
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..4u64)
        .map(|worker| {
            let metrics = Arc::clone(&metrics);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut state = 0x5851F42D4C957F2D ^ worker;
                while !stop.load(Ordering::Relaxed) {
                    let micros = lcg(&mut state) % 5_000 + 1;
                    metrics.record_submitted();
                    metrics.record_completed(
                        Duration::from_micros(micros / 8),
                        Duration::from_micros(micros),
                        Duration::from_micros(micros + micros / 8),
                        micros % 7 == 0,
                        micros % 11 == 0,
                    );
                }
            })
        })
        .collect();

    // Sample concurrently with the writers — captures are racy by design.
    for tick in 0..200u64 {
        record_sample(&store, &metrics, Duration::from_millis(tick));
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for writer in writers {
        writer.join().expect("writer thread");
    }
    record_sample(&store, &metrics, Duration::from_millis(200));

    assert_eq!(store.recorded(), 201);
    assert_eq!(store.len(), 128);
    store.with_ring(|ring| {
        for age in 1..ring.len() {
            let newer = ring.get(age - 1).expect("age-1 < len");
            let older = ring.get(age).expect("age < len");
            assert!(newer.at > older.at, "timestamps monotone");
            // Each atomic increments independently, so every series must be
            // monotone field-wise even though one capture can tear between
            // fields.
            assert!(newer.fleet.submitted >= older.fleet.submitted);
            assert!(newer.fleet.completed >= older.fleet.completed);
            assert!(newer.fleet.degraded >= older.fleet.degraded);
            assert!(newer.fleet.deadline_misses >= older.fleet.deadline_misses);
            assert!(newer.fleet.end_to_end.count >= older.fleet.end_to_end.count);
            assert!(newer.fleet.end_to_end.sum_nanos >= older.fleet.end_to_end.sum_nanos);
            for bucket in 0..LatencyHistogram::BUCKETS {
                assert!(
                    newer.fleet.end_to_end.counts[bucket] >= older.fleet.end_to_end.counts[bucket],
                    "bucket {bucket} decreased"
                );
            }
            // Any adjacent pair yields a sane window: quantiles are ordered
            // and bounded by the max hint, rates are finite fractions.
            let window = ServiceWindow::between(&older.fleet, &newer.fleet, newer.at - older.at);
            let p50 = window.end_to_end.quantile(0.5);
            let p99 = window.end_to_end.quantile(0.99);
            assert!(p50 <= p99);
            assert!(p99 <= Duration::from_nanos(window.end_to_end.max_hint_nanos));
            assert!((0.0..=1.0).contains(&window.deadline_miss_rate()));
            assert!((0.0..=1.0).contains(&window.shed_rate()));
        }
    });
}

#[test]
fn generation_bumps_never_leak_across_a_window_even_after_wrap() {
    let store = HistoryStore::new(4, 1);
    let record = |millis: u64, completed: u64, generation: u64| {
        store.record_with(|sample| {
            sample.reset(1);
            sample.at = Duration::from_millis(millis);
            // The fleet aggregate folds in retired generations, so it keeps
            // growing; only the shard counters reset on restart.
            sample.fleet.completed = 1_000 + millis;
            sample.shards[0].live = true;
            sample.shards[0].generation = generation;
            sample.shards[0].in_rotation = true;
            sample.shards[0].counters.completed = completed;
        });
    };

    // Generation 1 fills the ring and wraps it.
    for (tick, completed) in [
        (0u64, 100u64),
        (50, 220),
        (100, 380),
        (150, 500),
        (200, 640),
    ] {
        record(tick, completed, 1);
    }
    assert_eq!(store.recorded(), 5);
    assert_eq!(store.len(), 4);
    let mut shard = ShardWindow::default();
    assert!(store.shard_window_into(0, Duration::from_secs(60), &mut shard));
    assert_eq!(shard.generation, 1);
    assert_eq!(shard.window.completed, 640 - 220); // oldest resident edge

    // Restart: generation 2 begins from near zero. One sample of the new
    // generation is edge-less — no window, rather than a cross-generation one.
    record(250, 7, 2);
    assert!(!store.shard_window_into(0, Duration::from_secs(60), &mut shard));

    // Two samples in: the window is generation-2 only (25 − 7, never 25 − 640).
    record(300, 25, 2);
    assert!(store.shard_window_into(0, Duration::from_secs(60), &mut shard));
    assert_eq!(shard.generation, 2);
    assert_eq!(shard.window.completed, 18);
    assert_eq!(shard.window.span, Duration::from_millis(50));

    // The fleet-level window is unaffected by the shard restart: its series
    // kept growing, and a huge lookback reaches the oldest resident sample.
    let mut fleet = ServiceWindow::default();
    assert!(store.fleet_window_into(Duration::from_secs(60), &mut fleet));
    assert_eq!(fleet.completed, (1_000 + 300) - (1_000 + 150));

    // Keep recording generation 2 until generation 1 has fully left the ring:
    // the window now spans all resident generation-2 history.
    record(350, 60, 2);
    record(400, 90, 2);
    assert!(store.shard_window_into(0, Duration::from_secs(60), &mut shard));
    assert_eq!(shard.window.completed, 90 - 7);
    assert_eq!(shard.window.span, Duration::from_millis(150));
}
