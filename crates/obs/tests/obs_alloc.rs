//! Allocation-counting proof that the observability pipeline is
//! zero-allocation in steady state.
//!
//! The history store allocates at construction (ring slots, staging sample)
//! and the SLO engine when its specs are added (names, statuses) — that is
//! warm-up. After it, the entire scrape path — capturing a [`FleetSample`]
//! from a [`SampleSource`], recording it into the ring, materialising fleet
//! and shard windows, and evaluating every SLO rule — must perform **zero
//! heap allocations**, no matter how many times the ring wraps. That property
//! is what makes an always-on scraper safe at high cadence; this test is its
//! proof, in the style of `trace/tests/trace_alloc.rs`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use taxi::SolverBackend;
use taxi_dispatch::ServiceMetrics;
use taxi_obs::{
    FleetSample, HistoryStore, SampleSource, ServiceWindow, ShardWindow, SloEngine, SloSpec,
};

struct CountingAllocator;

// Per-thread counter (const-init `Cell<u64>` has no destructor and never
// allocates itself), so a concurrent libtest harness thread cannot pollute
// the measured region.
thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn count_one() {
    ALLOCATIONS.with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

const SHARDS: usize = 4;

/// A live metrics surface standing in for the fleet's control state: every
/// scrape captures the same cumulative [`ServiceMetrics`] into each shard
/// slot and stamps a monotone timestamp.
struct LiveSource {
    metrics: ServiceMetrics,
    ticks: AtomicU64,
}

impl SampleSource for LiveSource {
    fn sample_into(&self, sample: &mut FleetSample) {
        let tick = self.ticks.fetch_add(1, Ordering::Relaxed);
        sample.reset(SHARDS);
        sample.at = Duration::from_millis(tick * 10);
        sample.fleet.fill_from(&self.metrics);
        for shard in 0..SHARDS {
            sample.shards[shard].live = true;
            sample.shards[shard].generation = 1;
            sample.shards[shard].in_rotation = true;
            sample.shards[shard].queue_depth = 3;
            sample.shards[shard].queue_capacity = 64;
            sample.shards[shard].counters = sample.fleet;
        }
    }
}

/// One scrape tick's worth of traffic plus the full read-side surface.
fn tick(
    source: &LiveSource,
    store: &HistoryStore,
    engine: &mut SloEngine,
    fleet_window: &mut ServiceWindow,
    shard_window: &mut ShardWindow,
    latest: &mut FleetSample,
) {
    // Some live traffic between scrapes (atomic increments, never the heap).
    source.metrics.record_submitted();
    source.metrics.record_completed(
        Duration::from_micros(40),
        Duration::from_micros(900),
        Duration::from_micros(1_000),
        false,
        false,
    );
    source.metrics.record_routed(
        SolverBackend::ALL[0],
        false,
        Some(1.05),
        Duration::from_micros(900),
    );
    // Scrape → ring (through the staging slot, like the background scraper).
    store.record_from(source);
    // Window materialisation into preallocated outs.
    store.fleet_window_into(Duration::from_millis(50), fleet_window);
    for shard in 0..SHARDS {
        store.shard_window_into(shard, Duration::from_millis(50), shard_window);
    }
    store.latest_into(latest);
    // Every SLO rule, every tick.
    engine.evaluate(store);
}

#[test]
fn scrape_window_and_slo_evaluation_are_allocation_free_after_warmup() {
    // A small ring so the steady-state round wraps it many times over —
    // overwrite-oldest must not allocate either.
    let store = HistoryStore::new(32, SHARDS);
    let source = LiveSource {
        metrics: ServiceMetrics::new(),
        ticks: AtomicU64::new(0),
    };
    let mut engine = SloEngine::new(vec![
        SloSpec::availability("availability", 0.999),
        SloSpec::deadline_hits("deadline", 0.99),
        SloSpec::latency_below("p-latency", Duration::from_micros(1_024), 0.95),
        SloSpec::quality_below("quality", 1.2, 0.9),
    ]);
    let mut fleet_window = ServiceWindow::default();
    let mut shard_window = ShardWindow::default();
    let mut latest = FleetSample::new(SHARDS);

    // Warm-up: touch every code path (including ring wrap) once.
    for _ in 0..64 {
        tick(
            &source,
            &store,
            &mut engine,
            &mut fleet_window,
            &mut shard_window,
            &mut latest,
        );
    }

    // Steady state: scrape → ring → window → SLO must not touch the heap.
    let before = allocations();
    for _ in 0..2_000 {
        tick(
            &source,
            &store,
            &mut engine,
            &mut fleet_window,
            &mut shard_window,
            &mut latest,
        );
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "steady-state observability pipeline performed {delta} allocations"
    );

    assert_eq!(store.recorded(), 2_064);
    assert_eq!(store.len(), 32);
    assert_eq!(engine.evaluations(), 2_064);
    // The pipeline really measured traffic: the fleet window saw completions
    // and the healthy stream left every rule quiet.
    assert!(fleet_window.completed > 0);
    assert_eq!(engine.firing(), 0);
}
