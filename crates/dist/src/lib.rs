//! Shared compute-core primitives: flat distance matrices, NaN-safe float ordering,
//! and k-nearest-neighbor candidate lists.
//!
//! Every solver crate in the workspace used to carry its own `Vec<Vec<f64>>` distance
//! representation; the per-row heap indirection defeated hardware prefetching in the
//! hottest loops (annealing MACs, 2-opt scans, Held–Karp transitions). This crate owns
//! the replacement: [`DistanceMatrix`] stores one contiguous row-major buffer with a
//! stride, so a row is one cache-friendly slice and the whole matrix is one allocation.
//!
//! The crate is `std`-only and dependency-free on purpose — it sits below every other
//! workspace crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matrix;
mod neighbors;
mod order;

pub use matrix::{DistError, DistanceMatrix, DistanceMatrixF32};
pub use neighbors::NeighborLists;
pub use order::{argmin_slice, argmin_total, total_min};

/// Fixed lane width used by the explicitly chunked kernels in this workspace.
///
/// Four f64 lanes fill one AVX2 register; the chunked loops process `LANES`-wide array
/// temporaries that the autovectorizer can lower to SIMD without `unsafe` or nightly
/// features.
pub const LANES: usize = 4;
