//! Per-node k-nearest-neighbor candidate lists for pruned local search.
//!
//! Exhaustive 2-opt/Or-opt move generation is O(n²) per pass; almost all improving
//! moves connect cities that are already close, so restricting move generation to each
//! city's k nearest neighbors makes a pass O(n·k) with negligible quality loss. The
//! lists here are built either exactly from a distance matrix (small sub-problems) or
//! approximately from coordinates via uniform grid buckets (large instances, O(n·k)
//! build instead of O(n²)).

use crate::{DistanceMatrix, LANES};

/// Fixed-k candidate lists, stored as one flat `Vec<u32>` with stride `k`.
///
/// Node `i`'s candidates are `lists.neighbors(i)`, sorted by ascending distance
/// (ties broken by index, so builds are deterministic).
///
/// # Example
///
/// ```
/// use taxi_dist::{DistanceMatrix, NeighborLists};
///
/// let d = DistanceMatrix::from_fn(5, |i, j| (i as f64 - j as f64).abs());
/// let lists = NeighborLists::from_matrix(&d, 2);
/// assert_eq!(lists.neighbors(0), &[1, 2]);
/// assert_eq!(lists.neighbors(4), &[3, 2]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NeighborLists {
    k: usize,
    n: usize,
    /// Flat candidate storage, stride `k`; entries beyond a node's count are unused.
    neighbors: Vec<u32>,
    /// Valid candidates per node (`min(k, n - 1)` for matrix builds).
    counts: Vec<u32>,
}

impl NeighborLists {
    /// Builds exact k-nearest lists from a distance matrix (O(n² log n)).
    pub fn from_matrix(distances: &DistanceMatrix, k: usize) -> Self {
        let mut lists = Self::default();
        let mut scratch = Vec::new();
        lists.rebuild_from_matrix(distances, k, &mut scratch);
        lists
    }

    /// Re-builds exact k-nearest lists in place, reusing this value's buffers and the
    /// caller's `(distance, index)` scratch — allocation-free once warm.
    pub fn rebuild_from_matrix(
        &mut self,
        distances: &DistanceMatrix,
        k: usize,
        scratch: &mut Vec<(f64, u32)>,
    ) {
        let n = distances.n();
        let per_node = k.min(n.saturating_sub(1));
        self.reset(n, k);
        for i in 0..n {
            scratch.clear();
            let row = distances.row(i);
            scratch.extend(
                row.iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(j, &d)| (d, j as u32)),
            );
            Self::select_k(scratch, per_node);
            let base = i * k;
            for (slot, &(_, j)) in scratch.iter().take(per_node).enumerate() {
                self.neighbors[base + slot] = j;
            }
            self.counts[i] = per_node as u32;
        }
    }

    /// Builds approximate k-nearest lists from coordinates via uniform grid buckets.
    ///
    /// Points are bucketed into a √(n/2) × √(n/2) grid; each query expands square rings
    /// of cells until at least `k` candidates are seen, then one further ring, and the
    /// final `k` are selected by exact distance. The lists are deterministic and exact
    /// for uniformly spread inputs' near neighbors; pathological densities may miss a
    /// true neighbor, which pruned local search tolerates (it only shrinks the move
    /// set).
    pub fn from_points_grid(points: &[(f64, f64)], k: usize) -> Self {
        let n = points.len();
        let per_node = k.min(n.saturating_sub(1));
        let mut lists = Self::default();
        lists.reset(n, k);
        if per_node == 0 {
            return lists;
        }

        // Grid geometry: ~2 points per cell on average.
        let side = (((n as f64) / 2.0).sqrt().ceil() as usize).max(1);
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for &(x, y) in points {
            min_x = min_x.min(x);
            min_y = min_y.min(y);
            max_x = max_x.max(x);
            max_y = max_y.max(y);
        }
        let span_x = (max_x - min_x).max(f64::MIN_POSITIVE);
        let span_y = (max_y - min_y).max(f64::MIN_POSITIVE);
        let cell_of = |x: f64, y: f64| -> (usize, usize) {
            let cx = (((x - min_x) / span_x) * side as f64) as usize;
            let cy = (((y - min_y) / span_y) * side as f64) as usize;
            (cx.min(side - 1), cy.min(side - 1))
        };

        // Counting-sort points into buckets (one flat index array + offsets).
        let mut cell_counts = vec![0u32; side * side];
        for &(x, y) in points {
            let (cx, cy) = cell_of(x, y);
            cell_counts[cy * side + cx] += 1;
        }
        let mut offsets = vec![0u32; side * side + 1];
        for c in 0..side * side {
            offsets[c + 1] = offsets[c] + cell_counts[c];
        }
        let mut bucketed = vec![0u32; n];
        let mut cursor = offsets.clone();
        for (i, &(x, y)) in points.iter().enumerate() {
            let (cx, cy) = cell_of(x, y);
            let c = cy * side + cx;
            bucketed[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }

        let mut candidates: Vec<(f64, u32)> = Vec::with_capacity(4 * k);
        for (i, &(x, y)) in points.iter().enumerate() {
            let (cx, cy) = cell_of(x, y);
            candidates.clear();
            let mut ring = 0usize;
            let mut extra_ring = false;
            // Bounds of the box visited by the previous rings (cells inside it are
            // skipped, so boundary clamping never revisits a cell).
            let mut prev: Option<(usize, usize, usize, usize)> = None;
            loop {
                let lo_x = cx.saturating_sub(ring);
                let hi_x = (cx + ring).min(side - 1);
                let lo_y = cy.saturating_sub(ring);
                let hi_y = (cy + ring).min(side - 1);
                for gy in lo_y..=hi_y {
                    for gx in lo_x..=hi_x {
                        if let Some((plo_x, phi_x, plo_y, phi_y)) = prev {
                            if gx >= plo_x && gx <= phi_x && gy >= plo_y && gy <= phi_y {
                                continue;
                            }
                        }
                        let c = gy * side + gx;
                        for &j in &bucketed[offsets[c] as usize..offsets[c + 1] as usize] {
                            if j as usize == i {
                                continue;
                            }
                            let (px, py) = points[j as usize];
                            let d2 = (px - x) * (px - x) + (py - y) * (py - y);
                            candidates.push((d2, j));
                        }
                    }
                }
                prev = Some((lo_x, hi_x, lo_y, hi_y));
                let covers_grid = lo_x == 0 && lo_y == 0 && hi_x == side - 1 && hi_y == side - 1;
                if covers_grid || (extra_ring && candidates.len() >= per_node) {
                    break;
                }
                if candidates.len() >= per_node {
                    extra_ring = true;
                }
                ring += 1;
            }
            let take = per_node.min(candidates.len());
            Self::select_k(&mut candidates, take);
            let base = i * k;
            for (slot, &(_, j)) in candidates.iter().take(take).enumerate() {
                lists.neighbors[base + slot] = j;
            }
            lists.counts[i] = take as u32;
        }
        lists
    }

    /// Candidate neighbors of node `i`, ascending by distance.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[u32] {
        let base = i * self.k;
        &self.neighbors[base..base + self.counts[i] as usize]
    }

    /// The configured candidate budget per node.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of nodes the lists were built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the lists cover no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn reset(&mut self, n: usize, k: usize) {
        self.k = k;
        self.n = n;
        self.neighbors.clear();
        self.neighbors.resize(n * k, 0);
        self.counts.clear();
        self.counts.resize(n, 0);
    }

    /// Deterministic partial selection: after the call the first `k` entries of `items`
    /// are the k smallest, sorted ascending (ties by index).
    fn select_k(items: &mut [(f64, u32)], k: usize) {
        let by_dist =
            |a: &(f64, u32), b: &(f64, u32)| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1));
        if k == 0 {
            return;
        }
        if k < items.len() {
            items.select_nth_unstable_by(k - 1, by_dist);
            items[..k].sort_unstable_by(by_dist);
        } else {
            items.sort_unstable_by(by_dist);
        }
    }
}

/// Squared Euclidean distance helper used by the chunked scans in dependent crates
/// (kept here so the lane width stays consistent with [`LANES`]).
#[inline]
pub(crate) fn _lane_width_is_pow2() -> bool {
    LANES.is_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(w: usize, h: usize) -> Vec<(f64, f64)> {
        let mut pts = Vec::new();
        for y in 0..h {
            for x in 0..w {
                pts.push((x as f64, y as f64));
            }
        }
        pts
    }

    #[test]
    fn matrix_lists_are_exact_and_sorted() {
        let d = DistanceMatrix::from_fn(8, |i, j| ((i as f64 - j as f64).abs()).sqrt());
        let lists = NeighborLists::from_matrix(&d, 3);
        for i in 0..8 {
            let nb = lists.neighbors(i);
            assert_eq!(nb.len(), 3);
            for w in nb.windows(2) {
                assert!(d.get(i, w[0] as usize) <= d.get(i, w[1] as usize));
            }
            assert!(!nb.contains(&(i as u32)));
        }
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let d = DistanceMatrix::from_fn(3, |i, j| (i + j) as f64);
        let lists = NeighborLists::from_matrix(&d, 10);
        assert_eq!(lists.neighbors(0).len(), 2);
        assert_eq!(lists.k(), 10);
        assert_eq!(lists.len(), 3);
    }

    #[test]
    fn grid_lists_match_exact_lists_on_a_lattice() {
        let pts = grid_points(7, 6);
        let d = DistanceMatrix::from_fn(pts.len(), |i, j| {
            let (xi, yi) = pts[i];
            let (xj, yj) = pts[j];
            (xi - xj).hypot(yi - yj)
        });
        let exact = NeighborLists::from_matrix(&d, 4);
        let grid = NeighborLists::from_points_grid(&pts, 4);
        for i in 0..pts.len() {
            // Compare neighbor *distances*, not identities: equidistant lattice
            // neighbors may tie-break differently between the two builders.
            let ed: Vec<f64> = exact
                .neighbors(i)
                .iter()
                .map(|&j| d.get(i, j as usize))
                .collect();
            let gd: Vec<f64> = grid
                .neighbors(i)
                .iter()
                .map(|&j| d.get(i, j as usize))
                .collect();
            assert_eq!(ed, gd, "node {i}");
        }
    }

    #[test]
    fn identical_points_do_not_panic() {
        let pts = vec![(2.0, 2.0); 9];
        let lists = NeighborLists::from_points_grid(&pts, 3);
        for i in 0..9 {
            assert_eq!(lists.neighbors(i).len(), 3);
        }
    }

    #[test]
    fn singleton_and_empty_inputs() {
        assert!(NeighborLists::from_points_grid(&[], 4).is_empty());
        let one = NeighborLists::from_points_grid(&[(0.0, 0.0)], 4);
        assert_eq!(one.neighbors(0).len(), 0);
        assert!(_lane_width_is_pow2());
    }

    #[test]
    fn rebuild_reuses_buffers() {
        let d8 = DistanceMatrix::from_fn(8, |i, j| (i as f64 - j as f64).abs());
        let d4 = DistanceMatrix::from_fn(4, |i, j| (i as f64 - j as f64).abs());
        let mut lists = NeighborLists::from_matrix(&d8, 3);
        let mut scratch = Vec::new();
        lists.rebuild_from_matrix(&d4, 2, &mut scratch);
        assert_eq!(lists.len(), 4);
        assert_eq!(lists.neighbors(0), &[1, 2]);
    }
}
