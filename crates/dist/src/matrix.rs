//! The flat row-major distance matrix and its f32 mirror.

use std::fmt;

/// Side length of the square tiles used by the cache-blocked fill helpers.
///
/// A 32×32 f64 tile is 8 KiB — two tiles (the fill target plus the source geometry)
/// stay resident in a 32 KiB L1d while the generator walks the tile.
const BLOCK: usize = 32;

/// Errors produced when constructing a [`DistanceMatrix`] from untrusted input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// The row lengths do not form a square matrix.
    NotSquare {
        /// Number of rows supplied.
        rows: usize,
        /// Length of the first offending row.
        row_len: usize,
    },
    /// The flat buffer length is not `n * n`.
    BadLength {
        /// Declared matrix side.
        n: usize,
        /// Actual buffer length.
        len: usize,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::NotSquare { rows, row_len } => write!(
                f,
                "distance matrix must be square: {rows} rows but a row of length {row_len}"
            ),
            DistError::BadLength { n, len } => {
                write!(
                    f,
                    "flat buffer of length {len} cannot hold a {n}×{n} matrix"
                )
            }
        }
    }
}

impl std::error::Error for DistError {}

/// A square distance matrix stored as one contiguous row-major `Vec<f64>`.
///
/// Row `i` is the slice `data[i * n .. (i + 1) * n]`, so walking a row is a linear scan
/// over one allocation — no per-row pointer chasing. The buffer is reusable:
/// [`reset`](Self::reset) re-sizes in place, keeping capacity, so a matrix that has held
/// the largest sub-problem of a stream never re-allocates.
///
/// # Example
///
/// ```
/// use taxi_dist::DistanceMatrix;
///
/// let d = DistanceMatrix::from_fn(3, |i, j| (i as f64 - j as f64).abs());
/// assert_eq!(d.n(), 3);
/// assert_eq!(d.get(0, 2), 2.0);
/// assert_eq!(d.row(1), &[1.0, 0.0, 1.0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Creates an `n × n` matrix of zeros.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Builds an `n × n` matrix by evaluating `f(i, j)` for every cell.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(n);
        m.fill_with(&mut f);
        m
    }

    /// Validates and copies a ragged row representation.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::NotSquare`] unless every row has length `rows.len()`.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, DistError> {
        let n = rows.len();
        if let Some(bad) = rows.iter().find(|row| row.len() != n) {
            return Err(DistError::NotSquare {
                rows: n,
                row_len: bad.len(),
            });
        }
        let mut data = Vec::with_capacity(n * n);
        for row in rows {
            data.extend_from_slice(row);
        }
        Ok(Self { n, data })
    }

    /// Wraps an existing flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::BadLength`] if `data.len() != n * n`.
    pub fn from_flat(n: usize, data: Vec<f64>) -> Result<Self, DistError> {
        if data.len() != n * n {
            return Err(DistError::BadLength { n, len: data.len() });
        }
        Ok(Self { n, data })
    }

    /// Re-sizes the matrix in place to `n × n`, reusing the allocation. All cells are
    /// reset to zero.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.data.clear();
        self.data.resize(n * n, 0.0);
    }

    /// Matrix side length (number of cities).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Returns `true` for the empty (0 × 0) matrix.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The distance from `i` to `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.n);
        self.data[i * self.n + j]
    }

    /// Sets the distance from `i` to `j`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        debug_assert!(i < self.n && j < self.n);
        self.data[i * self.n + j] = value;
    }

    /// Row `i` as one contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// The whole matrix as one flat row-major slice.
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Iterator over the rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.n.max(1))
    }

    /// Copies the matrix out into the legacy ragged representation (tests, writers).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.rows().map(<[f64]>::to_vec).collect()
    }

    /// Fills every cell with `f(i, j)`, walking the matrix in cache-friendly
    /// 32×32 tiles: the generator's working set (two coordinate ranges per
    /// tile) stays L1-resident instead of streaming the full geometry once per row.
    pub fn fill_with(&mut self, f: &mut impl FnMut(usize, usize) -> f64) {
        let n = self.n;
        for bi in (0..n).step_by(BLOCK) {
            let i_end = (bi + BLOCK).min(n);
            for bj in (0..n).step_by(BLOCK) {
                let j_end = (bj + BLOCK).min(n);
                for i in bi..i_end {
                    let row = &mut self.data[i * n..(i + 1) * n];
                    for j in bj..j_end {
                        row[j] = f(i, j);
                    }
                }
            }
        }
    }

    /// Resets to `n × n` and fills with `f` in one pass (the streaming entry point used
    /// by the solve pipeline's reusable buffer).
    pub fn fill_from_fn(&mut self, n: usize, mut f: impl FnMut(usize, usize) -> f64) {
        self.reset(n);
        self.fill_with(&mut f);
    }

    /// The largest finite cell value, or 0.0 for an empty matrix.
    pub fn max_finite(&self) -> f64 {
        self.data
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .fold(0.0f64, f64::max)
    }
}

/// Single-precision mirror of a [`DistanceMatrix`] for bandwidth-bound fast paths.
///
/// Half the bytes per cell doubles the effective cache footprint of a sub-problem, and
/// f32 lanes pack 8-wide instead of 4-wide. The mirror is strictly opt-in: move
/// *selection* may read it, but acceptance arithmetic and reported lengths always use
/// the f64 source so default results stay bit-identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DistanceMatrixF32 {
    n: usize,
    data: Vec<f32>,
}

impl DistanceMatrixF32 {
    /// Builds the mirror by narrowing every cell of `source`.
    pub fn from_f64(source: &DistanceMatrix) -> Self {
        let mut m = Self::default();
        m.mirror(source);
        m
    }

    /// Re-fills the mirror in place from `source`, reusing the allocation.
    pub fn mirror(&mut self, source: &DistanceMatrix) {
        self.n = source.n();
        self.data.clear();
        self.data.extend(source.as_flat().iter().map(|&d| d as f32));
    }

    /// Matrix side length.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The narrowed distance from `i` to `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.n && j < self.n);
        self.data[i * self.n + j]
    }

    /// Row `i` as one contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.n..(i + 1) * self.n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_rejects_ragged_input() {
        let ragged = vec![vec![0.0, 1.0], vec![1.0]];
        assert!(matches!(
            DistanceMatrix::from_rows(&ragged),
            Err(DistError::NotSquare {
                rows: 2,
                row_len: 1
            })
        ));
    }

    #[test]
    fn from_flat_rejects_bad_length() {
        assert!(DistanceMatrix::from_flat(2, vec![0.0; 3]).is_err());
        assert!(DistanceMatrix::from_flat(2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn roundtrip_through_rows_is_lossless() {
        let d = DistanceMatrix::from_fn(5, |i, j| (i * 7 + j) as f64 * 0.25);
        let rows = d.to_rows();
        assert_eq!(DistanceMatrix::from_rows(&rows).unwrap(), d);
    }

    #[test]
    fn blocked_fill_matches_direct_indexing_beyond_one_block() {
        let n = BLOCK * 2 + 7; // force partial edge tiles
        let d = DistanceMatrix::from_fn(n, |i, j| (i as f64).mul_add(1e-3, j as f64));
        for i in [0, 1, BLOCK - 1, BLOCK, n - 1] {
            for j in [0, BLOCK, n - 2, n - 1] {
                assert_eq!(d.get(i, j), (i as f64).mul_add(1e-3, j as f64));
            }
        }
    }

    #[test]
    fn reset_reuses_capacity_and_zeroes() {
        let mut d = DistanceMatrix::from_fn(8, |_, _| 9.0);
        let cap = d.data.capacity();
        d.reset(4);
        assert_eq!(d.n(), 4);
        assert!(d.as_flat().iter().all(|&v| v == 0.0));
        assert_eq!(d.data.capacity(), cap);
    }

    #[test]
    fn empty_matrix_is_representable() {
        let d = DistanceMatrix::default();
        assert!(d.is_empty());
        assert_eq!(d.rows().count(), 0);
        assert_eq!(d.max_finite(), 0.0);
    }

    #[test]
    fn f32_mirror_narrows_every_cell() {
        let d = DistanceMatrix::from_fn(6, |i, j| (i + j) as f64 / 3.0);
        let m = DistanceMatrixF32::from_f64(&d);
        assert_eq!(m.n(), 6);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(m.get(i, j), d.get(i, j) as f32);
            }
        }
        assert_eq!(m.row(2).len(), 6);
    }

    #[test]
    fn max_finite_ignores_infinities_and_nan() {
        let d =
            DistanceMatrix::from_rows(&[vec![0.0, f64::INFINITY], vec![f64::NAN, 3.0]]).unwrap();
        assert_eq!(d.max_finite(), 3.0);
    }
}
