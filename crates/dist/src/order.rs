//! Total, NaN-safe float ordering helpers for argmin scans.
//!
//! The clustering and heuristic argmin loops used to compare distances with
//! `partial_cmp(..).unwrap_or(Equal)`, which silently mis-orders NaN and — in
//! `unwrap()` form — is a latent panic path. These helpers use [`f64::total_cmp`]
//! instead: every float has a defined place in the order (NaN sorts above `+∞`), so a
//! poisoned distance degrades into "never the minimum" deterministically. For finite
//! inputs the result is identical to the old comparisons.

use crate::LANES;

/// The smaller of `a` and `b` under IEEE total order (NaN sorts above `+∞`, so a NaN
/// argument is only returned when both arguments are NaN).
#[inline]
pub fn total_min(a: f64, b: f64) -> f64 {
    if b.total_cmp(&a) == std::cmp::Ordering::Less {
        b
    } else {
        a
    }
}

/// Index of the smallest value under IEEE total order; the first minimum wins ties.
/// Returns `None` for an empty iterator.
pub fn argmin_total(values: impl IntoIterator<Item = f64>) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, v) in values.into_iter().enumerate() {
        match &best {
            Some((_, b)) if v.total_cmp(b) != std::cmp::Ordering::Less => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Lane-chunked argmin over a contiguous slice; identical result to
/// [`argmin_total`] (first minimum wins), but the inner loop processes
/// [`LANES`]-wide chunks the autovectorizer can lower to SIMD compares.
pub fn argmin_slice(values: &[f64]) -> Option<usize> {
    if values.is_empty() {
        return None;
    }
    let mut best_idx = 0usize;
    let mut best = values[0];
    let chunks = values.chunks_exact(LANES);
    let remainder_start = values.len() - chunks.remainder().len();
    for (c, chunk) in chunks.enumerate() {
        // Reduce the chunk first (vectorizable), then fold into the running best.
        let mut lane_best = chunk[0];
        let mut lane_idx = 0usize;
        for (l, &v) in chunk.iter().enumerate().skip(1) {
            if v.total_cmp(&lane_best) == std::cmp::Ordering::Less {
                lane_best = v;
                lane_idx = l;
            }
        }
        if lane_best.total_cmp(&best) == std::cmp::Ordering::Less {
            best = lane_best;
            best_idx = c * LANES + lane_idx;
        }
    }
    for (i, &v) in values.iter().enumerate().skip(remainder_start) {
        if v.total_cmp(&best) == std::cmp::Ordering::Less {
            best = v;
            best_idx = i;
        }
    }
    Some(best_idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_min_prefers_non_nan() {
        assert_eq!(total_min(1.0, 2.0), 1.0);
        assert_eq!(total_min(f64::NAN, 2.0), 2.0);
        assert_eq!(total_min(2.0, f64::NAN), 2.0);
        assert!(total_min(f64::NAN, f64::NAN).is_nan());
        assert_eq!(total_min(f64::INFINITY, f64::NAN), f64::INFINITY);
    }

    #[test]
    fn argmin_total_first_minimum_wins() {
        assert_eq!(argmin_total([3.0, 1.0, 1.0, 2.0]), Some(1));
        assert_eq!(argmin_total([]), None);
        assert_eq!(argmin_total([f64::NAN, 5.0, f64::NAN]), Some(1));
        assert_eq!(argmin_total([f64::NAN, f64::NAN]), Some(0));
    }

    #[test]
    fn argmin_slice_matches_scalar_reference_on_odd_lengths() {
        for n in 0..40usize {
            let values: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 23) as f64 - 7.5).collect();
            assert_eq!(
                argmin_slice(&values),
                argmin_total(values.iter().copied()),
                "length {n}"
            );
        }
    }

    #[test]
    fn argmin_slice_skips_nan_lanes() {
        let mut values = vec![5.0; 13];
        values[3] = f64::NAN;
        values[9] = -1.0;
        assert_eq!(argmin_slice(&values), Some(9));
    }
}
