//! Property-based tests of the TSPLIB substrate: parser/writer round trips and distance
//! conventions.

use proptest::prelude::*;

use taxi_tsplib::{parse_tsp, tour_io, EdgeWeightKind, Tour, TspInstance};

fn coords_strategy(max_len: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-1000.0f64..1000.0, -1000.0f64..1000.0), 2..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Writing coordinates into `.tsp` text and parsing them back preserves every
    /// pairwise distance.
    #[test]
    fn tsp_text_round_trips(coords in coords_strategy(30)) {
        let original =
            TspInstance::from_coordinates("roundtrip", coords.clone(), EdgeWeightKind::Euc2d)
                .unwrap();
        let mut text = String::new();
        text.push_str("NAME: roundtrip\nTYPE: TSP\n");
        text.push_str(&format!("DIMENSION: {}\n", coords.len()));
        text.push_str("EDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n");
        for (i, (x, y)) in coords.iter().enumerate() {
            text.push_str(&format!("{} {} {}\n", i + 1, x, y));
        }
        text.push_str("EOF\n");
        let parsed = parse_tsp(&text).unwrap();
        prop_assert_eq!(parsed.dimension(), original.dimension());
        for i in 0..coords.len() {
            for j in 0..coords.len() {
                prop_assert!(
                    (parsed.distance_unchecked(i, j) - original.distance_unchecked(i, j)).abs()
                        < 1e-9
                );
            }
        }
    }

    /// All coordinate-based distance conventions are symmetric, non-negative and zero on
    /// the diagonal.
    #[test]
    fn distances_are_metric_like(coords in coords_strategy(15), kind_idx in 0usize..4) {
        let kind = [
            EdgeWeightKind::Euclidean,
            EdgeWeightKind::Euc2d,
            EdgeWeightKind::Ceil2d,
            EdgeWeightKind::Att,
        ][kind_idx];
        let instance = TspInstance::from_coordinates("metric", coords.clone(), kind).unwrap();
        for i in 0..coords.len() {
            prop_assert_eq!(instance.distance_unchecked(i, i), 0.0);
            for j in 0..coords.len() {
                let d = instance.distance_unchecked(i, j);
                prop_assert!(d >= 0.0);
                prop_assert!((d - instance.distance_unchecked(j, i)).abs() < 1e-9);
            }
        }
    }

    /// `.tour` files round-trip arbitrary permutations.
    #[test]
    fn tour_files_round_trip(perm in Just((0..25usize).collect::<Vec<_>>()).prop_shuffle()) {
        let tour = Tour::new(perm).unwrap();
        let text = tour_io::write_tour(&tour, "prop");
        let parsed = tour_io::parse_tour(&text).unwrap();
        prop_assert_eq!(parsed, tour);
    }

    /// `TspInstance::write_tsplib` → `parse_tsp` is an exact round trip for every
    /// coordinate-based edge-weight kind: bit-identical coordinates, kind, name and
    /// dimension (the writer uses Rust's shortest round-trip `f64` formatting).
    #[test]
    fn write_tsplib_round_trips_exactly(coords in coords_strategy(30), kind_idx in 0usize..5) {
        let kind = [
            EdgeWeightKind::Euclidean,
            EdgeWeightKind::Euc2d,
            EdgeWeightKind::Ceil2d,
            EdgeWeightKind::Att,
            EdgeWeightKind::Geo,
        ][kind_idx];
        let original = TspInstance::from_coordinates("snapshot", coords, kind).unwrap();
        let reparsed = parse_tsp(&original.write_tsplib()).unwrap();
        prop_assert_eq!(&reparsed, &original);
        prop_assert_eq!(reparsed.coordinates().unwrap(), original.coordinates().unwrap());
    }

    /// Explicit-matrix instances also round-trip bit-identically through the writer.
    #[test]
    fn write_tsplib_round_trips_explicit_matrices(coords in coords_strategy(12)) {
        // Derive a symmetric matrix from coordinates, then snapshot it explicitly.
        let base =
            TspInstance::from_coordinates("base", coords, EdgeWeightKind::Euclidean).unwrap();
        let original =
            TspInstance::from_matrix("explicit", base.full_distance_matrix()).unwrap();
        let reparsed = parse_tsp(&original.write_tsplib()).unwrap();
        prop_assert_eq!(&reparsed, &original);
    }

    /// Sub-matrix extraction agrees with direct distance queries.
    #[test]
    fn sub_matrix_agrees_with_distances(coords in coords_strategy(20)) {
        let instance =
            TspInstance::from_coordinates("sub", coords.clone(), EdgeWeightKind::Euclidean)
                .unwrap();
        let n = coords.len();
        let subset: Vec<usize> = (0..n).step_by(2).collect();
        let matrix = instance.distance_matrix_for(&subset).unwrap();
        for (a, &i) in subset.iter().enumerate() {
            for (b, &j) in subset.iter().enumerate() {
                prop_assert!((matrix[a][b] - instance.distance_unchecked(i, j)).abs() < 1e-12);
            }
        }
    }
}
