//! Property-based tests of the TSPLIB substrate: parser/writer round trips and distance
//! conventions.

use proptest::prelude::*;

use taxi_tsplib::{parse_tsp, tour_io, EdgeWeightKind, Tour, TspInstance};

fn coords_strategy(max_len: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-1000.0f64..1000.0, -1000.0f64..1000.0), 2..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Writing coordinates into `.tsp` text and parsing them back preserves every
    /// pairwise distance.
    #[test]
    fn tsp_text_round_trips(coords in coords_strategy(30)) {
        let original =
            TspInstance::from_coordinates("roundtrip", coords.clone(), EdgeWeightKind::Euc2d)
                .unwrap();
        let mut text = String::new();
        text.push_str("NAME: roundtrip\nTYPE: TSP\n");
        text.push_str(&format!("DIMENSION: {}\n", coords.len()));
        text.push_str("EDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n");
        for (i, (x, y)) in coords.iter().enumerate() {
            text.push_str(&format!("{} {} {}\n", i + 1, x, y));
        }
        text.push_str("EOF\n");
        let parsed = parse_tsp(&text).unwrap();
        prop_assert_eq!(parsed.dimension(), original.dimension());
        for i in 0..coords.len() {
            for j in 0..coords.len() {
                prop_assert!(
                    (parsed.distance_unchecked(i, j) - original.distance_unchecked(i, j)).abs()
                        < 1e-9
                );
            }
        }
    }

    /// All coordinate-based distance conventions are symmetric, non-negative and zero on
    /// the diagonal.
    #[test]
    fn distances_are_metric_like(coords in coords_strategy(15), kind_idx in 0usize..4) {
        let kind = [
            EdgeWeightKind::Euclidean,
            EdgeWeightKind::Euc2d,
            EdgeWeightKind::Ceil2d,
            EdgeWeightKind::Att,
        ][kind_idx];
        let instance = TspInstance::from_coordinates("metric", coords.clone(), kind).unwrap();
        for i in 0..coords.len() {
            prop_assert_eq!(instance.distance_unchecked(i, i), 0.0);
            for j in 0..coords.len() {
                let d = instance.distance_unchecked(i, j);
                prop_assert!(d >= 0.0);
                prop_assert!((d - instance.distance_unchecked(j, i)).abs() < 1e-9);
            }
        }
    }

    /// `.tour` files round-trip arbitrary permutations.
    #[test]
    fn tour_files_round_trip(perm in Just((0..25usize).collect::<Vec<_>>()).prop_shuffle()) {
        let tour = Tour::new(perm).unwrap();
        let text = tour_io::write_tour(&tour, "prop");
        let parsed = tour_io::parse_tour(&text).unwrap();
        prop_assert_eq!(parsed, tour);
    }

    /// `TspInstance::write_tsplib` → `parse_tsp` is an exact round trip for every
    /// coordinate-based edge-weight kind: bit-identical coordinates, kind, name and
    /// dimension (the writer uses Rust's shortest round-trip `f64` formatting).
    #[test]
    fn write_tsplib_round_trips_exactly(coords in coords_strategy(30), kind_idx in 0usize..5) {
        let kind = [
            EdgeWeightKind::Euclidean,
            EdgeWeightKind::Euc2d,
            EdgeWeightKind::Ceil2d,
            EdgeWeightKind::Att,
            EdgeWeightKind::Geo,
        ][kind_idx];
        let original = TspInstance::from_coordinates("snapshot", coords, kind).unwrap();
        let reparsed = parse_tsp(&original.write_tsplib()).unwrap();
        prop_assert_eq!(&reparsed, &original);
        prop_assert_eq!(reparsed.coordinates().unwrap(), original.coordinates().unwrap());
    }

    /// Explicit-matrix instances also round-trip bit-identically through the writer.
    #[test]
    fn write_tsplib_round_trips_explicit_matrices(coords in coords_strategy(12)) {
        // Derive a symmetric matrix from coordinates, then snapshot it explicitly.
        let base =
            TspInstance::from_coordinates("base", coords, EdgeWeightKind::Euclidean).unwrap();
        let original =
            TspInstance::from_matrix("explicit", base.full_distance_matrix()).unwrap();
        let reparsed = parse_tsp(&original.write_tsplib()).unwrap();
        prop_assert_eq!(&reparsed, &original);
    }

    /// Sub-matrix extraction agrees with direct distance queries.
    #[test]
    fn sub_matrix_agrees_with_distances(coords in coords_strategy(20)) {
        let instance =
            TspInstance::from_coordinates("sub", coords.clone(), EdgeWeightKind::Euclidean)
                .unwrap();
        let n = coords.len();
        let subset: Vec<usize> = (0..n).step_by(2).collect();
        let matrix = instance.distance_matrix_for(&subset).unwrap();
        for (a, &i) in subset.iter().enumerate() {
            for (b, &j) in subset.iter().enumerate() {
                prop_assert!((matrix.get(a, b) - instance.distance_unchecked(i, j)).abs() < 1e-12);
            }
        }
    }
}

/// A deterministic Fisher–Yates permutation of `0..n` derived from `seed` (the
/// vendored proptest subset has no shuffle strategy; a SplitMix-style LCG is plenty
/// for generating permutations).
fn seeded_permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        state
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Permuting city order never changes the canonical fingerprint, and the
    /// returned permutations map canonical positions of both submissions onto
    /// identical coordinates.
    #[test]
    fn canonical_fingerprint_is_permutation_invariant(
        coords in coords_strategy(25),
        seed in 0u64..1_000_000,
    ) {
        use taxi_tsplib::fingerprint::canonical_fingerprint;

        let original =
            TspInstance::from_coordinates("orig", coords.clone(), EdgeWeightKind::Euclidean)
                .unwrap();
        let perm = seeded_permutation(coords.len(), seed);
        let shuffled_coords: Vec<(f64, f64)> = perm.iter().map(|&i| coords[i]).collect();
        let shuffled =
            TspInstance::from_coordinates("shuf", shuffled_coords, EdgeWeightKind::Euclidean)
                .unwrap();

        let (fp_a, perm_a) = canonical_fingerprint(&original);
        let (fp_b, perm_b) = canonical_fingerprint(&shuffled);
        prop_assert_eq!(fp_a, fp_b);
        for k in 0..coords.len() {
            let ca = original.coordinates().unwrap()[perm_a[k] as usize];
            let cb = shuffled.coordinates().unwrap()[perm_b[k] as usize];
            prop_assert_eq!(ca, cb);
        }
        // The exact fingerprint, by contrast, tracks the stored order.
        use taxi_tsplib::fingerprint::exact_fingerprint;
        let same_order = TspInstance::from_coordinates(
            "copy",
            coords.clone(),
            EdgeWeightKind::Euclidean,
        )
        .unwrap();
        prop_assert_eq!(exact_fingerprint(&original), exact_fingerprint(&same_order));
    }

    /// Distinct geometries produced by the suite's generators never collide — for
    /// either fingerprint.
    #[test]
    fn distinct_generator_geometries_never_collide(
        seed_a in 0u64..5_000,
        seed_b in 0u64..5_000,
        n in 5usize..40,
    ) {
        use taxi_tsplib::fingerprint::{canonical_fingerprint, exact_fingerprint};
        use taxi_tsplib::generator::clustered_instance;

        prop_assume!(seed_a != seed_b);
        let a = clustered_instance("a", n, 3, seed_a);
        let b = clustered_instance("b", n, 3, seed_b);
        prop_assume!(a.coordinates() != b.coordinates());
        prop_assert_ne!(exact_fingerprint(&a), exact_fingerprint(&b));
        prop_assert_ne!(canonical_fingerprint(&a).0, canonical_fingerprint(&b).0);
    }

    /// The canonical permutation is always a valid permutation of `0..n`, so any
    /// cached tour remapped through it stays a valid tour.
    #[test]
    fn canonical_permutations_are_permutations(coords in coords_strategy(30)) {
        use taxi_tsplib::fingerprint::canonical_fingerprint;

        let instance =
            TspInstance::from_coordinates("perm", coords.clone(), EdgeWeightKind::Euclidean)
                .unwrap();
        let (_, perm) = canonical_fingerprint(&instance);
        let mut seen = vec![false; coords.len()];
        for &p in &perm {
            prop_assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
