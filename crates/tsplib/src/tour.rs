//! Tours (city visiting orders) and their evaluation.

use crate::{TspInstance, TsplibError};

/// A closed tour: a visiting order over all cities of an instance.
///
/// # Example
///
/// ```
/// use taxi_tsplib::{EdgeWeightKind, Tour, TspInstance};
///
/// let instance = TspInstance::from_coordinates(
///     "square",
///     vec![(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)],
///     EdgeWeightKind::Euclidean,
/// )?;
/// let perimeter = Tour::new(vec![0, 1, 2, 3])?;
/// let crossing = Tour::new(vec![0, 2, 1, 3])?;
/// assert!(perimeter.length(&instance) < crossing.length(&instance));
/// # Ok::<(), taxi_tsplib::TsplibError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tour {
    order: Vec<usize>,
}

impl Tour {
    /// Creates a tour from a visiting order, validating that it is a permutation.
    ///
    /// # Errors
    ///
    /// Returns [`TsplibError::Inconsistent`] if the order is empty, contains duplicates,
    /// or skips indices.
    pub fn new(order: Vec<usize>) -> Result<Self, TsplibError> {
        if order.is_empty() {
            return Err(TsplibError::Inconsistent {
                reason: "a tour must visit at least one city".to_string(),
            });
        }
        let n = order.len();
        let mut seen = vec![false; n];
        for &c in &order {
            if c >= n || seen[c] {
                return Err(TsplibError::Inconsistent {
                    reason: format!("visiting order is not a permutation (city {c})"),
                });
            }
            seen[c] = true;
        }
        Ok(Self { order })
    }

    /// The identity tour `0, 1, ..., n-1`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn identity(n: usize) -> Self {
        assert!(n > 0, "a tour must visit at least one city");
        Self {
            order: (0..n).collect(),
        }
    }

    /// The visiting order.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Number of cities visited.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` if the tour is empty (never true for constructed tours).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Returns `true` if the tour visits every city of `instance` exactly once.
    pub fn is_valid_for(&self, instance: &TspInstance) -> bool {
        self.order.len() == instance.dimension()
    }

    /// Total (cyclic) tour length under `instance`.
    ///
    /// # Panics
    ///
    /// Panics if the tour references cities outside the instance.
    pub fn length(&self, instance: &TspInstance) -> f64 {
        let n = self.order.len();
        if n < 2 {
            return 0.0;
        }
        (0..n)
            .map(|i| instance.distance_unchecked(self.order[i], self.order[(i + 1) % n]))
            .sum()
    }

    /// Ratio of this tour's length to a reference (e.g. optimal) length.
    ///
    /// # Panics
    ///
    /// Panics if `reference_length` is not strictly positive.
    pub fn optimal_ratio(&self, instance: &TspInstance, reference_length: f64) -> f64 {
        assert!(
            reference_length > 0.0,
            "reference length must be strictly positive"
        );
        self.length(instance) / reference_length
    }

    /// Rotates the tour so that `city` comes first (useful for canonical comparisons).
    ///
    /// # Errors
    ///
    /// Returns [`TsplibError::Inconsistent`] if the city is not part of the tour.
    pub fn rotated_to_start_at(&self, city: usize) -> Result<Tour, TsplibError> {
        let pos = self.order.iter().position(|&c| c == city).ok_or_else(|| {
            TsplibError::Inconsistent {
                reason: format!("city {city} is not part of the tour"),
            }
        })?;
        let mut order = Vec::with_capacity(self.order.len());
        order.extend_from_slice(&self.order[pos..]);
        order.extend_from_slice(&self.order[..pos]);
        Ok(Tour { order })
    }
}

impl AsRef<[usize]> for Tour {
    fn as_ref(&self) -> &[usize] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeWeightKind;

    fn unit_square() -> TspInstance {
        TspInstance::from_coordinates(
            "square",
            vec![(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)],
            EdgeWeightKind::Euclidean,
        )
        .unwrap()
    }

    #[test]
    fn rejects_non_permutations() {
        assert!(Tour::new(vec![]).is_err());
        assert!(Tour::new(vec![0, 0, 1]).is_err());
        assert!(Tour::new(vec![0, 1, 3]).is_err());
        assert!(Tour::new(vec![0, 1, 2]).is_ok());
    }

    #[test]
    fn identity_tour_is_valid() {
        let inst = unit_square();
        let tour = Tour::identity(4);
        assert!(tour.is_valid_for(&inst));
        assert_eq!(tour.len(), 4);
    }

    #[test]
    fn perimeter_length_is_four() {
        let inst = unit_square();
        let tour = Tour::identity(4);
        assert!((tour.length(&inst) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn optimal_ratio_is_relative() {
        let inst = unit_square();
        let crossing = Tour::new(vec![0, 2, 1, 3]).unwrap();
        let ratio = crossing.optimal_ratio(&inst, 4.0);
        assert!(ratio > 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_reference_is_rejected() {
        let inst = unit_square();
        Tour::identity(4).optimal_ratio(&inst, 0.0);
    }

    #[test]
    fn rotation_preserves_length() {
        let inst = unit_square();
        let tour = Tour::new(vec![2, 0, 3, 1]).unwrap();
        let rotated = tour.rotated_to_start_at(0).unwrap();
        assert_eq!(rotated.order()[0], 0);
        assert!((tour.length(&inst) - rotated.length(&inst)).abs() < 1e-12);
        assert!(tour.rotated_to_start_at(9).is_err());
    }

    #[test]
    fn single_city_tour_has_zero_length() {
        let inst =
            TspInstance::from_coordinates("one", vec![(5.0, 5.0)], EdgeWeightKind::Euclidean)
                .unwrap();
        assert_eq!(Tour::identity(1).length(&inst), 0.0);
    }
}
