//! Reading and writing TSPLIB `.tour` files.
//!
//! Downstream users who already work with TSPLIB tooling (Concorde, LKH, plotting
//! scripts) exchange solutions in the `.tour` format: a `TOUR_SECTION` listing 1-based
//! city indices terminated by `-1`. This module converts between that format and
//! [`Tour`].

use crate::{Tour, TsplibError};

/// Serialises a tour to TSPLIB `.tour` format.
///
/// # Example
///
/// ```
/// use taxi_tsplib::{tour_io, Tour};
///
/// let tour = Tour::new(vec![0, 2, 1])?;
/// let text = tour_io::write_tour(&tour, "tiny");
/// assert!(text.contains("TOUR_SECTION"));
/// let parsed = tour_io::parse_tour(&text)?;
/// assert_eq!(parsed, tour);
/// # Ok::<(), taxi_tsplib::TsplibError>(())
/// ```
pub fn write_tour(tour: &Tour, name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("NAME : {name}.tour\n"));
    out.push_str("TYPE : TOUR\n");
    out.push_str(&format!("DIMENSION : {}\n", tour.len()));
    out.push_str("TOUR_SECTION\n");
    for &city in tour.order() {
        out.push_str(&format!("{}\n", city + 1));
    }
    out.push_str("-1\nEOF\n");
    out
}

/// Parses a TSPLIB `.tour` file.
///
/// # Errors
///
/// Returns [`TsplibError::Parse`] for malformed indices and
/// [`TsplibError::Inconsistent`] when the listed cities do not form a permutation.
pub fn parse_tour(text: &str) -> Result<Tour, TsplibError> {
    let mut in_section = false;
    let mut order: Vec<usize> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let upper = line.to_ascii_uppercase();
        if upper.starts_with("TOUR_SECTION") {
            in_section = true;
            continue;
        }
        if !in_section {
            continue;
        }
        for token in line.split_whitespace() {
            if token == "-1" || token.eq_ignore_ascii_case("EOF") {
                return finish(order);
            }
            let index: i64 = token.parse().map_err(|_| TsplibError::Parse {
                line: Some(lineno + 1),
                reason: format!("invalid city index `{token}`"),
            })?;
            if index < 1 {
                return Err(TsplibError::Parse {
                    line: Some(lineno + 1),
                    reason: format!("city indices are 1-based, got {index}"),
                });
            }
            order.push((index - 1) as usize);
        }
    }
    finish(order)
}

fn finish(order: Vec<usize>) -> Result<Tour, TsplibError> {
    if order.is_empty() {
        return Err(TsplibError::Parse {
            line: None,
            reason: "tour file contains no TOUR_SECTION entries".to_string(),
        });
    }
    Tour::new(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_tour() {
        let tour = Tour::new(vec![3, 0, 2, 1, 4]).unwrap();
        let text = write_tour(&tour, "roundtrip");
        let parsed = parse_tour(&text).unwrap();
        assert_eq!(parsed, tour);
    }

    #[test]
    fn written_format_is_one_based() {
        let tour = Tour::new(vec![0, 1]).unwrap();
        let text = write_tour(&tour, "t");
        assert!(text.contains("\n1\n2\n-1\n"));
        assert!(text.contains("DIMENSION : 2"));
    }

    #[test]
    fn parses_indices_spread_over_lines() {
        let text = "NAME: x\nTYPE: TOUR\nDIMENSION: 4\nTOUR_SECTION\n1 3\n2\n4\n-1\nEOF\n";
        let tour = parse_tour(text).unwrap();
        assert_eq!(tour.order(), &[0, 2, 1, 3]);
    }

    #[test]
    fn rejects_zero_and_negative_indices() {
        let text = "TOUR_SECTION\n0\n-1\n";
        assert!(parse_tour(text).is_err());
        let text = "TOUR_SECTION\n-3\n-1\n";
        assert!(parse_tour(text).is_err());
    }

    #[test]
    fn rejects_duplicate_cities() {
        let text = "TOUR_SECTION\n1\n2\n2\n-1\n";
        assert!(matches!(
            parse_tour(text),
            Err(TsplibError::Inconsistent { .. })
        ));
    }

    #[test]
    fn rejects_missing_section() {
        assert!(parse_tour("NAME: x\nEOF\n").is_err());
    }

    #[test]
    fn missing_terminator_still_parses() {
        let text = "TOUR_SECTION\n2\n1\n3\n";
        let tour = parse_tour(text).unwrap();
        assert_eq!(tour.order(), &[1, 0, 2]);
    }
}
