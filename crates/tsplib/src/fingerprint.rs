//! Instance fingerprinting: compact, deterministic identities for TSP instances.
//!
//! The serving layer (`taxi-cache` / `taxi::cache`) memoises solved tours, which
//! requires answering "have I seen this instance before?" without comparing whole
//! coordinate lists. Two fingerprints are provided:
//!
//! * [`exact_fingerprint`] — a 128-bit hash of the instance's **semantic payload
//!   bytes** (edge-weight convention, dimension, and the raw IEEE-754 bit patterns of
//!   every coordinate — or every matrix entry — in stored order). Two instances share
//!   an exact fingerprint iff they would behave identically under every index-based
//!   API. The instance *name* is deliberately excluded: a cache must recognise the
//!   same geometry resubmitted under a different label.
//! * [`canonical_fingerprint`] — a 128-bit hash that is **invariant under city-index
//!   permutation**: cities are sorted into a canonical order (by coordinate bit
//!   pattern) before hashing, and the sort permutation is returned so a tour solved
//!   under one indexing can be remapped into any other indexing of the same geometry.
//!   Remapping preserves tour cost **bit-for-bit**: the remapped tour visits the same
//!   physical coordinates in the same order, so every distance term — and their sum —
//!   is the identical `f64`.
//!
//! Both fingerprints hash raw `f64` bit patterns, so they distinguish geometries that
//! differ by even one ULP (the safe direction for a cache that promises bit-identical
//! answers). For *near*-duplicate detection, [`quantized_fingerprint`] snaps
//! coordinates to a caller-chosen grid first — useful for similarity analytics, but
//! never used as a serving-cache key precisely because it would break bit-identity.
//!
//! The hash is a fixed-key 128-bit mixing function (two independent 64-bit
//! SplitMix-style lanes), stable across processes and platforms. It is not
//! cryptographic; it is collision-resistant in the "adversary-free workload" sense a
//! solution cache needs (the suite's property tests drive distinct generator
//! geometries into it and assert zero collisions).
//!
//! # Example
//!
//! ```
//! use taxi_tsplib::fingerprint::{canonical_fingerprint, exact_fingerprint};
//! use taxi_tsplib::{EdgeWeightKind, TspInstance};
//!
//! let a = TspInstance::from_coordinates(
//!     "a",
//!     vec![(0.0, 0.0), (3.0, 0.0), (3.0, 4.0)],
//!     EdgeWeightKind::Euclidean,
//! )?;
//! // The same cities submitted in a different order, under a different name.
//! let b = TspInstance::from_coordinates(
//!     "b",
//!     vec![(3.0, 4.0), (0.0, 0.0), (3.0, 0.0)],
//!     EdgeWeightKind::Euclidean,
//! )?;
//! assert_ne!(exact_fingerprint(&a), exact_fingerprint(&b));
//! let (fp_a, _) = canonical_fingerprint(&a);
//! let (fp_b, perm_b) = canonical_fingerprint(&b);
//! assert_eq!(fp_a, fp_b);
//! assert_eq!(perm_b.len(), 3);
//! # Ok::<(), taxi_tsplib::TsplibError>(())
//! ```

use crate::{EdgeWeightKind, TspInstance};

/// A 128-bit instance fingerprint (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Reconstructs a fingerprint from its raw 128-bit value (the inverse of
    /// [`as_u128`](Self::as_u128)). Used by snapshot/restore paths that persist
    /// fingerprints as plain integers; the value carries no validity invariant
    /// beyond being the bits of a previously computed fingerprint.
    pub fn from_u128(value: u128) -> Self {
        Self(value)
    }

    /// Derives a new fingerprint by mixing `salt` into this one. Used by the solution
    /// cache to scope instance fingerprints to a solver configuration: the same
    /// geometry solved under different configurations must occupy different cache
    /// slots.
    #[must_use]
    pub fn mixed_with(self, salt: u64) -> Fingerprint {
        let mut mixer = Mixer::new();
        mixer.write((self.0 >> 64) as u64);
        mixer.write(self.0 as u64);
        mixer.write(salt);
        mixer.finish()
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Two independent SplitMix64-style lanes folded into a 128-bit digest. Fixed keys:
/// stable across processes, platforms and compiler versions.
struct Mixer {
    a: u64,
    b: u64,
}

impl Mixer {
    fn new() -> Self {
        Self {
            // Arbitrary distinct non-zero lane seeds (hex digits of e and pi).
            a: 0xADF8_5458_A2BB_4A9A,
            b: 0x2432_6451_58B6_9A3F,
        }
    }

    fn write(&mut self, value: u64) {
        self.a = mix64(self.a, value);
        // The second lane sees the value under a different injection so the lanes
        // stay independent.
        self.b = mix64(self.b, value ^ 0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> Fingerprint {
        // One finalising round per lane so trailing writes diffuse fully.
        let a = mix64(self.a, 0x1);
        let b = mix64(self.b, 0x2);
        Fingerprint((u128::from(a) << 64) | u128::from(b))
    }
}

/// One SplitMix64-style absorb-and-scramble round.
fn mix64(state: u64, value: u64) -> u64 {
    let mut x = state ^ value.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn kind_tag(kind: EdgeWeightKind) -> u64 {
    match kind {
        EdgeWeightKind::Euc2d => 1,
        EdgeWeightKind::Ceil2d => 2,
        EdgeWeightKind::Att => 3,
        EdgeWeightKind::Geo => 4,
        EdgeWeightKind::Euclidean => 5,
        EdgeWeightKind::Explicit => 6,
    }
}

/// Reusable scratch for allocation-free canonical fingerprinting.
///
/// [`canonical_fingerprint_into`] sorts city indices into canonical order inside this
/// scratch; once the buffer has grown to the largest instance seen, repeated calls
/// perform **no heap allocation** (the serving cache's hit path relies on this).
/// After a call, [`permutation`](Self::permutation) exposes the canonical→instance
/// index mapping.
#[derive(Debug, Default)]
pub struct FingerprintScratch {
    perm: Vec<u32>,
}

impl FingerprintScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The permutation produced by the most recent [`canonical_fingerprint_into`]
    /// call: `permutation()[k]` is the **instance index** of the city at canonical
    /// position `k`.
    pub fn permutation(&self) -> &[u32] {
        &self.perm
    }
}

/// Hashes the instance's semantic payload in stored index order (see the
/// [module docs](self)). The instance name is excluded.
pub fn exact_fingerprint(instance: &TspInstance) -> Fingerprint {
    let mut mixer = Mixer::new();
    mixer.write(kind_tag(instance.edge_weight_kind()));
    mixer.write(instance.dimension() as u64);
    match instance.coordinates() {
        Some(coords) => {
            for &(x, y) in coords {
                mixer.write(x.to_bits());
                mixer.write(y.to_bits());
            }
        }
        None => {
            let n = instance.dimension();
            for i in 0..n {
                for j in 0..n {
                    mixer.write(instance.distance_unchecked(i, j).to_bits());
                }
            }
        }
    }
    mixer.finish()
}

/// Allocating convenience form of [`canonical_fingerprint_into`]: returns the
/// fingerprint and an owned copy of the canonical permutation.
pub fn canonical_fingerprint(instance: &TspInstance) -> (Fingerprint, Vec<u32>) {
    let mut scratch = FingerprintScratch::new();
    let fingerprint = canonical_fingerprint_into(instance, &mut scratch);
    (fingerprint, scratch.perm)
}

/// Computes the permutation-invariant canonical fingerprint of `instance`, leaving
/// the canonical permutation in `scratch` (see
/// [`FingerprintScratch::permutation`]).
///
/// Cities are ordered by their coordinate bit patterns (`x` then `y`,
/// [`f64::total_cmp`]), with the instance index as the final tie-break so the
/// permutation is fully deterministic. Duplicate coordinates may therefore occupy
/// either canonical slot across differently-ordered submissions — harmless, because
/// equal coordinates hash identically and are interchangeable in any tour.
///
/// Explicit-matrix instances have no coordinate geometry to canonicalise (matrix
/// canonicalisation is graph isomorphism); their canonical fingerprint equals the
/// exact one and the permutation is the identity.
pub fn canonical_fingerprint_into(
    instance: &TspInstance,
    scratch: &mut FingerprintScratch,
) -> Fingerprint {
    let n = instance.dimension();
    assert!(n <= u32::MAX as usize, "instance dimension exceeds u32");
    scratch.perm.clear();
    scratch.perm.extend(0..n as u32);
    let Some(coords) = instance.coordinates() else {
        return exact_fingerprint(instance);
    };
    scratch.perm.sort_unstable_by(|&i, &j| {
        let (xi, yi) = coords[i as usize];
        let (xj, yj) = coords[j as usize];
        xi.total_cmp(&xj)
            .then_with(|| yi.total_cmp(&yj))
            .then_with(|| i.cmp(&j))
    });
    let mut mixer = Mixer::new();
    mixer.write(kind_tag(instance.edge_weight_kind()));
    mixer.write(n as u64);
    for &k in &scratch.perm {
        let (x, y) = coords[k as usize];
        mixer.write(x.to_bits());
        mixer.write(y.to_bits());
    }
    mixer.finish()
}

/// Permutation-invariant fingerprint with coordinates snapped to a `quantum`-spaced
/// grid before hashing: instances whose cities agree within the grid tolerance share
/// a fingerprint. For near-duplicate *detection only* — a serving cache must never
/// key bit-identical answers by a lossy fingerprint.
///
/// # Panics
///
/// Panics if `quantum` is not strictly positive and finite.
pub fn quantized_fingerprint(instance: &TspInstance, quantum: f64) -> Fingerprint {
    assert!(
        quantum.is_finite() && quantum > 0.0,
        "quantum must be positive and finite"
    );
    let Some(coords) = instance.coordinates() else {
        return exact_fingerprint(instance);
    };
    let snap = |v: f64| (v / quantum).round() as i64 as u64;
    let mut cells: Vec<(u64, u64)> = coords.iter().map(|&(x, y)| (snap(x), snap(y))).collect();
    cells.sort_unstable();
    let mut mixer = Mixer::new();
    mixer.write(kind_tag(instance.edge_weight_kind()));
    mixer.write(instance.dimension() as u64);
    mixer.write(quantum.to_bits());
    for (cx, cy) in cells {
        mixer.write(cx);
        mixer.write(cy);
    }
    mixer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{clustered_instance, random_uniform_instance};

    fn square(name: &str, coords: Vec<(f64, f64)>) -> TspInstance {
        TspInstance::from_coordinates(name, coords, EdgeWeightKind::Euclidean).unwrap()
    }

    #[test]
    fn exact_fingerprint_ignores_the_name_but_not_the_order() {
        let a = square("a", vec![(0.0, 0.0), (1.0, 0.0), (2.0, 5.0)]);
        let renamed = square("b", vec![(0.0, 0.0), (1.0, 0.0), (2.0, 5.0)]);
        let reordered = square("a", vec![(1.0, 0.0), (0.0, 0.0), (2.0, 5.0)]);
        assert_eq!(exact_fingerprint(&a), exact_fingerprint(&renamed));
        assert_ne!(exact_fingerprint(&a), exact_fingerprint(&reordered));
    }

    #[test]
    fn canonical_fingerprint_is_permutation_invariant() {
        let a = square("a", vec![(5.0, 1.0), (0.0, 0.0), (3.0, 4.0), (5.0, 0.0)]);
        let b = square("b", vec![(3.0, 4.0), (5.0, 0.0), (5.0, 1.0), (0.0, 0.0)]);
        let (fa, pa) = canonical_fingerprint(&a);
        let (fb, pb) = canonical_fingerprint(&b);
        assert_eq!(fa, fb);
        // The permutations map canonical positions to each instance's own indexing.
        for k in 0..4 {
            let ca = a.coordinates().unwrap()[pa[k] as usize];
            let cb = b.coordinates().unwrap()[pb[k] as usize];
            assert_eq!(ca, cb);
        }
    }

    #[test]
    fn canonical_and_exact_agree_on_already_sorted_instances() {
        // Sorted coordinates: the canonical permutation is the identity, but the two
        // fingerprints still differ only if their byte streams differ — they don't.
        let inst = square("s", vec![(0.0, 0.0), (1.0, 2.0), (3.0, 4.0)]);
        let (fp, perm) = canonical_fingerprint(&inst);
        assert_eq!(perm, vec![0, 1, 2]);
        assert_eq!(fp, exact_fingerprint(&inst));
    }

    #[test]
    fn kind_and_dimension_distinguish_fingerprints() {
        let coords = vec![(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)];
        let euclid =
            TspInstance::from_coordinates("k", coords.clone(), EdgeWeightKind::Euclidean).unwrap();
        let euc2d = TspInstance::from_coordinates("k", coords, EdgeWeightKind::Euc2d).unwrap();
        assert_ne!(exact_fingerprint(&euclid), exact_fingerprint(&euc2d));
        assert_ne!(
            canonical_fingerprint(&euclid).0,
            canonical_fingerprint(&euc2d).0
        );
    }

    #[test]
    fn matrix_instances_fingerprint_exactly() {
        let m = TspInstance::from_matrix(
            "m",
            taxi_dist::DistanceMatrix::from_rows(&[
                vec![0.0, 2.0, 9.0],
                vec![2.0, 0.0, 6.0],
                vec![9.0, 6.0, 0.0],
            ])
            .unwrap(),
        )
        .unwrap();
        let (fp, perm) = canonical_fingerprint(&m);
        assert_eq!(fp, exact_fingerprint(&m));
        assert_eq!(perm, vec![0, 1, 2]);
    }

    #[test]
    fn generator_instances_do_not_collide() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..50 {
            assert!(seen.insert(exact_fingerprint(&random_uniform_instance("u", 30, seed))));
            assert!(seen.insert(exact_fingerprint(&clustered_instance("c", 30, 4, seed))));
        }
    }

    #[test]
    fn scratch_reuse_matches_the_allocating_form() {
        let mut scratch = FingerprintScratch::new();
        for seed in 0..5 {
            let inst = clustered_instance("r", 40, 4, seed);
            let via_scratch = canonical_fingerprint_into(&inst, &mut scratch);
            let (direct, perm) = canonical_fingerprint(&inst);
            assert_eq!(via_scratch, direct);
            assert_eq!(scratch.permutation(), &perm[..]);
        }
    }

    #[test]
    fn quantized_fingerprint_merges_near_duplicates() {
        let a = square("a", vec![(0.0, 0.0), (10.0, 0.0), (5.0, 8.0)]);
        let nudged = square("a", vec![(0.004, 0.0), (10.0, 0.003), (5.0, 8.0)]);
        let far = square("a", vec![(0.0, 0.0), (10.0, 0.0), (5.0, 9.0)]);
        assert_ne!(exact_fingerprint(&a), exact_fingerprint(&nudged));
        assert_eq!(
            quantized_fingerprint(&a, 0.01),
            quantized_fingerprint(&nudged, 0.01)
        );
        assert_ne!(
            quantized_fingerprint(&a, 0.01),
            quantized_fingerprint(&far, 0.01)
        );
        // Quantisation is permutation-invariant too.
        let shuffled = square("a", vec![(5.0, 8.0), (0.004, 0.0), (10.0, 0.003)]);
        assert_eq!(
            quantized_fingerprint(&a, 0.01),
            quantized_fingerprint(&shuffled, 0.01)
        );
    }

    #[test]
    fn mixed_with_changes_the_fingerprint_deterministically() {
        let inst = random_uniform_instance("m", 12, 3);
        let fp = exact_fingerprint(&inst);
        assert_ne!(fp, fp.mixed_with(1));
        assert_ne!(fp.mixed_with(1), fp.mixed_with(2));
        assert_eq!(fp.mixed_with(7), fp.mixed_with(7));
        assert_eq!(format!("{fp}").len(), 32);
    }
}
