//! The paper's 20-instance benchmark suite and its loader.
//!
//! The paper evaluates TAXI on 20 TSPLIB instances with 76 – 85 900 cities. If the
//! original `.tsp` files are present in a data directory they are parsed; otherwise a
//! deterministic synthetic instance of the same size and broadly similar structure is
//! generated (see DESIGN.md, substitutions). Either way the rest of the workspace sees a
//! [`TspInstance`] of the right dimension under the right name.

use std::path::Path;

use crate::generator::{clustered_instance, grid_drilling_instance, random_uniform_instance};
use crate::{known_optimum, parse_tsp, TspInstance, TsplibError};

/// Spatial structure family of a benchmark instance, used to pick the matching synthetic
/// generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstanceFamily {
    /// Cities distributed roughly uniformly (random instances such as `rat*`, `rl*`).
    Uniform,
    /// Cities grouped geographically (city/road instances such as `pr*`, `gr*`, `d*`).
    Clustered,
    /// Drilling / programmed-logic-array instances on a near-grid (`pla*`, `pcb*`, `u*`).
    Grid,
}

/// Descriptor of one benchmark instance of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BenchmarkInstance {
    /// TSPLIB instance name.
    pub name: &'static str,
    /// Number of cities.
    pub dimension: usize,
    /// Structure family (used by the synthetic fallback generator).
    pub family: InstanceFamily,
}

impl BenchmarkInstance {
    /// Published optimal tour length for the original TSPLIB instance, if known.
    pub fn known_optimum(&self) -> Option<u64> {
        known_optimum(self.name)
    }
}

/// The 20 benchmark instances of the paper, in increasing size order.
pub const BENCHMARK_SUITE: [BenchmarkInstance; 20] = [
    BenchmarkInstance {
        name: "pr76",
        dimension: 76,
        family: InstanceFamily::Clustered,
    },
    BenchmarkInstance {
        name: "eil101",
        dimension: 101,
        family: InstanceFamily::Uniform,
    },
    BenchmarkInstance {
        name: "kroA200",
        dimension: 200,
        family: InstanceFamily::Uniform,
    },
    BenchmarkInstance {
        name: "gil262",
        dimension: 262,
        family: InstanceFamily::Uniform,
    },
    BenchmarkInstance {
        name: "lin318",
        dimension: 318,
        family: InstanceFamily::Clustered,
    },
    BenchmarkInstance {
        name: "pcb442",
        dimension: 442,
        family: InstanceFamily::Grid,
    },
    BenchmarkInstance {
        name: "rat575",
        dimension: 575,
        family: InstanceFamily::Uniform,
    },
    BenchmarkInstance {
        name: "gr666",
        dimension: 666,
        family: InstanceFamily::Clustered,
    },
    BenchmarkInstance {
        name: "rat783",
        dimension: 783,
        family: InstanceFamily::Uniform,
    },
    BenchmarkInstance {
        name: "pr1002",
        dimension: 1002,
        family: InstanceFamily::Clustered,
    },
    BenchmarkInstance {
        name: "u1060",
        dimension: 1060,
        family: InstanceFamily::Grid,
    },
    BenchmarkInstance {
        name: "pr2392",
        dimension: 2392,
        family: InstanceFamily::Clustered,
    },
    BenchmarkInstance {
        name: "pcb3038",
        dimension: 3038,
        family: InstanceFamily::Grid,
    },
    BenchmarkInstance {
        name: "fnl4461",
        dimension: 4461,
        family: InstanceFamily::Clustered,
    },
    BenchmarkInstance {
        name: "rl5915",
        dimension: 5915,
        family: InstanceFamily::Uniform,
    },
    BenchmarkInstance {
        name: "rl5934",
        dimension: 5934,
        family: InstanceFamily::Uniform,
    },
    BenchmarkInstance {
        name: "rl11849",
        dimension: 11849,
        family: InstanceFamily::Uniform,
    },
    BenchmarkInstance {
        name: "d18512",
        dimension: 18512,
        family: InstanceFamily::Clustered,
    },
    BenchmarkInstance {
        name: "pla33810",
        dimension: 33810,
        family: InstanceFamily::Grid,
    },
    BenchmarkInstance {
        name: "pla85900",
        dimension: 85900,
        family: InstanceFamily::Grid,
    },
];

/// Returns the paper's benchmark suite (20 instances, increasing size).
///
/// # Example
///
/// ```
/// use taxi_tsplib::benchmark_suite;
///
/// let suite = benchmark_suite();
/// assert_eq!(suite.len(), 20);
/// assert_eq!(suite.last().unwrap().dimension, 85_900);
/// ```
pub fn benchmark_suite() -> Vec<BenchmarkInstance> {
    BENCHMARK_SUITE.to_vec()
}

/// Loads a benchmark instance: parses `<data_dir>/<name>.tsp` if it exists, otherwise
/// generates a deterministic synthetic instance of the same dimension and family.
///
/// # Errors
///
/// Returns a [`TsplibError`] only if a real file exists but cannot be parsed; the
/// synthetic fallback itself cannot fail.
///
/// # Example
///
/// ```
/// use taxi_tsplib::{benchmark_suite, load_or_generate};
///
/// let spec = benchmark_suite()[0];
/// let instance = load_or_generate(&spec, "data")?;
/// assert_eq!(instance.dimension(), spec.dimension);
/// # Ok::<(), taxi_tsplib::TsplibError>(())
/// ```
pub fn load_or_generate(
    spec: &BenchmarkInstance,
    data_dir: impl AsRef<Path>,
) -> Result<TspInstance, TsplibError> {
    let path = data_dir.as_ref().join(format!("{}.tsp", spec.name));
    if path.is_file() {
        let text = std::fs::read_to_string(&path).map_err(|err| TsplibError::Parse {
            line: None,
            reason: format!("cannot read {}: {err}", path.display()),
        })?;
        return parse_tsp(&text);
    }
    let seed = deterministic_seed(spec.name);
    Ok(match spec.family {
        InstanceFamily::Uniform => random_uniform_instance(spec.name, spec.dimension, seed),
        InstanceFamily::Clustered => {
            let blobs = (spec.dimension / 40).clamp(3, 200);
            clustered_instance(spec.name, spec.dimension, blobs, seed)
        }
        InstanceFamily::Grid => grid_drilling_instance(spec.name, spec.dimension, seed),
    })
}

/// Derives a stable seed from an instance name so synthetic instances are reproducible
/// across runs and machines.
fn deterministic_seed(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_the_paper() {
        let sizes: Vec<usize> = benchmark_suite().iter().map(|b| b.dimension).collect();
        assert_eq!(
            sizes,
            vec![
                76, 101, 200, 262, 318, 442, 575, 666, 783, 1002, 1060, 2392, 3038, 4461, 5915,
                5934, 11849, 18512, 33810, 85900
            ]
        );
    }

    #[test]
    fn every_suite_instance_has_a_known_optimum() {
        for spec in benchmark_suite() {
            assert!(
                spec.known_optimum().is_some(),
                "missing published optimum for {}",
                spec.name
            );
        }
    }

    #[test]
    fn synthetic_fallback_matches_dimension() {
        for spec in benchmark_suite().into_iter().take(5) {
            let inst = load_or_generate(&spec, "/nonexistent-data-dir").unwrap();
            assert_eq!(inst.dimension(), spec.dimension);
            assert_eq!(inst.name(), spec.name);
        }
    }

    #[test]
    fn synthetic_fallback_is_deterministic() {
        let spec = benchmark_suite()[2];
        let a = load_or_generate(&spec, "/nonexistent").unwrap();
        let b = load_or_generate(&spec, "/nonexistent").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn real_files_are_parsed_when_present() {
        let dir = std::env::temp_dir().join("taxi_tsplib_test_data");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = BenchmarkInstance {
            name: "pr76",
            dimension: 3,
            family: InstanceFamily::Clustered,
        };
        std::fs::write(
            dir.join("pr76.tsp"),
            "NAME: pr76\nDIMENSION: 3\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n1 0 0\n2 3 0\n3 0 4\nEOF\n",
        )
        .unwrap();
        let inst = load_or_generate(&spec, &dir).unwrap();
        assert_eq!(inst.dimension(), 3);
        assert_eq!(inst.distance(1, 2).unwrap(), 5.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deterministic_seed_is_stable_and_distinct() {
        assert_eq!(
            deterministic_seed("pla85900"),
            deterministic_seed("pla85900")
        );
        assert_ne!(deterministic_seed("pla85900"), deterministic_seed("pr76"));
    }
}
