//! Writer for TSPLIB `.tsp` files.
//!
//! [`TspInstance::write_tsplib`] serialises an instance into the same textual format
//! [`parse_tsp`](crate::parse_tsp) reads, so workload snapshots can be saved to disk
//! and replayed later. The round trip is exact: coordinates are formatted with Rust's
//! shortest round-trip `f64` representation, so `parse_tsp(&instance.write_tsplib())`
//! reconstructs bit-identical coordinates (and, for explicit instances, a bit-identical
//! distance matrix).
//!
//! Plain unrounded-Euclidean instances (the synthetic generators' convention) are
//! written with the non-standard `EDGE_WEIGHT_TYPE: EUCLIDEAN` extension keyword, which
//! the parser accepts back; every other supported kind uses its standard TSPLIB
//! keyword.

use std::fmt::Write as _;

use crate::{EdgeWeightKind, TspInstance};

impl TspInstance {
    /// Serialises the instance as TSPLIB `.tsp` text.
    ///
    /// Coordinate-based instances emit a `NODE_COORD_SECTION`; explicit-matrix
    /// instances emit a `FULL_MATRIX` `EDGE_WEIGHT_SECTION`. The output always ends
    /// with `EOF` and a trailing newline.
    ///
    /// # Example
    ///
    /// ```
    /// use taxi_tsplib::{parse_tsp, EdgeWeightKind, TspInstance};
    ///
    /// let original = TspInstance::from_coordinates(
    ///     "snapshot",
    ///     vec![(0.25, 0.75), (3.5, -1.125)],
    ///     EdgeWeightKind::Euclidean,
    /// )?;
    /// let reparsed = parse_tsp(&original.write_tsplib())?;
    /// assert_eq!(reparsed, original);
    /// # Ok::<(), taxi_tsplib::TsplibError>(())
    /// ```
    #[must_use]
    pub fn write_tsplib(&self) -> String {
        let n = self.dimension();
        let mut out = String::new();
        let _ = writeln!(out, "NAME: {}", self.name());
        out.push_str("TYPE: TSP\n");
        let _ = writeln!(out, "DIMENSION: {n}");
        let _ = writeln!(
            out,
            "EDGE_WEIGHT_TYPE: {}",
            self.edge_weight_kind().keyword()
        );
        match self.coordinates() {
            Some(coords) => {
                out.push_str("NODE_COORD_SECTION\n");
                for (i, &(x, y)) in coords.iter().enumerate() {
                    // `{:?}` is Rust's shortest f64 representation that parses back to
                    // the same bits, which is what makes the round trip exact.
                    let _ = writeln!(out, "{} {:?} {:?}", i + 1, x, y);
                }
            }
            None => {
                debug_assert_eq!(self.edge_weight_kind(), EdgeWeightKind::Explicit);
                out.push_str("EDGE_WEIGHT_FORMAT: FULL_MATRIX\n");
                out.push_str("EDGE_WEIGHT_SECTION\n");
                for i in 0..n {
                    for j in 0..n {
                        if j > 0 {
                            out.push(' ');
                        }
                        let _ = write!(out, "{:?}", self.distance_unchecked(i, j));
                    }
                    out.push('\n');
                }
            }
        }
        out.push_str("EOF\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::generator::{clustered_instance, random_uniform_instance};
    use crate::{parse_tsp, EdgeWeightKind, TspInstance};

    #[test]
    fn coordinate_round_trip_is_exact_for_every_kind() {
        let coords = vec![(0.1, 0.2), (1e-17, -3.75), (123456.789, -0.000123)];
        for kind in [
            EdgeWeightKind::Euc2d,
            EdgeWeightKind::Ceil2d,
            EdgeWeightKind::Att,
            EdgeWeightKind::Geo,
            EdgeWeightKind::Euclidean,
        ] {
            let original = TspInstance::from_coordinates("rt", coords.clone(), kind).unwrap();
            let reparsed = parse_tsp(&original.write_tsplib()).unwrap();
            assert_eq!(reparsed, original, "{kind:?}");
        }
    }

    #[test]
    fn explicit_matrix_round_trip_is_exact() {
        let original = TspInstance::from_matrix(
            "m",
            taxi_dist::DistanceMatrix::from_rows(&[
                vec![0.0, 2.5, 9.125],
                vec![2.5, 0.0, 6.0625],
                vec![9.125, 6.0625, 0.0],
            ])
            .unwrap(),
        )
        .unwrap();
        let reparsed = parse_tsp(&original.write_tsplib()).unwrap();
        assert_eq!(reparsed, original);
    }

    #[test]
    fn generated_instances_round_trip() {
        for original in [
            random_uniform_instance("u64", 64, 3),
            clustered_instance("c64", 64, 5, 3),
        ] {
            let reparsed = parse_tsp(&original.write_tsplib()).unwrap();
            assert_eq!(reparsed, original);
        }
    }

    #[test]
    fn written_text_has_the_expected_shape() {
        let inst = TspInstance::from_coordinates(
            "shape",
            vec![(1.0, 2.0), (3.0, 4.0)],
            EdgeWeightKind::Euc2d,
        )
        .unwrap();
        let text = inst.write_tsplib();
        assert!(text.starts_with("NAME: shape\n"));
        assert!(text.contains("DIMENSION: 2\n"));
        assert!(text.contains("EDGE_WEIGHT_TYPE: EUC_2D\n"));
        assert!(text.contains("NODE_COORD_SECTION\n1 1.0 2.0\n2 3.0 4.0\n"));
        assert!(text.ends_with("EOF\n"));
    }
}
