//! Parser for TSPLIB `.tsp` files.
//!
//! Supports the subset of the format needed for the paper's benchmark suite:
//! `NODE_COORD_SECTION` instances with `EUC_2D`, `CEIL_2D`, `ATT` and `GEO` edge weights,
//! and `EXPLICIT` instances with `FULL_MATRIX`, `UPPER_ROW`, `UPPER_DIAG_ROW` and
//! `LOWER_DIAG_ROW` edge-weight formats.

use taxi_dist::DistanceMatrix;

use crate::{EdgeWeightKind, TspInstance, TsplibError};

/// Parses the textual contents of a TSPLIB `.tsp` file.
///
/// # Errors
///
/// Returns a [`TsplibError`] describing the first problem encountered: unknown keywords
/// are ignored, but malformed coordinates, missing sections, unsupported edge-weight
/// types/formats, or inconsistent dimensions are reported.
///
/// # Example
///
/// ```
/// use taxi_tsplib::parse_tsp;
///
/// let text = "NAME: tiny\nTYPE: TSP\nDIMENSION: 3\nEDGE_WEIGHT_TYPE: EUC_2D\n\
///             NODE_COORD_SECTION\n1 0.0 0.0\n2 3.0 0.0\n3 0.0 4.0\nEOF\n";
/// let instance = parse_tsp(text)?;
/// assert_eq!(instance.name(), "tiny");
/// assert_eq!(instance.dimension(), 3);
/// assert_eq!(instance.distance(1, 2)?, 5.0);
/// # Ok::<(), taxi_tsplib::TsplibError>(())
/// ```
pub fn parse_tsp(text: &str) -> Result<TspInstance, TsplibError> {
    let mut name = String::from("unnamed");
    let mut dimension: Option<usize> = None;
    let mut kind: Option<EdgeWeightKind> = None;
    let mut weight_format: Option<String> = None;
    let mut coords: Vec<(f64, f64)> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();

    #[derive(PartialEq)]
    enum Section {
        Header,
        NodeCoords,
        EdgeWeights,
        Done,
    }
    let mut section = Section::Header;

    for (lineno, raw) in logical_lines(text).enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let upper = line.to_ascii_uppercase();
        if upper == "EOF" {
            section = Section::Done;
            continue;
        }
        match section {
            Section::Done => continue,
            Section::Header => {
                if upper.starts_with("NODE_COORD_SECTION") {
                    section = Section::NodeCoords;
                    continue;
                }
                if upper.starts_with("EDGE_WEIGHT_SECTION") {
                    section = Section::EdgeWeights;
                    continue;
                }
                if upper.starts_with("DISPLAY_DATA_SECTION") {
                    // Display coordinates are ignored; treat like a terminal section so
                    // that explicit-matrix instances with display data still parse.
                    section = Section::Done;
                    continue;
                }
                let (key, value) = split_keyword(line);
                match key.as_str() {
                    "NAME" => name = value.to_string(),
                    "DIMENSION" => {
                        dimension = Some(value.parse().map_err(|_| TsplibError::Parse {
                            line: Some(lineno + 1),
                            reason: format!("invalid DIMENSION value `{value}`"),
                        })?);
                    }
                    "EDGE_WEIGHT_TYPE" => kind = Some(EdgeWeightKind::from_keyword(&value)?),
                    "EDGE_WEIGHT_FORMAT" => weight_format = Some(value.to_ascii_uppercase()),
                    // TYPE, COMMENT, NODE_COORD_TYPE, DISPLAY_DATA_TYPE... are ignored.
                    _ => {}
                }
            }
            Section::NodeCoords => {
                let mut parts = line.split_whitespace();
                let _index = parts.next();
                let x: f64 = parse_float(parts.next(), lineno)?;
                let y: f64 = parse_float(parts.next(), lineno)?;
                coords.push((x, y));
            }
            Section::EdgeWeights => {
                for token in line.split_whitespace() {
                    weights.push(token.parse().map_err(|_| TsplibError::Parse {
                        line: Some(lineno + 1),
                        reason: format!("invalid edge weight `{token}`"),
                    })?);
                }
            }
        }
    }

    let dimension = dimension.ok_or_else(|| TsplibError::Parse {
        line: None,
        reason: "missing DIMENSION".to_string(),
    })?;
    let kind = kind.unwrap_or(EdgeWeightKind::Euc2d);

    if kind == EdgeWeightKind::Explicit {
        let format = weight_format.unwrap_or_else(|| "FULL_MATRIX".to_string());
        let matrix = assemble_matrix(dimension, &format, &weights)?;
        return TspInstance::from_matrix(&name, matrix);
    }

    if coords.len() != dimension {
        return Err(TsplibError::Inconsistent {
            reason: format!(
                "DIMENSION is {dimension} but {} coordinates were given",
                coords.len()
            ),
        });
    }
    TspInstance::from_coordinates(&name, coords, kind)
}

/// Splits `text` into logical lines under every line-ending convention: `\n` (Unix),
/// `\r\n` (Windows — TSPLIB files frequently circulate with CRLF endings), and lone
/// `\r` (classic Mac). Line numbers stay identical to `str::lines` for LF and CRLF
/// input.
fn logical_lines(text: &str) -> impl Iterator<Item = &str> {
    // `str::lines` handles `\n` and strips a trailing `\r` (CRLF); any `\r` still
    // inside a line is a lone-CR separator.
    text.lines().flat_map(|line| line.split('\r'))
}

fn split_keyword(line: &str) -> (String, String) {
    match line.split_once(':') {
        Some((key, value)) => (key.trim().to_ascii_uppercase(), value.trim().to_string()),
        None => {
            let mut parts = line.splitn(2, char::is_whitespace);
            let key = parts.next().unwrap_or_default().trim().to_ascii_uppercase();
            let value = parts.next().unwrap_or_default().trim().to_string();
            (key, value)
        }
    }
}

fn parse_float(token: Option<&str>, lineno: usize) -> Result<f64, TsplibError> {
    token
        .ok_or_else(|| TsplibError::Parse {
            line: Some(lineno + 1),
            reason: "missing coordinate".to_string(),
        })?
        .parse()
        .map_err(|_| TsplibError::Parse {
            line: Some(lineno + 1),
            reason: format!("invalid coordinate `{}`", token.unwrap_or_default()),
        })
}

fn assemble_matrix(n: usize, format: &str, weights: &[f64]) -> Result<DistanceMatrix, TsplibError> {
    let mut matrix = DistanceMatrix::zeros(n);
    let mut it = weights.iter().copied();
    let mut next = |reason: &str| -> Result<f64, TsplibError> {
        it.next().ok_or_else(|| TsplibError::Inconsistent {
            reason: format!("edge weight section too short ({reason})"),
        })
    };
    match format {
        "FULL_MATRIX" => {
            for i in 0..n {
                for j in 0..n {
                    matrix.set(i, j, next("full matrix")?);
                }
            }
        }
        "UPPER_ROW" => {
            for i in 0..n {
                for j in (i + 1)..n {
                    let w = next("upper row")?;
                    matrix.set(i, j, w);
                    matrix.set(j, i, w);
                }
            }
        }
        "UPPER_DIAG_ROW" => {
            for i in 0..n {
                for j in i..n {
                    let w = next("upper diagonal row")?;
                    matrix.set(i, j, w);
                    matrix.set(j, i, w);
                }
            }
        }
        "LOWER_DIAG_ROW" => {
            for i in 0..n {
                for j in 0..=i {
                    let w = next("lower diagonal row")?;
                    matrix.set(i, j, w);
                    matrix.set(j, i, w);
                }
            }
        }
        other => {
            return Err(TsplibError::Unsupported {
                what: format!("edge weight format {other}"),
            })
        }
    }
    Ok(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_euc2d_node_coordinates() {
        let text = "NAME: demo\nTYPE: TSP\nCOMMENT: test\nDIMENSION: 4\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n1 0 0\n2 0 3\n3 4 3\n4 4 0\nEOF\n";
        let inst = parse_tsp(text).unwrap();
        assert_eq!(inst.name(), "demo");
        assert_eq!(inst.dimension(), 4);
        assert_eq!(inst.distance(0, 2).unwrap(), 5.0);
    }

    #[test]
    fn parses_keywords_without_colons() {
        let text = "NAME demo2\nDIMENSION 2\nEDGE_WEIGHT_TYPE EUC_2D\nNODE_COORD_SECTION\n1 0 0\n2 0 7\nEOF\n";
        let inst = parse_tsp(text).unwrap();
        assert_eq!(inst.name(), "demo2");
        assert_eq!(inst.distance(0, 1).unwrap(), 7.0);
    }

    #[test]
    fn parses_full_matrix() {
        let text = "NAME: m\nDIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\nEDGE_WEIGHT_FORMAT: FULL_MATRIX\nEDGE_WEIGHT_SECTION\n0 2 9\n2 0 6\n9 6 0\nEOF\n";
        let inst = parse_tsp(text).unwrap();
        assert_eq!(inst.distance(0, 2).unwrap(), 9.0);
        assert_eq!(inst.distance(2, 1).unwrap(), 6.0);
    }

    #[test]
    fn parses_upper_row_matrix() {
        let text = "NAME: u\nDIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\nEDGE_WEIGHT_FORMAT: UPPER_ROW\nEDGE_WEIGHT_SECTION\n2 9\n6\nEOF\n";
        let inst = parse_tsp(text).unwrap();
        assert_eq!(inst.distance(0, 1).unwrap(), 2.0);
        assert_eq!(inst.distance(0, 2).unwrap(), 9.0);
        assert_eq!(inst.distance(1, 2).unwrap(), 6.0);
        assert_eq!(inst.distance(2, 0).unwrap(), 9.0);
    }

    #[test]
    fn parses_lower_diag_row_matrix() {
        let text = "NAME: l\nDIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\nEDGE_WEIGHT_FORMAT: LOWER_DIAG_ROW\nEDGE_WEIGHT_SECTION\n0\n2 0\n9 6 0\nEOF\n";
        let inst = parse_tsp(text).unwrap();
        assert_eq!(inst.distance(0, 1).unwrap(), 2.0);
        assert_eq!(inst.distance(0, 2).unwrap(), 9.0);
        assert_eq!(inst.distance(1, 2).unwrap(), 6.0);
    }

    #[test]
    fn missing_dimension_is_reported() {
        let text = "NAME: broken\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n1 0 0\nEOF\n";
        assert!(matches!(parse_tsp(text), Err(TsplibError::Parse { .. })));
    }

    #[test]
    fn wrong_coordinate_count_is_reported() {
        let text = "NAME: broken\nDIMENSION: 3\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n1 0 0\n2 1 1\nEOF\n";
        assert!(matches!(
            parse_tsp(text),
            Err(TsplibError::Inconsistent { .. })
        ));
    }

    #[test]
    fn invalid_coordinate_is_reported_with_line() {
        let text = "NAME: broken\nDIMENSION: 2\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n1 0 0\n2 x 1\nEOF\n";
        match parse_tsp(text) {
            Err(TsplibError::Parse {
                line: Some(line), ..
            }) => assert_eq!(line, 6),
            other => panic!("expected a parse error with a line number, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_edge_weight_type_is_reported() {
        let text = "NAME: x\nDIMENSION: 2\nEDGE_WEIGHT_TYPE: XRAY1\nNODE_COORD_SECTION\n1 0 0\n2 1 1\nEOF\n";
        assert!(matches!(
            parse_tsp(text),
            Err(TsplibError::Unsupported { .. })
        ));
    }

    #[test]
    fn short_edge_weight_section_is_reported() {
        let text = "NAME: m\nDIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\nEDGE_WEIGHT_FORMAT: FULL_MATRIX\nEDGE_WEIGHT_SECTION\n0 2\nEOF\n";
        assert!(matches!(
            parse_tsp(text),
            Err(TsplibError::Inconsistent { .. })
        ));
    }

    /// TSPLIB files frequently circulate with Windows line endings; the parser must
    /// accept CRLF (and legacy lone-CR) endings plus trailing whitespace in the
    /// coordinate section.
    #[test]
    fn parses_crlf_line_endings_and_trailing_whitespace() {
        let text = "NAME: crlf\r\nTYPE: TSP\r\nDIMENSION: 3\r\nEDGE_WEIGHT_TYPE: EUC_2D\r\n\
                    NODE_COORD_SECTION\r\n1 0.0 0.0 \r\n2 3.0 0.0\t\r\n3 0.0 4.0  \r\nEOF\r\n";
        let inst = parse_tsp(text).unwrap();
        assert_eq!(inst.name(), "crlf");
        assert_eq!(inst.dimension(), 3);
        assert_eq!(inst.distance(1, 2).unwrap(), 5.0);
    }

    #[test]
    fn parses_lone_cr_line_endings() {
        let text = "NAME: mac\rDIMENSION: 2\rEDGE_WEIGHT_TYPE: EUC_2D\r\
                    NODE_COORD_SECTION\r1 0 0\r2 0 7\rEOF\r";
        let inst = parse_tsp(text).unwrap();
        assert_eq!(inst.name(), "mac");
        assert_eq!(inst.distance(0, 1).unwrap(), 7.0);
    }

    #[test]
    fn crlf_explicit_matrix_parses() {
        let text = "NAME: m\r\nDIMENSION: 3\r\nEDGE_WEIGHT_TYPE: EXPLICIT\r\n\
                    EDGE_WEIGHT_FORMAT: FULL_MATRIX\r\nEDGE_WEIGHT_SECTION\r\n\
                    0 2 9\r\n2 0 6\r\n9 6 0\r\nEOF\r\n";
        let inst = parse_tsp(text).unwrap();
        assert_eq!(inst.distance(0, 2).unwrap(), 9.0);
    }

    #[test]
    fn crlf_error_line_numbers_match_lf() {
        let lf = "NAME: broken\nDIMENSION: 2\nEDGE_WEIGHT_TYPE: EUC_2D\nNODE_COORD_SECTION\n1 0 0\n2 x 1\nEOF\n";
        let crlf = lf.replace('\n', "\r\n");
        for text in [lf.to_string(), crlf] {
            match parse_tsp(&text) {
                Err(TsplibError::Parse {
                    line: Some(line), ..
                }) => assert_eq!(line, 6),
                other => panic!("expected a parse error with a line number, got {other:?}"),
            }
        }
    }

    #[test]
    fn att_instances_parse() {
        let text = "NAME: a\nDIMENSION: 2\nEDGE_WEIGHT_TYPE: ATT\nNODE_COORD_SECTION\n1 0 0\n2 10 0\nEOF\n";
        let inst = parse_tsp(text).unwrap();
        assert_eq!(inst.distance(0, 1).unwrap(), 4.0);
    }
}
