//! Published optimal tour lengths for the TSPLIB benchmark instances used in the paper.
//!
//! These are the Concorde-verified optima published with TSPLIB; the paper divides its
//! tour lengths by these values to obtain the "optimal ratio" of Fig. 5. They apply only
//! to the *original* TSPLIB coordinate files — when the benchmark loader falls back to
//! synthetic instances, a heuristic reference tour is computed instead.

/// Returns the published optimal tour length for a TSPLIB instance name, if known.
///
/// # Example
///
/// ```
/// use taxi_tsplib::known_optimum;
///
/// assert_eq!(known_optimum("pla85900"), Some(142_382_641));
/// assert_eq!(known_optimum("pr76"), Some(108_159));
/// assert_eq!(known_optimum("not-a-real-instance"), None);
/// ```
pub fn known_optimum(name: &str) -> Option<u64> {
    KNOWN_OPTIMA
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, opt)| opt)
}

/// All `(instance name, optimal length)` pairs for the paper's 20-instance suite.
pub const KNOWN_OPTIMA: [(&str, u64); 20] = [
    ("pr76", 108_159),
    ("eil101", 629),
    ("kroA200", 29_368),
    ("gil262", 2_378),
    ("lin318", 42_029),
    ("pcb442", 50_778),
    ("rat575", 6_773),
    ("gr666", 294_358),
    ("rat783", 8_806),
    ("pr1002", 259_045),
    ("u1060", 224_094),
    ("pr2392", 378_032),
    ("pcb3038", 137_694),
    ("fnl4461", 182_566),
    ("rl5915", 565_530),
    ("rl5934", 556_045),
    ("rl11849", 923_288),
    ("d18512", 645_238),
    ("pla33810", 66_048_945),
    ("pla85900", 142_382_641),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twenty_instances() {
        assert_eq!(KNOWN_OPTIMA.len(), 20);
    }

    #[test]
    fn all_optima_are_positive_and_unique_names() {
        let mut names = std::collections::HashSet::new();
        for &(name, opt) in &KNOWN_OPTIMA {
            assert!(opt > 0);
            assert!(names.insert(name), "duplicate instance name {name}");
        }
    }

    #[test]
    fn largest_instance_is_pla85900() {
        assert_eq!(known_optimum("pla85900"), Some(142_382_641));
    }

    #[test]
    fn unknown_names_return_none() {
        assert_eq!(known_optimum("berlin52"), None);
    }
}
