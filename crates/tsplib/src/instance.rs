//! The TSP instance type and TSPLIB distance conventions.

use taxi_dist::DistanceMatrix;

use crate::TsplibError;

/// Distance convention of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EdgeWeightKind {
    /// Euclidean distance rounded to the nearest integer (TSPLIB `EUC_2D`).
    #[default]
    Euc2d,
    /// Euclidean distance rounded up (TSPLIB `CEIL_2D`).
    Ceil2d,
    /// Pseudo-Euclidean distance (TSPLIB `ATT`).
    Att,
    /// Geographical distance on the Earth's surface (TSPLIB `GEO`).
    Geo,
    /// Plain (unrounded) Euclidean distance, used by synthetic instances.
    Euclidean,
    /// Distances given explicitly as a matrix (TSPLIB `EXPLICIT`).
    Explicit,
}

impl EdgeWeightKind {
    /// Parses the TSPLIB `EDGE_WEIGHT_TYPE` keyword.
    ///
    /// `EUCLIDEAN` is a non-standard extension keyword for
    /// [`EdgeWeightKind::Euclidean`] (plain, unrounded distances): the synthetic
    /// workload generators produce such instances, and
    /// [`write_tsplib`](TspInstance::write_tsplib) snapshots must round-trip them
    /// without silently changing the distance convention.
    ///
    /// # Errors
    ///
    /// Returns [`TsplibError::Unsupported`] for edge-weight types this crate does not
    /// implement.
    pub fn from_keyword(keyword: &str) -> Result<Self, TsplibError> {
        match keyword.trim() {
            "EUC_2D" => Ok(EdgeWeightKind::Euc2d),
            "CEIL_2D" => Ok(EdgeWeightKind::Ceil2d),
            "ATT" => Ok(EdgeWeightKind::Att),
            "GEO" => Ok(EdgeWeightKind::Geo),
            "EUCLIDEAN" => Ok(EdgeWeightKind::Euclidean),
            "EXPLICIT" => Ok(EdgeWeightKind::Explicit),
            other => Err(TsplibError::Unsupported {
                what: format!("edge weight type {other}"),
            }),
        }
    }

    /// The `EDGE_WEIGHT_TYPE` keyword for this kind (inverse of
    /// [`from_keyword`](Self::from_keyword)).
    pub fn keyword(self) -> &'static str {
        match self {
            EdgeWeightKind::Euc2d => "EUC_2D",
            EdgeWeightKind::Ceil2d => "CEIL_2D",
            EdgeWeightKind::Att => "ATT",
            EdgeWeightKind::Geo => "GEO",
            EdgeWeightKind::Euclidean => "EUCLIDEAN",
            EdgeWeightKind::Explicit => "EXPLICIT",
        }
    }
}

/// Payload of an instance: node coordinates or an explicit distance matrix.
#[derive(Debug, Clone, PartialEq)]
enum InstanceData {
    Coordinates(Vec<(f64, f64)>),
    Matrix(DistanceMatrix),
}

/// One travelling-salesman-problem instance.
///
/// # Example
///
/// ```
/// use taxi_tsplib::{EdgeWeightKind, TspInstance};
///
/// let instance = TspInstance::from_coordinates(
///     "square4",
///     vec![(0.0, 0.0), (3.0, 0.0), (3.0, 4.0), (0.0, 4.0)],
///     EdgeWeightKind::Euclidean,
/// )?;
/// assert_eq!(instance.dimension(), 4);
/// assert_eq!(instance.distance(0, 2)?, 5.0);
/// # Ok::<(), taxi_tsplib::TsplibError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TspInstance {
    name: String,
    kind: EdgeWeightKind,
    data: InstanceData,
    dimension: usize,
}

impl TspInstance {
    /// Builds an instance from node coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`TsplibError::Inconsistent`] if no coordinates are given or the
    /// edge-weight kind is [`EdgeWeightKind::Explicit`].
    pub fn from_coordinates(
        name: &str,
        coordinates: Vec<(f64, f64)>,
        kind: EdgeWeightKind,
    ) -> Result<Self, TsplibError> {
        if coordinates.is_empty() {
            return Err(TsplibError::Inconsistent {
                reason: "instance has no cities".to_string(),
            });
        }
        if kind == EdgeWeightKind::Explicit {
            return Err(TsplibError::Inconsistent {
                reason: "explicit edge weights require a matrix, not coordinates".to_string(),
            });
        }
        Ok(Self {
            name: name.to_string(),
            kind,
            dimension: coordinates.len(),
            data: InstanceData::Coordinates(coordinates),
        })
    }

    /// Builds an instance from an explicit full distance matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TsplibError::Inconsistent`] if the matrix is empty.
    pub fn from_matrix(name: &str, matrix: DistanceMatrix) -> Result<Self, TsplibError> {
        if matrix.is_empty() {
            return Err(TsplibError::Inconsistent {
                reason: "explicit distance matrix must be square and non-empty".to_string(),
            });
        }
        Ok(Self {
            name: name.to_string(),
            kind: EdgeWeightKind::Explicit,
            dimension: matrix.n(),
            data: InstanceData::Matrix(matrix),
        })
    }

    /// Instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cities.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// The distance convention.
    pub fn edge_weight_kind(&self) -> EdgeWeightKind {
        self.kind
    }

    /// City coordinates, if the instance is coordinate-based.
    pub fn coordinates(&self) -> Option<&[(f64, f64)]> {
        match &self.data {
            InstanceData::Coordinates(c) => Some(c),
            InstanceData::Matrix(_) => None,
        }
    }

    /// Distance between cities `i` and `j` under the instance's convention.
    ///
    /// # Errors
    ///
    /// Returns [`TsplibError::IndexOutOfRange`] if either index is out of range.
    pub fn distance(&self, i: usize, j: usize) -> Result<f64, TsplibError> {
        if i >= self.dimension || j >= self.dimension {
            return Err(TsplibError::IndexOutOfRange {
                index: i.max(j),
                dimension: self.dimension,
            });
        }
        Ok(self.distance_unchecked(i, j))
    }

    /// Distance between cities `i` and `j` without bounds checking (both indices must be
    /// in range).
    ///
    /// # Panics
    ///
    /// May panic if an index is out of range.
    pub fn distance_unchecked(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        match &self.data {
            InstanceData::Matrix(m) => m.get(i, j),
            InstanceData::Coordinates(coords) => {
                let (x1, y1) = coords[i];
                let (x2, y2) = coords[j];
                match self.kind {
                    EdgeWeightKind::Euclidean => ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt(),
                    EdgeWeightKind::Euc2d => ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt().round(),
                    EdgeWeightKind::Ceil2d => ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt().ceil(),
                    EdgeWeightKind::Att => {
                        let rij = (((x1 - x2).powi(2) + (y1 - y2).powi(2)) / 10.0).sqrt();
                        let tij = rij.round();
                        if tij < rij {
                            tij + 1.0
                        } else {
                            tij
                        }
                    }
                    EdgeWeightKind::Geo => geo_distance((x1, y1), (x2, y2)),
                    EdgeWeightKind::Explicit => unreachable!("explicit instances store a matrix"),
                }
            }
        }
    }

    /// Full distance sub-matrix for a set of cities, in the order given.
    ///
    /// # Errors
    ///
    /// Returns [`TsplibError::IndexOutOfRange`] if any index is out of range.
    pub fn distance_matrix_for(&self, cities: &[usize]) -> Result<DistanceMatrix, TsplibError> {
        let mut out = DistanceMatrix::default();
        self.distance_matrix_into(cities, &mut out)?;
        Ok(out)
    }

    /// Full `n × n` distance matrix. Prefer [`distance_matrix_for`](Self::distance_matrix_for)
    /// for sub-problems; this allocates `n²` doubles.
    pub fn full_distance_matrix(&self) -> DistanceMatrix {
        let all: Vec<usize> = (0..self.dimension).collect();
        self.distance_matrix_for(&all)
            .expect("all indices are in range")
    }

    /// Buffer-reusing form of [`distance_matrix_for`](Self::distance_matrix_for):
    /// resets `out` to `cities.len()` and fills it in place (cache-blocked), so
    /// repeated sub-problem extraction performs no heap allocation once the buffer has
    /// grown to the largest sub-problem seen.
    ///
    /// # Errors
    ///
    /// Returns [`TsplibError::IndexOutOfRange`] if any index is out of range.
    pub fn distance_matrix_into(
        &self,
        cities: &[usize],
        out: &mut DistanceMatrix,
    ) -> Result<(), TsplibError> {
        for &c in cities {
            if c >= self.dimension {
                return Err(TsplibError::IndexOutOfRange {
                    index: c,
                    dimension: self.dimension,
                });
            }
        }
        out.fill_from_fn(cities.len(), |i, j| {
            self.distance_unchecked(cities[i], cities[j])
        });
        Ok(())
    }
}

/// TSPLIB GEO distance (geographical distance on the idealised Earth).
fn geo_distance((x1, y1): (f64, f64), (x2, y2): (f64, f64)) -> f64 {
    const RRR: f64 = 6378.388;
    let to_radians = |coord: f64| {
        let deg = coord.trunc();
        let minutes = coord - deg;
        std::f64::consts::PI * (deg + 5.0 * minutes / 3.0) / 180.0
    };
    let (lat1, lon1) = (to_radians(x1), to_radians(y1));
    let (lat2, lon2) = (to_radians(x2), to_radians(y2));
    let q1 = (lon1 - lon2).cos();
    let q2 = (lat1 - lat2).cos();
    let q3 = (lat1 + lat2).cos();
    (RRR * (0.5 * ((1.0 + q1) * q2 - (1.0 - q1) * q3)).acos() + 1.0).floor()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> TspInstance {
        TspInstance::from_coordinates(
            "sq",
            vec![(0.0, 0.0), (3.0, 0.0), (3.0, 4.0), (0.0, 4.0)],
            EdgeWeightKind::Euclidean,
        )
        .unwrap()
    }

    #[test]
    fn euclidean_distances_are_exact() {
        let inst = square();
        assert_eq!(inst.distance(0, 1).unwrap(), 3.0);
        assert_eq!(inst.distance(0, 2).unwrap(), 5.0);
        assert_eq!(inst.distance(2, 2).unwrap(), 0.0);
    }

    #[test]
    fn euc2d_rounds_to_nearest_integer() {
        let inst =
            TspInstance::from_coordinates("r", vec![(0.0, 0.0), (1.0, 1.0)], EdgeWeightKind::Euc2d)
                .unwrap();
        // sqrt(2) ≈ 1.414 → rounds to 1.
        assert_eq!(inst.distance(0, 1).unwrap(), 1.0);
    }

    #[test]
    fn ceil2d_rounds_up() {
        let inst = TspInstance::from_coordinates(
            "c",
            vec![(0.0, 0.0), (1.0, 1.0)],
            EdgeWeightKind::Ceil2d,
        )
        .unwrap();
        assert_eq!(inst.distance(0, 1).unwrap(), 2.0);
    }

    #[test]
    fn att_distance_matches_reference_formula() {
        let inst =
            TspInstance::from_coordinates("a", vec![(0.0, 0.0), (10.0, 0.0)], EdgeWeightKind::Att)
                .unwrap();
        // rij = sqrt(100/10) = 3.1623 → tij = 3 < rij → 4.
        assert_eq!(inst.distance(0, 1).unwrap(), 4.0);
    }

    #[test]
    fn geo_distance_is_positive_and_symmetric() {
        let inst = TspInstance::from_coordinates(
            "geo",
            vec![(38.24, 20.42), (39.57, 26.15), (40.56, 25.32)],
            EdgeWeightKind::Geo,
        )
        .unwrap();
        let d01 = inst.distance(0, 1).unwrap();
        assert!(d01 > 0.0);
        assert_eq!(d01, inst.distance(1, 0).unwrap());
    }

    #[test]
    fn explicit_matrix_instances_look_up_entries() {
        let inst = TspInstance::from_matrix(
            "m",
            DistanceMatrix::from_rows(&[
                vec![0.0, 2.0, 9.0],
                vec![2.0, 0.0, 6.0],
                vec![9.0, 6.0, 0.0],
            ])
            .unwrap(),
        )
        .unwrap();
        assert_eq!(inst.edge_weight_kind(), EdgeWeightKind::Explicit);
        assert_eq!(inst.distance(0, 2).unwrap(), 9.0);
        assert!(inst.coordinates().is_none());
    }

    #[test]
    fn sub_matrix_preserves_order() {
        let inst = square();
        let sub = inst.distance_matrix_for(&[2, 0]).unwrap();
        assert_eq!(sub.n(), 2);
        assert_eq!(sub.get(0, 1), 5.0);
        assert_eq!(sub.get(1, 0), 5.0);
        assert_eq!(sub.get(0, 0), 0.0);
    }

    #[test]
    fn out_of_range_indices_error() {
        let inst = square();
        assert!(inst.distance(0, 9).is_err());
        assert!(inst.distance_matrix_for(&[0, 9]).is_err());
    }

    #[test]
    fn empty_instances_are_rejected() {
        assert!(TspInstance::from_coordinates("e", vec![], EdgeWeightKind::Euc2d).is_err());
        assert!(TspInstance::from_matrix("e", DistanceMatrix::default()).is_err());
        assert!(DistanceMatrix::from_rows(&[vec![0.0], vec![0.0]]).is_err());
    }

    #[test]
    fn keyword_parsing_covers_supported_types() {
        assert_eq!(
            EdgeWeightKind::from_keyword("EUC_2D").unwrap(),
            EdgeWeightKind::Euc2d
        );
        assert_eq!(
            EdgeWeightKind::from_keyword("CEIL_2D").unwrap(),
            EdgeWeightKind::Ceil2d
        );
        assert_eq!(
            EdgeWeightKind::from_keyword("ATT").unwrap(),
            EdgeWeightKind::Att
        );
        assert_eq!(
            EdgeWeightKind::from_keyword("GEO").unwrap(),
            EdgeWeightKind::Geo
        );
        assert_eq!(
            EdgeWeightKind::from_keyword("EXPLICIT").unwrap(),
            EdgeWeightKind::Explicit
        );
        assert!(EdgeWeightKind::from_keyword("XRAY1").is_err());
    }

    #[test]
    fn full_matrix_is_symmetric_with_zero_diagonal() {
        let inst = square();
        let m = inst.full_distance_matrix();
        for i in 0..4 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }
}
