//! TSPLIB substrate for the TAXI reproduction.
//!
//! The paper evaluates on 20 TSPLIB instances from 76 up to 85 900 cities (the largest
//! instance in the library, `pla85900`). This crate provides everything the rest of the
//! workspace needs to work with those workloads:
//!
//! * [`instance`] — the [`TspInstance`] type with all the common TSPLIB edge-weight
//!   conventions (EUC_2D, CEIL_2D, ATT, GEO, explicit matrices),
//! * [`parser`] / [`writer`] — a parser for `.tsp` files (used when the real TSPLIB
//!   files are available on disk) and the matching writer
//!   ([`TspInstance::write_tsplib`]) for exact snapshot/replay round trips,
//! * [`generator`] — deterministic synthetic instance generators (uniform, clustered,
//!   ring-logistics, drilling-grid) used when the original files are not available
//!   offline (see DESIGN.md, substitutions) and by the dispatch workload engine,
//! * [`fingerprint`] — exact and permutation-invariant canonical instance
//!   fingerprints (the solution cache's identity layer),
//! * [`tour`] — the [`Tour`] type with validation and length evaluation,
//! * [`optima`] / [`benchmark`] — the 20-instance benchmark suite with the published
//!   Concorde optima, and a loader that transparently falls back to synthetic instances
//!   of the same size.
//!
//! # Example
//!
//! ```
//! use taxi_tsplib::generator::clustered_instance;
//! use taxi_tsplib::Tour;
//!
//! let instance = clustered_instance("blob200", 200, 8, 42);
//! let identity = Tour::identity(instance.dimension());
//! assert!(identity.is_valid_for(&instance));
//! assert!(identity.length(&instance) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmark;
pub mod error;
pub mod fingerprint;
pub mod generator;
pub mod instance;
pub mod optima;
pub mod parser;
pub mod tour;
pub mod tour_io;
pub mod writer;

pub use benchmark::{benchmark_suite, load_or_generate, BenchmarkInstance};
pub use error::TsplibError;
pub use fingerprint::{Fingerprint, FingerprintScratch};
pub use instance::{EdgeWeightKind, TspInstance};
pub use optima::known_optimum;
pub use parser::parse_tsp;
pub use tour::Tour;
