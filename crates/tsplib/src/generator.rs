//! Deterministic synthetic TSP instance generators.
//!
//! The original TSPLIB coordinate files are not bundled with this repository, so the
//! benchmark loader falls back to synthetic instances of the same sizes (see DESIGN.md).
//! Four families are provided:
//!
//! * [`random_uniform_instance`] — cities uniformly distributed in a square (typical of
//!   the `rat*`/`rl*` style random instances),
//! * [`clustered_instance`] — cities concentrated in Gaussian-like blobs (typical of
//!   geography-derived instances, and the regime where hierarchical clustering shines),
//! * [`grid_drilling_instance`] — a perturbed regular grid (the `pla*` instances are
//!   programmed logic-array drilling problems with strong grid structure),
//! * [`ring_logistics_instance`] — stops spread over concentric delivery rings around a
//!   central depot (hub-and-ring logistics networks; the dispatch workload engine's
//!   "logistics" scenario).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{EdgeWeightKind, TspInstance};

/// Generates `n` cities uniformly in a `[0, side] × [0, side]` square, where `side`
/// scales with `sqrt(n)` so that city density stays constant across sizes.
///
/// # Panics
///
/// Panics if `n` is zero.
///
/// # Example
///
/// ```
/// use taxi_tsplib::generator::random_uniform_instance;
///
/// let a = random_uniform_instance("u100", 100, 7);
/// let b = random_uniform_instance("u100", 100, 7);
/// assert_eq!(a, b, "generation is deterministic for a fixed seed");
/// ```
pub fn random_uniform_instance(name: &str, n: usize, seed: u64) -> TspInstance {
    assert!(n > 0, "an instance needs at least one city");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let side = (n as f64).sqrt() * 100.0;
    let coords: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>() * side, rng.gen::<f64>() * side))
        .collect();
    TspInstance::from_coordinates(name, coords, EdgeWeightKind::Euclidean)
        .expect("generated coordinates are always valid")
}

/// Generates `n` cities grouped into `blobs` clusters with Gaussian-like spread.
///
/// # Panics
///
/// Panics if `n` or `blobs` is zero.
pub fn clustered_instance(name: &str, n: usize, blobs: usize, seed: u64) -> TspInstance {
    assert!(n > 0, "an instance needs at least one city");
    assert!(blobs > 0, "at least one blob is required");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let side = (n as f64).sqrt() * 100.0;
    let spread = side / (blobs as f64).sqrt() / 4.0;
    let centers: Vec<(f64, f64)> = (0..blobs)
        .map(|_| (rng.gen::<f64>() * side, rng.gen::<f64>() * side))
        .collect();
    let coords: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let (cx, cy) = centers[i % blobs];
            // Approximate Gaussian jitter from the sum of uniforms (Irwin–Hall).
            let jitter = |rng: &mut ChaCha8Rng| {
                let s: f64 = (0..4).map(|_| rng.gen::<f64>()).sum::<f64>() / 4.0 - 0.5;
                s * 2.0 * spread
            };
            (cx + jitter(&mut rng), cy + jitter(&mut rng))
        })
        .collect();
    TspInstance::from_coordinates(name, coords, EdgeWeightKind::Euclidean)
        .expect("generated coordinates are always valid")
}

/// Generates `n` cities on a perturbed regular grid (drilling-style instance).
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn grid_drilling_instance(name: &str, n: usize, seed: u64) -> TspInstance {
    assert!(n > 0, "an instance needs at least one city");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let side = (n as f64).sqrt().ceil() as usize;
    let pitch = 100.0;
    let coords: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let gx = (i % side) as f64 * pitch;
            let gy = (i / side) as f64 * pitch;
            (
                gx + (rng.gen::<f64>() - 0.5) * pitch * 0.2,
                gy + (rng.gen::<f64>() - 0.5) * pitch * 0.2,
            )
        })
        .collect();
    TspInstance::from_coordinates(name, coords, EdgeWeightKind::Euclidean)
        .expect("generated coordinates are always valid")
}

/// Generates `n` cities spread over `rings` concentric delivery rings around a central
/// depot at the origin: city 0 is the depot, and the remaining stops are distributed
/// ring by ring with angular and radial jitter. Ring `r` has radius proportional to
/// `r + 1`, and outer rings receive proportionally more stops (their circumference is
/// longer), which mimics hub-and-ring logistics networks.
///
/// # Panics
///
/// Panics if `n` or `rings` is zero.
pub fn ring_logistics_instance(name: &str, n: usize, rings: usize, seed: u64) -> TspInstance {
    assert!(n > 0, "an instance needs at least one city");
    assert!(rings > 0, "at least one ring is required");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let base_radius = (n as f64).sqrt() * 40.0;
    let mut coords = Vec::with_capacity(n);
    coords.push((0.0, 0.0));
    // Ring r gets a share of stops proportional to its circumference (r + 1).
    let weight_total: usize = (1..=rings).sum();
    let stops = n - 1;
    let mut assigned = 0usize;
    for r in 0..rings {
        let share = if r + 1 == rings {
            stops - assigned
        } else {
            stops * (r + 1) / weight_total
        };
        assigned += share;
        let radius = base_radius * (r + 1) as f64;
        for k in 0..share {
            let angle =
                std::f64::consts::TAU * ((k as f64 + rng.gen::<f64>() * 0.8) / share.max(1) as f64);
            let rho = radius * (1.0 + (rng.gen::<f64>() - 0.5) * 0.15);
            coords.push((rho * angle.cos(), rho * angle.sin()));
        }
    }
    TspInstance::from_coordinates(name, coords, EdgeWeightKind::Euclidean)
        .expect("generated coordinates are always valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_instance_has_requested_size() {
        let inst = random_uniform_instance("u", 64, 1);
        assert_eq!(inst.dimension(), 64);
        assert_eq!(inst.edge_weight_kind(), EdgeWeightKind::Euclidean);
    }

    #[test]
    fn uniform_generation_is_deterministic() {
        assert_eq!(
            random_uniform_instance("u", 128, 9),
            random_uniform_instance("u", 128, 9)
        );
    }

    #[test]
    fn different_seeds_give_different_instances() {
        assert_ne!(
            random_uniform_instance("u", 128, 1),
            random_uniform_instance("u", 128, 2)
        );
    }

    #[test]
    fn clustered_instance_is_more_compact_than_uniform() {
        // With the same number of cities, a clustered instance has smaller mean
        // nearest-neighbour distance than a uniform one (cities bunch together).
        let n = 300;
        let uniform = random_uniform_instance("u", n, 3);
        let clustered = clustered_instance("c", n, 10, 3);
        let mean_nn = |inst: &TspInstance| {
            (0..n)
                .map(|i| {
                    (0..n)
                        .filter(|&j| j != i)
                        .map(|j| inst.distance_unchecked(i, j))
                        .fold(f64::INFINITY, f64::min)
                })
                .sum::<f64>()
                / n as f64
        };
        assert!(mean_nn(&clustered) < mean_nn(&uniform));
    }

    #[test]
    fn grid_instance_covers_a_grid() {
        let inst = grid_drilling_instance("g", 100, 5);
        assert_eq!(inst.dimension(), 100);
        let coords = inst.coordinates().unwrap();
        let max_x = coords.iter().map(|&(x, _)| x).fold(f64::MIN, f64::max);
        let max_y = coords.iter().map(|&(_, y)| y).fold(f64::MIN, f64::max);
        assert!(max_x > 800.0 && max_y > 800.0);
    }

    #[test]
    fn blob_count_controls_structure() {
        let few = clustered_instance("c", 200, 2, 11);
        let many = clustered_instance("c", 200, 40, 11);
        assert_eq!(few.dimension(), many.dimension());
        assert_ne!(few, many);
    }

    #[test]
    #[should_panic(expected = "at least one city")]
    fn zero_size_panics() {
        random_uniform_instance("bad", 0, 0);
    }

    #[test]
    fn ring_instance_is_deterministic_and_ring_shaped() {
        let a = ring_logistics_instance("r", 121, 3, 17);
        let b = ring_logistics_instance("r", 121, 3, 17);
        assert_eq!(a, b);
        assert_eq!(a.dimension(), 121);
        let coords = a.coordinates().unwrap();
        assert_eq!(coords[0], (0.0, 0.0), "city 0 is the depot");
        // Stops concentrate near their ring radius: no stop sits in the innermost 20%
        // of the outermost ring's radius (the depot aside), and the radial histogram
        // has mass around every ring.
        let radii: Vec<f64> = coords[1..]
            .iter()
            .map(|&(x, y)| (x * x + y * y).sqrt())
            .collect();
        let max_r = radii.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(radii.iter().all(|&r| r > 0.2 * max_r / 3.0));
        for ring in 1..=3usize {
            let target = max_r * ring as f64 / 3.0;
            assert!(
                radii.iter().any(|&r| (r - target).abs() < 0.25 * target),
                "no stops near ring {ring}"
            );
        }
    }

    #[test]
    fn ring_instance_survives_more_rings_than_stops() {
        let inst = ring_logistics_instance("tiny", 3, 5, 1);
        assert_eq!(inst.dimension(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one ring")]
    fn zero_rings_panic() {
        ring_logistics_instance("bad", 10, 0, 0);
    }
}
