//! Error type for TSPLIB parsing and instance handling.

use std::error::Error;
use std::fmt;

/// Errors returned by the TSPLIB substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsplibError {
    /// The `.tsp` file could not be parsed.
    Parse {
        /// Line number (1-based) where parsing failed, if known.
        line: Option<usize>,
        /// Explanation of the failure.
        reason: String,
    },
    /// The file declares an unsupported feature (edge-weight type or format).
    Unsupported {
        /// What is unsupported.
        what: String,
    },
    /// The instance definition is internally inconsistent.
    Inconsistent {
        /// Explanation of the inconsistency.
        reason: String,
    },
    /// An index was out of range for the instance.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The instance dimension.
        dimension: usize,
    },
}

impl fmt::Display for TsplibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsplibError::Parse {
                line: Some(line),
                reason,
            } => {
                write!(f, "parse error at line {line}: {reason}")
            }
            TsplibError::Parse { line: None, reason } => write!(f, "parse error: {reason}"),
            TsplibError::Unsupported { what } => write!(f, "unsupported TSPLIB feature: {what}"),
            TsplibError::Inconsistent { reason } => {
                write!(f, "inconsistent instance definition: {reason}")
            }
            TsplibError::IndexOutOfRange { index, dimension } => {
                write!(
                    f,
                    "city index {index} out of range for dimension {dimension}"
                )
            }
        }
    }
}

impl Error for TsplibError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line_numbers() {
        let err = TsplibError::Parse {
            line: Some(12),
            reason: "bad coordinate".to_string(),
        };
        assert!(err.to_string().contains("12"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TsplibError>();
    }
}
