//! Property-based tests of the Ising model and QUBO encoding.

use proptest::prelude::*;

use taxi_dist::DistanceMatrix;
use taxi_ising::{IsingModel, Spin, TspQuboEncoder};

fn model_strategy(max_n: usize) -> impl Strategy<Value = IsingModel> {
    (2..max_n).prop_flat_map(|n| {
        let couplings = prop::collection::vec(-2.0f64..2.0, n * n);
        let fields = prop::collection::vec(-1.0f64..1.0, n);
        let spins = prop::collection::vec(prop::bool::ANY, n);
        (Just(n), couplings, fields, spins).prop_map(|(n, couplings, fields, spins)| {
            let mut model = IsingModel::new(n).unwrap();
            for i in 0..n {
                for j in (i + 1)..n {
                    model.set_coupling(i, j, couplings[i * n + j]).unwrap();
                }
                model.set_field(i, fields[i]).unwrap();
                model.set_spin(i, if spins[i] { Spin::Up } else { Spin::Down });
            }
            model
        })
    })
}

fn distance_matrix_strategy(max_n: usize) -> impl Strategy<Value = DistanceMatrix> {
    prop::collection::vec((0.0f64..50.0, 0.0f64..50.0), 3..max_n).prop_map(|points| {
        DistanceMatrix::from_fn(points.len(), |i, j| {
            let (x1, y1) = points[i];
            let (x2, y2) = points[j];
            (x1 - x2).hypot(y1 - y2)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The analytically-predicted energy change of a single spin flip always matches the
    /// recomputed total-energy difference.
    #[test]
    fn flip_delta_matches_recomputation(model in model_strategy(9), which in 0usize..9) {
        let i = which % model.len();
        let predicted = model.flip_delta(i);
        let before = model.total_energy();
        let mut flipped = model.clone();
        flipped.set_spin(i, model.spin(i).flipped());
        let actual = flipped.total_energy() - before;
        prop_assert!((predicted - actual).abs() < 1e-9);
    }

    /// Greedy single-spin updates never increase the total energy (Eq. 3 of the paper).
    #[test]
    fn greedy_updates_descend(model in model_strategy(8)) {
        let mut model = model;
        for _ in 0..3 {
            for i in 0..model.len() {
                let before = model.total_energy();
                model.greedy_update(i);
                prop_assert!(model.total_energy() <= before + 1e-9);
            }
        }
    }

    /// For any pair of valid tours, the difference of their QUBO objectives equals the
    /// difference of their geometric tour lengths (the constraint penalties cancel).
    #[test]
    fn qubo_differences_equal_length_differences(
        matrix in distance_matrix_strategy(7),
        swap_a in 0usize..7,
        swap_b in 0usize..7,
    ) {
        let n = matrix.n();
        let encoder = TspQuboEncoder::new(&matrix).unwrap();
        let qubo = encoder.encode().unwrap();
        let tour_a: Vec<usize> = (0..n).collect();
        let mut tour_b = tour_a.clone();
        tour_b.swap(swap_a % n, swap_b % n);
        let length_diff = encoder.tour_length(&tour_b) - encoder.tour_length(&tour_a);
        let qubo_diff = qubo.evaluate(&encoder.assignment_for_order(&tour_b))
            - qubo.evaluate(&encoder.assignment_for_order(&tour_a));
        prop_assert!((length_diff - qubo_diff).abs() < 1e-6);
    }

    /// QUBO → Ising conversion preserves the ordering of configurations (it differs only
    /// by a constant offset).
    #[test]
    fn qubo_to_ising_preserves_offsets(matrix in distance_matrix_strategy(4)) {
        let encoder = TspQuboEncoder::new(&matrix).unwrap();
        let qubo = encoder.encode().unwrap();
        let ising = qubo.to_ising().unwrap();
        let n_vars = qubo.len();
        prop_assume!(n_vars <= 16);
        let mut offset: Option<f64> = None;
        for bits in 0..(1u32 << n_vars) {
            let x: Vec<bool> = (0..n_vars).map(|i| (bits >> i) & 1 == 1).collect();
            let spins: Vec<Spin> = x.iter().map(|&b| if b { Spin::Up } else { Spin::Down }).collect();
            let mut model = ising.clone();
            model.set_spins(&spins).unwrap();
            let diff = qubo.evaluate(&x) - model.total_energy();
            match offset {
                None => offset = Some(diff),
                Some(reference) => prop_assert!((diff - reference).abs() < 1e-6),
            }
        }
    }
}
