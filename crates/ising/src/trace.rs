//! Annealing-trace recording.
//!
//! The paper argues (Section III-C6) that the device's sigmoidal switching curve yields a
//! fast early / slow late decay of stochasticity, which shortens the anneal without
//! hurting final quality. A trace of the tour length and stochasticity per sweep makes
//! that claim observable in the reproduction and is used by the convergence analyses.

use taxi_device::{SwitchingCurve, WriteCurrent};

/// One sample of an annealing trace (recorded once per sweep over the visiting orders).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Iteration index at which the sample was taken (0-based, end of the sweep).
    pub iteration: usize,
    /// Write current applied during that iteration.
    pub i_write: WriteCurrent,
    /// Expected mask-pass probability at that current (the "stochasticity").
    pub stochasticity: f64,
    /// Tour (or path) length stored in the spin storage at that point.
    pub length: f64,
}

/// A recorded annealing trajectory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnnealingTrace {
    points: Vec<TracePoint>,
}

impl AnnealingTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(
        &mut self,
        iteration: usize,
        i_write: WriteCurrent,
        curve: &SwitchingCurve,
        length: f64,
    ) {
        self.points.push(TracePoint {
            iteration,
            i_write,
            stochasticity: curve.probability(i_write),
            length,
        });
    }

    /// The recorded samples in chronological order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The best (shortest) length observed so far at each sample — a non-increasing
    /// envelope of the trace.
    pub fn best_so_far(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        self.points
            .iter()
            .map(|p| {
                best = best.min(p.length);
                best
            })
            .collect()
    }

    /// Fraction of the total improvement achieved by the first half of the anneal.
    ///
    /// Values above 0.5 indicate the fast-early / slow-late convergence behaviour the
    /// paper attributes to the sigmoidal stochasticity decay. Returns `None` when the
    /// trace is too short or shows no improvement.
    pub fn early_improvement_fraction(&self) -> Option<f64> {
        if self.points.len() < 4 {
            return None;
        }
        let best = self.best_so_far();
        let start = best[0];
        let end = *best.last().expect("trace is non-empty");
        let total = start - end;
        if total <= 0.0 {
            return None;
        }
        let half = best[best.len() / 2];
        Some((start - half) / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_trace(lengths: &[f64]) -> AnnealingTrace {
        let curve = SwitchingCurve::paper_fit();
        let mut trace = AnnealingTrace::new();
        for (i, &length) in lengths.iter().enumerate() {
            trace.record(
                i,
                WriteCurrent::from_micro_amps(420.0 - i as f64),
                &curve,
                length,
            );
        }
        trace
    }

    #[test]
    fn records_points_in_order() {
        let trace = synthetic_trace(&[10.0, 9.0, 8.0]);
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());
        assert_eq!(trace.points()[2].iteration, 2);
        assert!(trace.points()[0].stochasticity > trace.points()[2].stochasticity);
    }

    #[test]
    fn best_so_far_is_monotone() {
        let trace = synthetic_trace(&[10.0, 12.0, 8.0, 9.0, 7.0]);
        let best = trace.best_so_far();
        assert_eq!(best, vec![10.0, 10.0, 8.0, 8.0, 7.0]);
    }

    #[test]
    fn early_improvement_detects_front_loaded_convergence() {
        // Most of the improvement happens in the first half.
        let front_loaded = synthetic_trace(&[10.0, 7.0, 6.0, 5.8, 5.7, 5.6, 5.55, 5.5]);
        assert!(front_loaded.early_improvement_fraction().unwrap() > 0.5);
        // Improvement only at the end.
        let back_loaded = synthetic_trace(&[10.0, 10.0, 10.0, 10.0, 10.0, 9.0, 6.0, 5.0]);
        assert!(back_loaded.early_improvement_fraction().unwrap() < 0.5);
    }

    #[test]
    fn degenerate_traces_return_none() {
        assert!(synthetic_trace(&[5.0, 5.0])
            .early_improvement_fraction()
            .is_none());
        assert!(synthetic_trace(&[5.0, 5.0, 5.0, 5.0, 5.0])
            .early_improvement_fraction()
            .is_none());
    }
}
