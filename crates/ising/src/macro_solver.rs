//! The Ising-macro TSP sub-solver (Section III of the paper).
//!
//! [`MacroTspSolver`] drives a [`taxi_xbar::IsingMacro`] through the annealing procedure
//! of Section III-C6: the write current starts at 420 µA and decreases every iteration;
//! each iteration optimises one visiting order (superpose → distance MAC → stochastic
//! mask → ArgMax → spin-storage update), cycling from the first to the last order; when
//! the current reaches 353 µA the spin storage is read out as the solution.
//!
//! Two solve modes exist:
//!
//! * [`solve_cycle`](MacroTspSolver::solve_cycle) — a closed tour over all cities of the
//!   sub-problem (used for the topmost hierarchy level).
//! * [`solve_path`](MacroTspSolver::solve_path) — an open path whose first and last
//!   cities are fixed (used for every other level, where the hierarchical layer pins the
//!   entry/exit cities of each cluster, Section IV-2).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use taxi_dist::DistanceMatrix;
use taxi_xbar::{IsingMacro, MacroConfig, MacroOpCounts};

use crate::{AnnealingSchedule, CurrentSchedule, IsingError};

/// Configuration of the macro-based TSP sub-solver.
///
/// # Example
///
/// ```
/// use taxi_ising::{AnnealingSchedule, CurrentSchedule, MacroSolverConfig};
/// use taxi_xbar::MacroConfig;
///
/// let config = MacroSolverConfig::new(MacroConfig::new(4))
///     .with_schedule(CurrentSchedule::paper());
/// assert_eq!(config.schedule().len(), 1340);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MacroSolverConfig {
    macro_config: MacroConfig,
    schedule: CurrentSchedule,
    elitist: bool,
}

impl MacroSolverConfig {
    /// Creates a solver configuration around a macro configuration, using the default
    /// software schedule and elitist solution tracking.
    pub fn new(macro_config: MacroConfig) -> Self {
        Self {
            macro_config,
            schedule: CurrentSchedule::default(),
            elitist: true,
        }
    }

    /// Overrides the annealing schedule.
    pub fn with_schedule(mut self, schedule: CurrentSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Overrides the macro configuration.
    pub fn with_macro_config(mut self, macro_config: MacroConfig) -> Self {
        self.macro_config = macro_config;
        self
    }

    /// Enables or disables elitist tracking.
    ///
    /// When enabled (the default), the solver snapshots the spin storage after every
    /// complete sweep over the visiting orders and returns the best tour encountered;
    /// when disabled it returns exactly the spin storage read out at the end of the
    /// schedule, as the paper's hardware does.
    pub fn with_elitist(mut self, elitist: bool) -> Self {
        self.elitist = elitist;
        self
    }

    /// The macro configuration.
    pub fn macro_config(&self) -> &MacroConfig {
        &self.macro_config
    }

    /// The annealing schedule.
    pub fn schedule(&self) -> CurrentSchedule {
        self.schedule
    }

    /// Whether elitist tracking is enabled.
    pub fn elitist(&self) -> bool {
        self.elitist
    }
}

impl Default for MacroSolverConfig {
    fn default() -> Self {
        Self::new(MacroConfig::default().with_capacity(64))
    }
}

/// Solution of one sub-problem produced by an Ising macro.
#[derive(Debug, Clone, PartialEq)]
pub struct SubTourSolution {
    /// Visiting order: `order[k]` is the sub-problem city index visited k-th.
    pub order: Vec<usize>,
    /// Length of the tour (cyclic) or path (fixed endpoints), in the units of the input
    /// distance matrix.
    pub length: f64,
    /// Number of annealing iterations executed on the macro.
    pub iterations: u64,
    /// Hardware operation counters accumulated by the macro.
    pub op_counts: MacroOpCounts,
}

/// Scalar outcome of a scratch-based solve ([`MacroTspSolver::solve_cycle_with`] /
/// [`MacroTspSolver::solve_path_with`]); the visiting order is written into the caller's
/// buffer instead of being owned by the result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubTourStats {
    /// Length of the tour (cyclic) or path (fixed endpoints).
    pub length: f64,
    /// Number of annealing iterations executed on the macro.
    pub iterations: u64,
    /// Hardware operation counters accumulated by the macro.
    pub op_counts: MacroOpCounts,
}

/// Reusable per-worker scratch for the macro TSP solver.
///
/// Holds one warm [`IsingMacro`] per sub-problem size (re-targeted in place through
/// [`IsingMacro::remap`]) plus the order/visited buffers of the annealing loop. After a
/// warm-up solve per distinct sub-problem size, every subsequent solve through
/// [`MacroTspSolver::solve_cycle_with`] / [`MacroTspSolver::solve_path_with`] performs
/// zero heap allocations. Results are bit-identical to the allocating entry points: a
/// remapped macro is indistinguishable from a freshly built one.
#[derive(Debug, Clone, Default)]
pub struct MacroScratch {
    /// `macros[n]` is the warm macro for `n`-city sub-problems.
    macros: Vec<Option<IsingMacro>>,
    /// Configuration the warm macros were built with; a config change flushes the pool.
    config: Option<MacroSolverConfig>,
    initial: Vec<usize>,
    best: Vec<usize>,
    snapshot: Vec<usize>,
    visited: Vec<bool>,
}

impl MacroScratch {
    /// Creates an empty (cold) scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of warm macros currently pooled (one per distinct sub-problem size seen).
    pub fn warm_macros(&self) -> usize {
        self.macros.iter().filter(|m| m.is_some()).count()
    }

    /// Ensures the pooled macro for `n` cities is built and programmed for `distances`,
    /// flushing the pool first if the solver configuration changed.
    fn prepare_macro(
        &mut self,
        config: &MacroSolverConfig,
        distances: &DistanceMatrix,
    ) -> Result<(), IsingError> {
        if self.config.as_ref() != Some(config) {
            self.macros.clear();
            self.config = Some(config.clone());
        }
        let n = distances.n();
        if self.macros.len() <= n {
            self.macros.resize_with(n + 1, || None);
        }
        match &mut self.macros[n] {
            Some(macro_) => macro_.remap(distances)?,
            slot => *slot = Some(IsingMacro::new(distances, config.macro_config().clone())?),
        }
        Ok(())
    }
}

/// TSP sub-solver built on a crossbar Ising macro.
#[derive(Debug, Clone, PartialEq)]
pub struct MacroTspSolver {
    config: MacroSolverConfig,
}

impl MacroTspSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: MacroSolverConfig) -> Self {
        Self { config }
    }

    /// The solver configuration.
    pub fn config(&self) -> &MacroSolverConfig {
        &self.config
    }

    /// Solves a closed (cyclic) TSP over the sub-problem described by `distances`.
    ///
    /// # Errors
    ///
    /// Returns an error if the distance matrix is malformed or exceeds the macro
    /// capacity.
    pub fn solve_cycle(
        &self,
        distances: &DistanceMatrix,
        seed: u64,
    ) -> Result<SubTourSolution, IsingError> {
        let mut scratch = MacroScratch::new();
        let mut order = Vec::new();
        let stats = self.solve_cycle_with(distances, seed, &mut scratch, &mut order)?;
        Ok(SubTourSolution {
            order,
            length: stats.length,
            iterations: stats.iterations,
            op_counts: stats.op_counts,
        })
    }

    /// Like [`solve_cycle`](Self::solve_cycle), but reuses a caller-provided
    /// [`MacroScratch`] and writes the visiting order into `out` (cleared first). After
    /// one warm-up solve per sub-problem size the solve performs zero heap allocations;
    /// results are identical to [`solve_cycle`](Self::solve_cycle) for the same seed.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`solve_cycle`](Self::solve_cycle).
    pub fn solve_cycle_with(
        &self,
        distances: &DistanceMatrix,
        seed: u64,
        scratch: &mut MacroScratch,
        out: &mut Vec<usize>,
    ) -> Result<SubTourStats, IsingError> {
        let n = validate_matrix(distances)?;
        out.clear();
        if n <= 3 {
            out.extend(0..n);
            return Ok(SubTourStats {
                length: cycle_length(distances, out),
                iterations: 0,
                op_counts: MacroOpCounts::default(),
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        scratch.prepare_macro(&self.config, distances)?;
        let MacroScratch {
            macros,
            initial,
            best,
            snapshot,
            visited,
            ..
        } = scratch;
        let macro_ = macros[n].as_mut().expect("macro was just prepared");
        nearest_neighbor_order_into(distances, 0, visited, initial);
        macro_.initialize_order(initial)?;

        let schedule = self.config.schedule;
        let total = schedule.len();
        best.clear();
        best.extend_from_slice(initial);
        let mut best_length = cycle_length(distances, best);
        for t in 0..total {
            let order = t % n;
            let i_write = schedule.current_at(t);
            macro_.optimize_order(order, i_write, &mut rng)?;
            if self.config.elitist && (t + 1) % n == 0 {
                macro_.read_solution_into(snapshot)?;
                let length = cycle_length(distances, snapshot);
                if length < best_length {
                    best_length = length;
                    best.clear();
                    best.extend_from_slice(snapshot);
                }
            }
        }
        macro_.read_solution_into(out)?;
        let final_length = cycle_length(distances, out);
        let length = if self.config.elitist && best_length < final_length {
            out.clear();
            out.extend_from_slice(best);
            best_length
        } else {
            final_length
        };
        Ok(SubTourStats {
            length,
            iterations: total as u64,
            op_counts: macro_.op_counts(),
        })
    }

    /// Like [`solve_cycle`](Self::solve_cycle), but additionally records an
    /// [`AnnealingTrace`](crate::AnnealingTrace) with one sample per sweep over the
    /// visiting orders (tour length, write current, stochasticity).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`solve_cycle`](Self::solve_cycle).
    pub fn solve_cycle_traced(
        &self,
        distances: &DistanceMatrix,
        seed: u64,
    ) -> Result<(SubTourSolution, crate::AnnealingTrace), IsingError> {
        let n = validate_matrix(distances)?;
        let mut trace = crate::AnnealingTrace::new();
        if n <= 3 {
            return Ok((self.solve_cycle(distances, seed)?, trace));
        }
        let curve = self.config.macro_config.device_params().switching_curve;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut macro_ = IsingMacro::new(distances, self.config.macro_config.clone())?;
        let initial = nearest_neighbor_order(distances, 0);
        macro_.initialize_order(&initial)?;
        let schedule = self.config.schedule;
        let total = schedule.len();
        let mut best_order = initial.clone();
        let mut best_length = cycle_length(distances, &best_order);
        trace.record(0, schedule.current_at(0), &curve, best_length);
        for t in 0..total {
            let order = t % n;
            let i_write = schedule.current_at(t);
            macro_.optimize_order(order, i_write, &mut rng)?;
            if (t + 1) % n == 0 {
                let snapshot = macro_.read_solution()?;
                let length = cycle_length(distances, &snapshot);
                trace.record(t, i_write, &curve, length);
                if self.config.elitist && length < best_length {
                    best_length = length;
                    best_order = snapshot;
                }
            }
        }
        let final_order = macro_.read_solution()?;
        let final_length = cycle_length(distances, &final_order);
        let (order, length) = if self.config.elitist && best_length < final_length {
            (best_order, best_length)
        } else {
            (final_order, final_length)
        };
        Ok((
            SubTourSolution {
                order,
                length,
                iterations: total as u64,
                op_counts: macro_.op_counts(),
            },
            trace,
        ))
    }

    /// Solves an open-path TSP whose first city is `start` and last city is `end`
    /// (sub-problem endpoint fixing of Section IV-2).
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix is malformed, `start == end` while the sub-problem
    /// has more than one city, or either endpoint is out of range.
    pub fn solve_path(
        &self,
        distances: &DistanceMatrix,
        start: usize,
        end: usize,
        seed: u64,
    ) -> Result<SubTourSolution, IsingError> {
        let mut scratch = MacroScratch::new();
        let mut order = Vec::new();
        let stats = self.solve_path_with(distances, start, end, seed, &mut scratch, &mut order)?;
        Ok(SubTourSolution {
            order,
            length: stats.length,
            iterations: stats.iterations,
            op_counts: stats.op_counts,
        })
    }

    /// Like [`solve_path`](Self::solve_path), but reuses a caller-provided
    /// [`MacroScratch`] and writes the visiting order into `out` (cleared first). After
    /// one warm-up solve per sub-problem size the solve performs zero heap allocations;
    /// results are identical to [`solve_path`](Self::solve_path) for the same seed.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`solve_path`](Self::solve_path).
    pub fn solve_path_with(
        &self,
        distances: &DistanceMatrix,
        start: usize,
        end: usize,
        seed: u64,
        scratch: &mut MacroScratch,
        out: &mut Vec<usize>,
    ) -> Result<SubTourStats, IsingError> {
        let n = validate_matrix(distances)?;
        if start >= n || end >= n {
            return Err(IsingError::InvalidEndpoints {
                reason: format!("endpoints ({start}, {end}) out of range for {n} cities"),
            });
        }
        if n > 1 && start == end {
            return Err(IsingError::InvalidEndpoints {
                reason: "start and end city must differ for sub-problems with more than one city"
                    .to_string(),
            });
        }
        out.clear();
        if n <= 3 {
            out.push(start);
            for c in 0..n {
                if c != start && c != end {
                    out.push(c);
                }
            }
            if n > 1 {
                out.push(end);
            }
            return Ok(SubTourStats {
                length: path_length(distances, out),
                iterations: 0,
                op_counts: MacroOpCounts::default(),
            });
        }

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        scratch.prepare_macro(&self.config, distances)?;
        let MacroScratch {
            macros,
            initial,
            best,
            snapshot,
            visited,
            ..
        } = scratch;
        let macro_ = macros[n].as_mut().expect("macro was just prepared");
        nearest_neighbor_path_order_into(distances, start, end, visited, initial);
        macro_.initialize_order(initial)?;

        let frozen = [start, end];
        let schedule = self.config.schedule;
        let total = schedule.len();
        let interior = n - 2;
        best.clear();
        best.extend_from_slice(initial);
        let mut best_length = path_length(distances, best);
        for t in 0..total {
            // Cycle over the interior orders 1..n-1; endpoints stay pinned.
            let order = 1 + (t % interior);
            let i_write = schedule.current_at(t);
            macro_.optimize_order_constrained(order, i_write, &frozen, &mut rng)?;
            if self.config.elitist && (t + 1) % interior == 0 {
                macro_.read_solution_into(snapshot)?;
                let length = path_length(distances, snapshot);
                if length < best_length {
                    best_length = length;
                    best.clear();
                    best.extend_from_slice(snapshot);
                }
            }
        }
        macro_.read_solution_into(out)?;
        let final_length = path_length(distances, out);
        let length = if self.config.elitist && best_length < final_length {
            out.clear();
            out.extend_from_slice(best);
            best_length
        } else {
            final_length
        };
        debug_assert_eq!(out[0], start, "start endpoint must remain pinned");
        debug_assert_eq!(out[n - 1], end, "end endpoint must remain pinned");
        Ok(SubTourStats {
            length,
            iterations: total as u64,
            op_counts: macro_.op_counts(),
        })
    }
}

impl Default for MacroTspSolver {
    fn default() -> Self {
        Self::new(MacroSolverConfig::default())
    }
}

/// Length of a closed tour under `distances`.
pub fn cycle_length(distances: &DistanceMatrix, order: &[usize]) -> f64 {
    let n = order.len();
    if n < 2 {
        return 0.0;
    }
    (0..n)
        .map(|i| distances.get(order[i], order[(i + 1) % n]))
        .sum()
}

/// Length of an open path under `distances`.
pub fn path_length(distances: &DistanceMatrix, order: &[usize]) -> f64 {
    order
        .windows(2)
        .map(|pair| distances.get(pair[0], pair[1]))
        .sum()
}

/// Nearest-neighbour visiting order starting from `start` (closed-tour initialisation).
pub fn nearest_neighbor_order(distances: &DistanceMatrix, start: usize) -> Vec<usize> {
    let mut visited = Vec::new();
    let mut order = Vec::with_capacity(distances.n());
    nearest_neighbor_order_into(distances, start, &mut visited, &mut order);
    order
}

/// Buffer-reusing form of [`nearest_neighbor_order`]: `visited` and `out` are cleared
/// and refilled, so repeated initialisations allocate nothing once warm.
pub fn nearest_neighbor_order_into(
    distances: &DistanceMatrix,
    start: usize,
    visited: &mut Vec<bool>,
    out: &mut Vec<usize>,
) {
    let n = distances.n();
    visited.clear();
    visited.resize(n, false);
    out.clear();
    let mut current = start;
    visited[current] = true;
    out.push(current);
    for _ in 1..n {
        let row = distances.row(current);
        let next = (0..n)
            .filter(|&c| !visited[c])
            .min_by(|&a, &b| row[a].total_cmp(&row[b]))
            .expect("an unvisited city must remain");
        visited[next] = true;
        out.push(next);
        current = next;
    }
}

/// Nearest-neighbour path order from `start`, forced to terminate at `end`.
pub fn nearest_neighbor_path_order(
    distances: &DistanceMatrix,
    start: usize,
    end: usize,
) -> Vec<usize> {
    let mut visited = Vec::new();
    let mut order = Vec::with_capacity(distances.n());
    nearest_neighbor_path_order_into(distances, start, end, &mut visited, &mut order);
    order
}

/// Buffer-reusing form of [`nearest_neighbor_path_order`].
pub fn nearest_neighbor_path_order_into(
    distances: &DistanceMatrix,
    start: usize,
    end: usize,
    visited: &mut Vec<bool>,
    out: &mut Vec<usize>,
) {
    let n = distances.n();
    visited.clear();
    visited.resize(n, false);
    out.clear();
    visited[start] = true;
    visited[end] = true;
    out.push(start);
    let mut current = start;
    for _ in 0..n.saturating_sub(2) {
        let row = distances.row(current);
        let next = (0..n)
            .filter(|&c| !visited[c])
            .min_by(|&a, &b| row[a].total_cmp(&row[b]))
            .expect("an unvisited interior city must remain");
        visited[next] = true;
        out.push(next);
        current = next;
    }
    if n > 1 {
        out.push(end);
    }
}

fn validate_matrix(distances: &DistanceMatrix) -> Result<usize, IsingError> {
    let n = distances.n();
    if n == 0 {
        return Err(IsingError::InvalidProblem {
            reason: "distance matrix is empty".to_string(),
        });
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Points on a circle: the optimal cycle visits them in angular order.
    fn circle_distances(n: usize) -> (DistanceMatrix, f64) {
        let points: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let angle = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                (angle.cos(), angle.sin())
            })
            .collect();
        let d = DistanceMatrix::from_fn(n, |i, j| {
            let (x1, y1) = points[i];
            let (x2, y2) = points[j];
            ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt()
        });
        let optimal = cycle_length(&d, &(0..n).collect::<Vec<_>>());
        (d, optimal)
    }

    fn is_permutation(order: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        if order.len() != n {
            return false;
        }
        for &c in order {
            if c >= n || seen[c] {
                return false;
            }
            seen[c] = true;
        }
        true
    }

    #[test]
    fn solve_cycle_returns_valid_permutation() {
        let (d, _) = circle_distances(10);
        let solver = MacroTspSolver::default();
        let sol = solver.solve_cycle(&d, 1).unwrap();
        assert!(is_permutation(&sol.order, 10));
        assert!(sol.length > 0.0);
        assert_eq!(sol.iterations, CurrentSchedule::software().len() as u64);
    }

    #[test]
    fn solve_cycle_is_near_optimal_on_circle() {
        let (d, optimal) = circle_distances(10);
        let solver = MacroTspSolver::default();
        let sol = solver.solve_cycle(&d, 7).unwrap();
        assert!(
            sol.length <= optimal * 1.25,
            "macro solution {:.3} should be within 25% of optimum {:.3}",
            sol.length,
            optimal
        );
    }

    #[test]
    fn solve_cycle_handles_tiny_instances_without_hardware() {
        let d = DistanceMatrix::from_rows(&[
            vec![0.0, 1.0, 2.0],
            vec![1.0, 0.0, 1.5],
            vec![2.0, 1.5, 0.0],
        ])
        .unwrap();
        let solver = MacroTspSolver::default();
        let sol = solver.solve_cycle(&d, 0).unwrap();
        assert_eq!(sol.order, vec![0, 1, 2]);
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn solve_path_pins_endpoints() {
        let (d, _) = circle_distances(9);
        let solver = MacroTspSolver::default();
        let sol = solver.solve_path(&d, 2, 6, 3).unwrap();
        assert!(is_permutation(&sol.order, 9));
        assert_eq!(sol.order[0], 2);
        assert_eq!(*sol.order.last().unwrap(), 6);
    }

    #[test]
    fn solve_path_rejects_bad_endpoints() {
        let (d, _) = circle_distances(6);
        let solver = MacroTspSolver::default();
        assert!(solver.solve_path(&d, 0, 9, 1).is_err());
        assert!(solver.solve_path(&d, 3, 3, 1).is_err());
    }

    #[test]
    fn solve_path_beats_or_matches_naive_order() {
        // Points on a line with the endpoints fixed to the extremes: the optimal path is
        // the sorted sweep, and the solver should get close to it.
        let n = 8;
        let d = DistanceMatrix::from_fn(n, |i, j| (i as f64 - j as f64).abs());
        let solver = MacroTspSolver::default();
        let sol = solver.solve_path(&d, 0, n - 1, 5).unwrap();
        let optimal = (n - 1) as f64;
        assert!(
            sol.length <= optimal * 1.6,
            "path length {} vs optimal {optimal}",
            sol.length
        );
    }

    #[test]
    fn empty_matrices_are_rejected() {
        let solver = MacroTspSolver::default();
        assert!(solver.solve_cycle(&DistanceMatrix::default(), 0).is_err());
    }

    #[test]
    fn nearest_neighbor_order_is_permutation() {
        let (d, _) = circle_distances(12);
        let order = nearest_neighbor_order(&d, 4);
        assert!(is_permutation(&order, 12));
        assert_eq!(order[0], 4);
    }

    #[test]
    fn nearest_neighbor_path_respects_endpoints() {
        let (d, _) = circle_distances(7);
        let order = nearest_neighbor_path_order(&d, 1, 5);
        assert!(is_permutation(&order, 7));
        assert_eq!(order[0], 1);
        assert_eq!(*order.last().unwrap(), 5);
    }

    #[test]
    fn lengths_helpers_match_manual_sums() {
        let d = DistanceMatrix::from_rows(&[
            vec![0.0, 1.0, 4.0],
            vec![1.0, 0.0, 2.0],
            vec![4.0, 2.0, 0.0],
        ])
        .unwrap();
        assert!((cycle_length(&d, &[0, 1, 2]) - 7.0).abs() < 1e-12);
        assert!((path_length(&d, &[0, 1, 2]) - 3.0).abs() < 1e-12);
        assert_eq!(cycle_length(&d, &[0]), 0.0);
    }

    /// Reusing one scratch across many solves must give bit-identical results to fresh
    /// solves: the warm macro pool is behaviourally transparent.
    #[test]
    fn scratch_reuse_matches_fresh_solves() {
        let solver = MacroTspSolver::default();
        let mut scratch = MacroScratch::new();
        let mut out = Vec::new();
        for round in 0..3u64 {
            for n in [5usize, 8, 10] {
                let (d, _) = circle_distances(n);
                let seed = round * 31 + n as u64;
                let fresh = solver.solve_cycle(&d, seed).unwrap();
                let stats = solver
                    .solve_cycle_with(&d, seed, &mut scratch, &mut out)
                    .unwrap();
                assert_eq!(out, fresh.order, "cycle n={n} round={round}");
                assert_eq!(stats.length, fresh.length);
                assert_eq!(stats.op_counts, fresh.op_counts);

                let fresh = solver.solve_path(&d, 0, n - 1, seed).unwrap();
                let stats = solver
                    .solve_path_with(&d, 0, n - 1, seed, &mut scratch, &mut out)
                    .unwrap();
                assert_eq!(out, fresh.order, "path n={n} round={round}");
                assert_eq!(stats.length, fresh.length);
            }
        }
        // One warm macro per distinct size.
        assert_eq!(scratch.warm_macros(), 3);
    }

    /// Changing the solver configuration between solves flushes the warm pool instead of
    /// silently reusing macros built for a different precision/schedule.
    #[test]
    fn scratch_flushes_on_config_change() {
        let (d, _) = circle_distances(6);
        let mut scratch = MacroScratch::new();
        let mut out = Vec::new();
        let a = MacroTspSolver::default();
        a.solve_cycle_with(&d, 1, &mut scratch, &mut out).unwrap();
        let b = MacroTspSolver::new(
            MacroSolverConfig::new(MacroConfig::new(2).with_capacity(64))
                .with_schedule(CurrentSchedule::software()),
        );
        let fresh = b.solve_cycle(&d, 1).unwrap();
        let stats = b.solve_cycle_with(&d, 1, &mut scratch, &mut out).unwrap();
        assert_eq!(out, fresh.order);
        assert_eq!(stats.length, fresh.length);
    }

    #[test]
    fn paper_schedule_runs_more_iterations_than_fast() {
        let (d, _) = circle_distances(6);
        let fast = MacroTspSolver::default().solve_cycle(&d, 2).unwrap();
        let paper_cfg = MacroSolverConfig::default().with_schedule(CurrentSchedule::paper());
        let slow = MacroTspSolver::new(paper_cfg).solve_cycle(&d, 2).unwrap();
        assert!(slow.iterations > fast.iterations);
        assert_eq!(slow.op_counts.order_steps, slow.iterations);
    }
}
