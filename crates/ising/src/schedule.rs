//! Annealing schedules.
//!
//! The paper's schedule (Section III-C6) ramps the SOT write current linearly from
//! 420 µA (P_sw ≈ 20 %) down by 50 nA per iteration until 353 µA (P_sw ≈ 1 %), at which
//! point the solver stops and the spin storage is read out. Because the device's
//! switching probability is sigmoidal in current, a linear current ramp produces a
//! *non-linear* decay of stochasticity: fast early, slow late — which the paper argues
//! gives short overall latency without sacrificing late-stage refinement.

use taxi_device::{SwitchingCurve, WriteCurrent};

/// A generic annealing schedule over discrete iterations.
pub trait AnnealingSchedule {
    /// Total number of iterations in the schedule.
    fn len(&self) -> usize;

    /// Returns `true` if the schedule has no iterations.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Write current applied at iteration `iteration` (0-based).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `iteration >= self.len()`.
    fn current_at(&self, iteration: usize) -> WriteCurrent;

    /// Stochasticity (expected mask-pass probability) at iteration `iteration`, given a
    /// switching curve.
    fn stochasticity_at(&self, iteration: usize, curve: &SwitchingCurve) -> f64 {
        curve.probability(self.current_at(iteration))
    }
}

/// The paper's linear write-current ramp.
///
/// # Example
///
/// ```
/// use taxi_ising::{AnnealingSchedule, CurrentSchedule};
///
/// let schedule = CurrentSchedule::paper();
/// assert_eq!(schedule.len(), 1340);
/// let fast = CurrentSchedule::fast();
/// assert!(fast.len() < schedule.len());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurrentSchedule {
    start: WriteCurrent,
    stop: WriteCurrent,
    step: WriteCurrent,
}

impl CurrentSchedule {
    /// Creates a schedule ramping from `start` down to `stop` in decrements of `step`.
    ///
    /// # Panics
    ///
    /// Panics if `start <= stop` or `step` is not strictly positive.
    pub fn new(start: WriteCurrent, stop: WriteCurrent, step: WriteCurrent) -> Self {
        assert!(
            start > stop,
            "schedule must ramp downwards (start {start} must exceed stop {stop})"
        );
        assert!(
            step.as_amps() > 0.0,
            "schedule step must be strictly positive"
        );
        Self { start, stop, step }
    }

    /// The paper's schedule: 420 µA → 353 µA in 50 nA steps (1340 iterations).
    pub fn paper() -> Self {
        Self::new(
            WriteCurrent::from_micro_amps(420.0),
            WriteCurrent::from_micro_amps(353.0),
            WriteCurrent::from_nano_amps(50.0),
        )
    }

    /// A coarser schedule covering the same current range in 1 µA steps (67 iterations).
    ///
    /// Useful for quick functional tests; too short for good solution quality on
    /// non-trivial sub-problems.
    pub fn fast() -> Self {
        Self::new(
            WriteCurrent::from_micro_amps(420.0),
            WriteCurrent::from_micro_amps(353.0),
            WriteCurrent::from_micro_amps(1.0),
        )
    }

    /// The default software-simulation schedule: the same current range in 100 nA steps
    /// (670 iterations, half the paper's hardware iteration count).
    ///
    /// Software simulations of many thousands of sub-problems use this schedule by
    /// default; hardware latency/energy accounting can still be performed for the full
    /// paper schedule because the per-iteration cost is schedule-independent.
    pub fn software() -> Self {
        Self::new(
            WriteCurrent::from_micro_amps(420.0),
            WriteCurrent::from_micro_amps(353.0),
            WriteCurrent::from_nano_amps(100.0),
        )
    }

    /// Starting (highest) current.
    pub fn start(&self) -> WriteCurrent {
        self.start
    }

    /// Stopping (lowest) current.
    pub fn stop(&self) -> WriteCurrent {
        self.stop
    }

    /// Per-iteration decrement.
    pub fn step(&self) -> WriteCurrent {
        self.step
    }
}

impl Default for CurrentSchedule {
    fn default() -> Self {
        Self::software()
    }
}

impl AnnealingSchedule for CurrentSchedule {
    fn len(&self) -> usize {
        let span = self.start.as_amps() - self.stop.as_amps();
        (span / self.step.as_amps()).floor() as usize
    }

    fn current_at(&self, iteration: usize) -> WriteCurrent {
        assert!(iteration < self.len(), "iteration out of schedule range");
        let i = self.start.as_amps() - iteration as f64 * self.step.as_amps();
        WriteCurrent::from_amps(i.max(self.stop.as_amps()))
    }
}

/// A geometric temperature schedule for the software simulated-annealing baseline.
///
/// # Example
///
/// ```
/// use taxi_ising::GeometricTemperatureSchedule;
///
/// let schedule = GeometricTemperatureSchedule::new(10.0, 0.1, 0.95);
/// assert!(schedule.len() > 0);
/// assert!(schedule.temperature_at(0) > schedule.temperature_at(schedule.len() - 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricTemperatureSchedule {
    start: f64,
    stop: f64,
    factor: f64,
}

impl GeometricTemperatureSchedule {
    /// Creates a schedule cooling from `start` to `stop` by multiplying with `factor`
    /// each iteration.
    ///
    /// # Panics
    ///
    /// Panics unless `start > stop > 0` and `0 < factor < 1`.
    pub fn new(start: f64, stop: f64, factor: f64) -> Self {
        assert!(
            start > stop && stop > 0.0,
            "temperatures must satisfy start > stop > 0"
        );
        assert!(
            factor > 0.0 && factor < 1.0,
            "cooling factor must lie in (0, 1)"
        );
        Self {
            start,
            stop,
            factor,
        }
    }

    /// Number of iterations until the temperature drops below `stop`.
    pub fn len(&self) -> usize {
        ((self.stop / self.start).ln() / self.factor.ln()).ceil() as usize
    }

    /// Returns `true` if the schedule has no iterations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Temperature at iteration `iteration`.
    pub fn temperature_at(&self, iteration: usize) -> f64 {
        (self.start * self.factor.powi(iteration as i32)).max(self.stop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedule_has_1340_iterations() {
        assert_eq!(CurrentSchedule::paper().len(), 1340);
    }

    #[test]
    fn fast_schedule_covers_same_range_with_fewer_steps() {
        let fast = CurrentSchedule::fast();
        let paper = CurrentSchedule::paper();
        assert_eq!(fast.start(), paper.start());
        assert_eq!(fast.stop(), paper.stop());
        assert!(fast.len() < paper.len());
        assert_eq!(fast.len(), 67);
    }

    #[test]
    fn current_decreases_monotonically() {
        let s = CurrentSchedule::fast();
        let mut prev = f64::INFINITY;
        for i in 0..s.len() {
            let c = s.current_at(i).as_micro_amps();
            assert!(c < prev);
            assert!(c >= s.stop().as_micro_amps() - 1e-9);
            prev = c;
        }
    }

    #[test]
    #[should_panic(expected = "iteration out of schedule range")]
    fn out_of_range_iteration_panics() {
        let s = CurrentSchedule::fast();
        let _ = s.current_at(s.len());
    }

    #[test]
    #[should_panic(expected = "ramp downwards")]
    fn inverted_schedule_is_rejected() {
        CurrentSchedule::new(
            WriteCurrent::from_micro_amps(300.0),
            WriteCurrent::from_micro_amps(400.0),
            WriteCurrent::from_nano_amps(50.0),
        );
    }

    #[test]
    fn stochasticity_decays_nonlinearly() {
        // The drop in stochasticity during the first half of the linear current ramp must
        // exceed the drop during the second half (the sigmoid argument of the paper).
        let s = CurrentSchedule::paper();
        let curve = SwitchingCurve::paper_fit();
        let p_start = s.stochasticity_at(0, &curve);
        let p_mid = s.stochasticity_at(s.len() / 2, &curve);
        let p_end = s.stochasticity_at(s.len() - 1, &curve);
        assert!(p_start - p_mid > p_mid - p_end);
        assert!((p_start - 0.20).abs() < 0.01);
        assert!(p_end < 0.015);
    }

    #[test]
    fn geometric_schedule_cools_to_floor() {
        let g = GeometricTemperatureSchedule::new(10.0, 0.1, 0.9);
        let last = g.temperature_at(g.len());
        assert!(last >= 0.1 - 1e-12);
        assert!(g.temperature_at(0) > g.temperature_at(5));
    }

    #[test]
    #[should_panic(expected = "cooling factor")]
    fn geometric_schedule_rejects_bad_factor() {
        GeometricTemperatureSchedule::new(10.0, 0.1, 1.5);
    }
}
