//! Software simulated-annealing solver for generic Ising models.
//!
//! This is the algorithmic baseline used to validate the hardware macro and to model the
//! CMOS-annealer style solvers the paper compares against: single-spin Metropolis updates
//! under a geometric temperature schedule.

use rand::Rng;

use crate::{GeometricTemperatureSchedule, IsingError, IsingModel, Spin};

/// Configuration of the simulated-annealing Ising solver.
///
/// # Example
///
/// ```
/// use taxi_ising::SaConfig;
///
/// let config = SaConfig::default().with_sweeps_per_temperature(4);
/// assert_eq!(config.sweeps_per_temperature(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaConfig {
    schedule: GeometricTemperatureSchedule,
    sweeps_per_temperature: usize,
}

impl SaConfig {
    /// Creates a configuration with an explicit temperature schedule.
    pub fn new(schedule: GeometricTemperatureSchedule) -> Self {
        Self {
            schedule,
            sweeps_per_temperature: 2,
        }
    }

    /// Sets the number of full sweeps performed at each temperature.
    pub fn with_sweeps_per_temperature(mut self, sweeps: usize) -> Self {
        self.sweeps_per_temperature = sweeps.max(1);
        self
    }

    /// The temperature schedule.
    pub fn schedule(&self) -> GeometricTemperatureSchedule {
        self.schedule
    }

    /// Sweeps per temperature.
    pub fn sweeps_per_temperature(&self) -> usize {
        self.sweeps_per_temperature
    }
}

impl Default for SaConfig {
    fn default() -> Self {
        Self::new(GeometricTemperatureSchedule::new(5.0, 0.01, 0.93))
    }
}

/// Metropolis simulated annealing over an [`IsingModel`].
///
/// # Example
///
/// ```
/// use taxi_ising::{IsingModel, SaConfig, SimulatedAnnealingIsingSolver, Spin};
/// use rand::SeedableRng;
///
/// // Ferromagnetic chain: ground state is all spins aligned.
/// let mut model = IsingModel::new(4)?;
/// for i in 0..3 {
///     model.set_coupling(i, i + 1, 1.0)?;
/// }
/// model.set_spins(&[Spin::Up, Spin::Down, Spin::Up, Spin::Down])?;
/// let solver = SimulatedAnnealingIsingSolver::new(SaConfig::default());
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let result = solver.solve(&mut model, &mut rng);
/// assert!(result.final_energy <= result.initial_energy);
/// # Ok::<(), taxi_ising::IsingError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedAnnealingIsingSolver {
    config: SaConfig,
}

/// Outcome of a simulated-annealing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaResult {
    /// Energy of the configuration the solver started from.
    pub initial_energy: f64,
    /// Energy of the configuration the solver ended with.
    pub final_energy: f64,
    /// Number of accepted spin flips.
    pub accepted_flips: u64,
    /// Number of proposed spin flips.
    pub proposed_flips: u64,
}

impl SimulatedAnnealingIsingSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: SaConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SaConfig {
        &self.config
    }

    /// Anneals the model in place, returning summary statistics.
    pub fn solve<R: Rng + ?Sized>(&self, model: &mut IsingModel, rng: &mut R) -> SaResult {
        let initial_energy = model.total_energy();
        let mut accepted = 0u64;
        let mut proposed = 0u64;
        let schedule = self.config.schedule;
        let n = model.len();
        for step in 0..schedule.len() {
            let temperature = schedule.temperature_at(step);
            for _ in 0..self.config.sweeps_per_temperature {
                for _ in 0..n {
                    let i = rng.gen_range(0..n);
                    let delta = model.flip_delta(i);
                    proposed += 1;
                    let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature).exp();
                    if accept {
                        model.set_spin(i, model.spin(i).flipped());
                        accepted += 1;
                    }
                }
            }
        }
        // Final greedy descent to settle into the nearest local minimum.
        let mut improved = true;
        while improved {
            improved = false;
            for i in 0..n {
                if model.flip_delta(i) < 0.0 {
                    model.set_spin(i, model.spin(i).flipped());
                    improved = true;
                }
            }
        }
        SaResult {
            initial_energy,
            final_energy: model.total_energy(),
            accepted_flips: accepted,
            proposed_flips: proposed,
        }
    }

    /// Convenience helper: anneals a fresh random configuration of `model` and returns
    /// the best spin configuration found along with its energy.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the model.
    pub fn solve_from_random<R: Rng + ?Sized>(
        &self,
        model: &mut IsingModel,
        rng: &mut R,
    ) -> Result<(Vec<Spin>, f64), IsingError> {
        let random: Vec<Spin> = (0..model.len())
            .map(|_| {
                if rng.gen::<bool>() {
                    Spin::Up
                } else {
                    Spin::Down
                }
            })
            .collect();
        model.set_spins(&random)?;
        let result = self.solve(model, rng);
        Ok((model.spins().to_vec(), result.final_energy))
    }
}

impl Default for SimulatedAnnealingIsingSolver {
    fn default() -> Self {
        Self::new(SaConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ferromagnetic_ring(n: usize) -> IsingModel {
        let mut m = IsingModel::new(n).unwrap();
        for i in 0..n {
            m.set_coupling(i, (i + 1) % n, 1.0).unwrap();
        }
        m
    }

    #[test]
    fn annealing_reaches_ferromagnetic_ground_state() {
        let mut model = ferromagnetic_ring(8);
        let alternating: Vec<Spin> = (0..8)
            .map(|i| if i % 2 == 0 { Spin::Up } else { Spin::Down })
            .collect();
        model.set_spins(&alternating).unwrap();
        let solver = SimulatedAnnealingIsingSolver::default();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let result = solver.solve(&mut model, &mut rng);
        // Ground state: all aligned, energy −8 (8 satisfied couplings).
        assert!((result.final_energy - (-8.0)).abs() < 1e-9);
        let first = model.spin(0);
        assert!(model.spins().iter().all(|&s| s == first));
    }

    #[test]
    fn annealing_never_reports_negative_counters() {
        let mut model = ferromagnetic_ring(4);
        let solver = SimulatedAnnealingIsingSolver::default();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let result = solver.solve(&mut model, &mut rng);
        assert!(result.proposed_flips >= result.accepted_flips);
        assert!(result.proposed_flips > 0);
    }

    #[test]
    fn solve_from_random_returns_consistent_energy() {
        let mut model = ferromagnetic_ring(6);
        let solver = SimulatedAnnealingIsingSolver::default();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let (spins, energy) = solver.solve_from_random(&mut model, &mut rng).unwrap();
        model.set_spins(&spins).unwrap();
        assert!((model.total_energy() - energy).abs() < 1e-9);
    }

    #[test]
    fn frustrated_system_still_terminates_at_local_minimum() {
        // Anti-ferromagnetic triangle: no configuration satisfies all bonds, but the
        // solver must still terminate with every single-flip delta non-negative.
        let mut model = IsingModel::new(3).unwrap();
        model.set_coupling(0, 1, -1.0).unwrap();
        model.set_coupling(1, 2, -1.0).unwrap();
        model.set_coupling(0, 2, -1.0).unwrap();
        let solver = SimulatedAnnealingIsingSolver::default();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        solver.solve(&mut model, &mut rng);
        for i in 0..3 {
            assert!(model.flip_delta(i) >= -1e-12);
        }
    }
}
