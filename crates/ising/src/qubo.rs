//! QUBO formulation and the standard TSP-to-QUBO encoding.
//!
//! The paper represents the visiting information `σ_{A,i}` (city A visited at order i) as
//! binary variables following the QUBO/Ising equivalence (its ref. \[20\]). This module
//! provides the explicit encoding: an `N × N` grid of binary variables with one-hot
//! constraints on both rows (each city visited exactly once) and columns (each order
//! filled exactly once), plus the distance objective on adjacent orders. The generic
//! software solvers in this workspace ([`crate::SimulatedAnnealingIsingSolver`], the
//! HVC-style baseline) consume this encoding; the hardware macro realises the same
//! objective implicitly through its MAC + ArgMax update.

use taxi_dist::DistanceMatrix;

use crate::{IsingError, IsingModel};

/// A quadratic unconstrained binary optimisation problem: minimise `xᵀQx` over binary `x`.
///
/// `Q` is stored as an upper-triangular matrix (diagonal entries are the linear terms).
///
/// # Example
///
/// ```
/// use taxi_ising::Qubo;
///
/// // minimise x0 + x1 − 2·x0·x1  (optimum: x0 = x1 = 1 with value 0, or x = 0)
/// let mut q = Qubo::new(2)?;
/// q.add(0, 0, 1.0)?;
/// q.add(1, 1, 1.0)?;
/// q.add(0, 1, -2.0)?;
/// assert_eq!(q.evaluate(&[true, true]), 0.0);
/// assert_eq!(q.evaluate(&[true, false]), 1.0);
/// # Ok::<(), taxi_ising::IsingError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Qubo {
    n: usize,
    /// Upper-triangular coefficients, row-major (entries with j < i are unused zeros).
    q: Vec<f64>,
}

impl Qubo {
    /// Creates a QUBO over `n` binary variables with all coefficients zero.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::InvalidProblem`] if `n` is zero.
    pub fn new(n: usize) -> Result<Self, IsingError> {
        if n == 0 {
            return Err(IsingError::InvalidProblem {
                reason: "a QUBO needs at least one variable".to_string(),
            });
        }
        Ok(Self {
            n,
            q: vec![0.0; n * n],
        })
    }

    /// Resets the QUBO in place to `n` variables with all coefficients zero, reusing the
    /// coefficient buffer: once the buffer has grown to the largest problem seen,
    /// re-encoding sub-problems allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::InvalidProblem`] if `n` is zero.
    pub fn reset(&mut self, n: usize) -> Result<(), IsingError> {
        if n == 0 {
            return Err(IsingError::InvalidProblem {
                reason: "a QUBO needs at least one variable".to_string(),
            });
        }
        self.n = n;
        self.q.clear();
        self.q.resize(n * n, 0.0);
        Ok(())
    }

    /// Number of binary variables.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the QUBO has no variables (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds `value` to the coefficient of `x_i x_j` (or the linear term when `i == j`).
    ///
    /// # Errors
    ///
    /// Returns an error if either index is out of range.
    pub fn add(&mut self, i: usize, j: usize, value: f64) -> Result<(), IsingError> {
        self.check(i)?;
        self.check(j)?;
        let (a, b) = if i <= j { (i, j) } else { (j, i) };
        self.q[a * self.n + b] += value;
        Ok(())
    }

    /// The coefficient of `x_i x_j` (or the linear term when `i == j`).
    ///
    /// # Errors
    ///
    /// Returns an error if either index is out of range.
    pub fn coefficient(&self, i: usize, j: usize) -> Result<f64, IsingError> {
        self.check(i)?;
        self.check(j)?;
        let (a, b) = if i <= j { (i, j) } else { (j, i) };
        Ok(self.q[a * self.n + b])
    }

    /// Evaluates the objective for a binary assignment.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the number of variables.
    pub fn evaluate(&self, x: &[bool]) -> f64 {
        assert_eq!(
            x.len(),
            self.n,
            "assignment length must match variable count"
        );
        let mut total = 0.0;
        for i in 0..self.n {
            if !x[i] {
                continue;
            }
            for j in i..self.n {
                if x[j] {
                    total += self.q[i * self.n + j];
                }
            }
        }
        total
    }

    /// Converts the QUBO into an equivalent Ising model (up to a constant energy offset)
    /// using the standard substitution `x_i = (1 + σ_i) / 2`.
    ///
    /// # Errors
    ///
    /// Propagates model-construction errors (which cannot occur for a valid QUBO).
    pub fn to_ising(&self) -> Result<IsingModel, IsingError> {
        let mut model = IsingModel::new(self.n)?;
        self.to_ising_into(&mut model)?;
        Ok(model)
    }

    /// Like [`to_ising`](Self::to_ising), but rebuilds a caller-provided model in place
    /// (couplings, fields and spins are reset first), reusing its buffers.
    ///
    /// # Errors
    ///
    /// Propagates model-construction errors (which cannot occur for a valid QUBO).
    pub fn to_ising_into(&self, model: &mut IsingModel) -> Result<(), IsingError> {
        model.reset(self.n)?;
        let mut h = vec![0.0; self.n];
        for i in 0..self.n {
            // Linear term Q_ii x_i → (Q_ii / 2) σ_i + const.
            h[i] += self.q[i * self.n + i] / 2.0;
            for j in (i + 1)..self.n {
                let qij = self.q[i * self.n + j];
                if qij != 0.0 {
                    // Q_ij x_i x_j → (Q_ij/4)(σ_i σ_j + σ_i + σ_j) + const.
                    // Energy convention: H = −Σ J σσ − Σ h σ, so J = −Q/4, h −= Q/4.
                    let existing = model.coupling(i, j)?;
                    model.set_coupling(i, j, existing - qij / 4.0)?;
                    h[i] += qij / 4.0;
                    h[j] += qij / 4.0;
                }
            }
        }
        for (i, hi) in h.into_iter().enumerate() {
            // h in the model is also under a minus sign: −h σ. Minimising Q means the
            // linear contribution +c·x becomes +c/2·σ, i.e. field −c/2.
            model.set_field(i, -hi)?;
        }
        Ok(())
    }

    fn check(&self, i: usize) -> Result<(), IsingError> {
        if i < self.n {
            Ok(())
        } else {
            Err(IsingError::IndexOutOfRange {
                kind: "variable",
                index: i,
                len: self.n,
            })
        }
    }
}

/// Encoder producing the standard TSP QUBO over `N × N` visit variables.
///
/// Variable `x_{c,o}` (index `c · N + o`) is 1 when city `c` is visited at order `o`.
/// The objective is
///
/// ```text
///   A · Σ_c (Σ_o x_{c,o} − 1)²  +  A · Σ_o (Σ_c x_{c,o} − 1)²
/// + Σ_{c≠c'} Σ_o d(c, c') · x_{c,o} · x_{c',o+1}
/// ```
///
/// with the constraint weight `A` chosen larger than the longest edge so that constraint
/// violations are never profitable.
///
/// # Example
///
/// ```
/// use taxi_dist::DistanceMatrix;
/// use taxi_ising::TspQuboEncoder;
///
/// let d = DistanceMatrix::from_rows(&[
///     vec![0.0, 1.0, 2.0],
///     vec![1.0, 0.0, 1.5],
///     vec![2.0, 1.5, 0.0],
/// ])
/// .expect("square matrix");
/// let encoder = TspQuboEncoder::new(&d)?;
/// let qubo = encoder.encode()?;
/// assert_eq!(qubo.len(), 9);
/// // A valid tour has lower objective than an invalid assignment.
/// let tour = encoder.assignment_for_order(&[0, 1, 2]);
/// let invalid = vec![false; 9];
/// assert!(qubo.evaluate(&tour) < qubo.evaluate(&invalid));
/// # Ok::<(), taxi_ising::IsingError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TspQuboEncoder {
    distances: DistanceMatrix,
    constraint_weight: f64,
}

impl TspQuboEncoder {
    /// Creates an encoder for a square distance matrix, deriving the constraint weight
    /// automatically (2 × the longest finite edge + 1).
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::InvalidProblem`] if the matrix is empty.
    pub fn new(distances: &DistanceMatrix) -> Result<Self, IsingError> {
        if distances.is_empty() {
            return Err(IsingError::InvalidProblem {
                reason: "distance matrix must be non-empty".to_string(),
            });
        }
        let max_edge = distances.max_finite().max(0.0);
        Ok(Self {
            distances: distances.clone(),
            constraint_weight: 2.0 * max_edge + 1.0,
        })
    }

    /// Overrides the constraint (penalty) weight `A`.
    pub fn with_constraint_weight(mut self, weight: f64) -> Self {
        self.constraint_weight = weight;
        self
    }

    /// Number of cities.
    pub fn num_cities(&self) -> usize {
        self.distances.n()
    }

    /// The penalty weight `A`.
    pub fn constraint_weight(&self) -> f64 {
        self.constraint_weight
    }

    /// Index of the variable for (city, order).
    pub fn variable(&self, city: usize, order: usize) -> usize {
        city * self.num_cities() + order
    }

    /// Builds the binary assignment corresponding to a visiting order
    /// (`order[o] = city`).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the cities.
    pub fn assignment_for_order(&self, order: &[usize]) -> Vec<bool> {
        let n = self.num_cities();
        assert_eq!(
            order.len(),
            n,
            "order length must equal the number of cities"
        );
        let mut x = vec![false; n * n];
        for (o, &c) in order.iter().enumerate() {
            assert!(c < n, "city index out of range");
            x[self.variable(c, o)] = true;
        }
        x
    }

    /// Encodes the TSP into a QUBO.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (cannot occur for a validated encoder).
    pub fn encode(&self) -> Result<Qubo, IsingError> {
        let mut qubo = Qubo::new(self.num_cities() * self.num_cities())?;
        self.encode_into(&mut qubo)?;
        Ok(qubo)
    }

    /// Like [`encode`](Self::encode), but rebuilds a caller-provided QUBO in place via
    /// [`Qubo::reset`], so encoding a stream of sub-problems reuses one coefficient
    /// buffer.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (cannot occur for a validated encoder).
    pub fn encode_into(&self, qubo: &mut Qubo) -> Result<(), IsingError> {
        let n = self.num_cities();
        let a = self.constraint_weight;
        qubo.reset(n * n)?;

        // Row constraints: each city appears in exactly one order.
        for c in 0..n {
            for o in 0..n {
                qubo.add(self.variable(c, o), self.variable(c, o), -a)?;
                for o2 in (o + 1)..n {
                    qubo.add(self.variable(c, o), self.variable(c, o2), 2.0 * a)?;
                }
            }
        }
        // Column constraints: each order holds exactly one city.
        for o in 0..n {
            for c in 0..n {
                qubo.add(self.variable(c, o), self.variable(c, o), -a)?;
                for c2 in (c + 1)..n {
                    qubo.add(self.variable(c, o), self.variable(c2, o), 2.0 * a)?;
                }
            }
        }
        // Distance objective on adjacent orders (cyclic).
        for c in 0..n {
            for c2 in 0..n {
                if c == c2 {
                    continue;
                }
                let d = self.distances.get(c, c2);
                if !d.is_finite() {
                    continue;
                }
                for o in 0..n {
                    let o_next = (o + 1) % n;
                    qubo.add(self.variable(c, o), self.variable(c2, o_next), d)?;
                }
            }
        }
        Ok(())
    }

    /// Tour length of a visiting order under this instance's distances (cyclic).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the cities.
    pub fn tour_length(&self, order: &[usize]) -> f64 {
        let n = self.num_cities();
        assert_eq!(
            order.len(),
            n,
            "order length must equal the number of cities"
        );
        (0..n)
            .map(|i| self.distances.get(order[i], order[(i + 1) % n]))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Spin;

    fn square4() -> DistanceMatrix {
        // Unit square: optimal cycle is the perimeter with length 4.
        let pts: [(f64, f64); 4] = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)];
        DistanceMatrix::from_fn(4, |i, j| {
            let (x1, y1) = pts[i];
            let (x2, y2) = pts[j];
            (x1 - x2).hypot(y1 - y2)
        })
    }

    #[test]
    fn qubo_evaluation_counts_pairs_once() {
        let mut q = Qubo::new(3).unwrap();
        q.add(0, 1, 2.0).unwrap();
        q.add(1, 0, 1.0).unwrap(); // accumulates onto the same upper-triangular slot
        assert_eq!(q.coefficient(0, 1).unwrap(), 3.0);
        assert_eq!(q.evaluate(&[true, true, false]), 3.0);
    }

    #[test]
    fn empty_qubo_is_rejected() {
        assert!(Qubo::new(0).is_err());
    }

    #[test]
    fn tsp_encoding_has_n_squared_variables() {
        let enc = TspQuboEncoder::new(&square4()).unwrap();
        assert_eq!(enc.encode().unwrap().len(), 16);
    }

    #[test]
    fn valid_tours_beat_constraint_violations() {
        let enc = TspQuboEncoder::new(&square4()).unwrap();
        let qubo = enc.encode().unwrap();
        let valid = enc.assignment_for_order(&[0, 1, 2, 3]);
        // Violation: city 0 visited twice, city 1 never.
        let mut invalid = valid.clone();
        invalid[enc.variable(1, 1)] = false;
        invalid[enc.variable(0, 1)] = true;
        assert!(qubo.evaluate(&valid) < qubo.evaluate(&invalid));
    }

    #[test]
    fn shorter_tours_have_lower_objective() {
        let enc = TspQuboEncoder::new(&square4()).unwrap();
        let qubo = enc.encode().unwrap();
        let perimeter = enc.assignment_for_order(&[0, 1, 2, 3]);
        let crossing = enc.assignment_for_order(&[0, 2, 1, 3]);
        assert!(qubo.evaluate(&perimeter) < qubo.evaluate(&crossing));
    }

    #[test]
    fn objective_difference_matches_tour_length_difference() {
        let enc = TspQuboEncoder::new(&square4()).unwrap();
        let qubo = enc.encode().unwrap();
        let a = [0usize, 1, 2, 3];
        let b = [0usize, 2, 1, 3];
        let qubo_diff = qubo.evaluate(&enc.assignment_for_order(&b))
            - qubo.evaluate(&enc.assignment_for_order(&a));
        let len_diff = enc.tour_length(&b) - enc.tour_length(&a);
        assert!((qubo_diff - len_diff).abs() < 1e-9);
    }

    #[test]
    fn to_ising_preserves_ordering_of_configurations() {
        let mut q = Qubo::new(3).unwrap();
        q.add(0, 0, 1.0).unwrap();
        q.add(1, 1, -2.0).unwrap();
        q.add(0, 1, 3.0).unwrap();
        q.add(1, 2, -1.5).unwrap();
        let ising = q.to_ising().unwrap();
        // Enumerate all 8 configurations; the QUBO and Ising energies must differ by the
        // same constant for every configuration.
        let mut offsets = Vec::new();
        for bits in 0..8u32 {
            let x: Vec<bool> = (0..3).map(|i| (bits >> i) & 1 == 1).collect();
            let spins: Vec<Spin> = x
                .iter()
                .map(|&b| if b { Spin::Up } else { Spin::Down })
                .collect();
            let mut model = ising.clone();
            model.set_spins(&spins).unwrap();
            offsets.push(q.evaluate(&x) - model.total_energy());
        }
        let first = offsets[0];
        assert!(
            offsets.iter().all(|o| (o - first).abs() < 1e-9),
            "QUBO and Ising energies must differ only by a constant: {offsets:?}"
        );
    }

    #[test]
    fn empty_matrix_is_rejected() {
        assert!(TspQuboEncoder::new(&DistanceMatrix::default()).is_err());
    }

    /// `reset` + `encode_into` must reproduce a fresh encode exactly, including after the
    /// buffer has been used for a larger problem.
    #[test]
    fn encode_into_reuses_buffers_without_changing_results() {
        let enc4 = TspQuboEncoder::new(&square4()).unwrap();
        let fresh = enc4.encode().unwrap();
        let mut reused = Qubo::new(25).unwrap();
        reused.add(0, 3, 42.0).unwrap(); // dirty state that reset must clear
        enc4.encode_into(&mut reused).unwrap();
        assert_eq!(reused, fresh);
        assert!(Qubo::new(1).unwrap().reset(0).is_err());
    }

    #[test]
    fn to_ising_into_matches_to_ising() {
        let enc = TspQuboEncoder::new(&square4()).unwrap();
        let qubo = enc.encode().unwrap();
        let fresh = qubo.to_ising().unwrap();
        let mut reused = crate::IsingModel::new(3).unwrap();
        qubo.to_ising_into(&mut reused).unwrap();
        assert_eq!(reused, fresh);
    }

    #[test]
    fn tour_length_matches_manual_computation() {
        let enc = TspQuboEncoder::new(&square4()).unwrap();
        assert!((enc.tour_length(&[0, 1, 2, 3]) - 4.0).abs() < 1e-12);
        let diag = 2.0f64.sqrt();
        assert!((enc.tour_length(&[0, 2, 1, 3]) - (2.0 * diag + 2.0)).abs() < 1e-12);
    }
}
