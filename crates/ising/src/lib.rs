//! Ising-model formulation and annealing algorithms for the TAXI reproduction.
//!
//! The crate has three layers:
//!
//! * [`model`] / [`qubo`] — the textbook Ising Hamiltonian (Eqs. 1–3 of the paper) and
//!   the QUBO encoding of a TSP, used by the software baselines and for validating that
//!   the macro's MAC-based update indeed descends the energy landscape.
//! * [`schedule`] — annealing schedules. The paper's schedule ramps the SOT write current
//!   linearly from 420 µA down to 353 µA in 50 nA steps, which — through the device's
//!   sigmoidal `P_sw(I)` — yields the non-linear stochasticity decay the paper argues for.
//! * [`macro_solver`] — [`MacroTspSolver`], the algorithm of Section III driving a
//!   [`taxi_xbar::IsingMacro`] over a full annealing schedule, with optional fixed
//!   endpoints so the hierarchical layer can solve path sub-problems whose first and last
//!   cities are pinned (Section IV-2).
//! * [`sa`] — a plain software simulated-annealing Ising solver used as an algorithmic
//!   baseline (it is also the sub-solver model for the HVC-style baseline).
//!
//! # Example
//!
//! ```
//! use taxi_dist::DistanceMatrix;
//! use taxi_ising::{CurrentSchedule, MacroSolverConfig, MacroTspSolver};
//!
//! let distances = DistanceMatrix::from_fn(5, |i, j| (i as f64 - j as f64).abs());
//! let config = MacroSolverConfig::default().with_schedule(CurrentSchedule::fast());
//! let solver = MacroTspSolver::new(config);
//! let solution = solver.solve_cycle(&distances, 99)?;
//! assert_eq!(solution.order.len(), 5);
//! # Ok::<(), taxi_ising::IsingError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod macro_solver;
pub mod model;
pub mod qubo;
pub mod sa;
pub mod schedule;
pub mod trace;

pub use error::IsingError;
pub use macro_solver::{
    MacroScratch, MacroSolverConfig, MacroTspSolver, SubTourSolution, SubTourStats,
};
pub use model::{IsingModel, Spin};
pub use qubo::{Qubo, TspQuboEncoder};
pub use sa::{SaConfig, SimulatedAnnealingIsingSolver};
pub use schedule::{AnnealingSchedule, CurrentSchedule, GeometricTemperatureSchedule};
pub use trace::{AnnealingTrace, TracePoint};
