//! Error type for Ising-layer operations.

use std::error::Error;
use std::fmt;

use taxi_xbar::XbarError;

/// Errors returned by the Ising formulation and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum IsingError {
    /// The problem definition was inconsistent (non-square matrix, size mismatch, ...).
    InvalidProblem {
        /// Explanation of the inconsistency.
        reason: String,
    },
    /// The fixed endpoints requested for a path sub-problem are invalid.
    InvalidEndpoints {
        /// Explanation of the inconsistency.
        reason: String,
    },
    /// An index was out of range.
    IndexOutOfRange {
        /// Kind of index ("spin", "city", ...).
        kind: &'static str,
        /// The offending index.
        index: usize,
        /// Valid exclusive upper bound.
        len: usize,
    },
    /// A hardware-level (crossbar) error occurred.
    Hardware(XbarError),
}

impl fmt::Display for IsingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsingError::InvalidProblem { reason } => write!(f, "invalid problem: {reason}"),
            IsingError::InvalidEndpoints { reason } => {
                write!(f, "invalid fixed endpoints: {reason}")
            }
            IsingError::IndexOutOfRange { kind, index, len } => {
                write!(f, "{kind} index {index} out of range (0..{len})")
            }
            IsingError::Hardware(err) => write!(f, "hardware error: {err}"),
        }
    }
}

impl Error for IsingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IsingError::Hardware(err) => Some(err),
            _ => None,
        }
    }
}

impl From<XbarError> for IsingError {
    fn from(err: XbarError) -> Self {
        IsingError::Hardware(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = IsingError::InvalidProblem {
            reason: "matrix is not square".to_string(),
        };
        assert!(err.to_string().contains("square"));
    }

    #[test]
    fn hardware_errors_chain() {
        let err: IsingError = XbarError::UnsupportedBitPrecision { bits: 12 }.into();
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IsingError>();
    }
}
