//! The Ising Hamiltonian (Eqs. 1–3 of the paper).

use crate::IsingError;

/// A binary spin value (+1 / −1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Spin {
    /// Spin up (+1).
    Up,
    /// Spin down (−1).
    Down,
}

impl Spin {
    /// The spin as a signed value (+1.0 or −1.0).
    pub fn value(self) -> f64 {
        match self {
            Spin::Up => 1.0,
            Spin::Down => -1.0,
        }
    }

    /// The opposite spin.
    pub fn flipped(self) -> Self {
        match self {
            Spin::Up => Spin::Down,
            Spin::Down => Spin::Up,
        }
    }

    /// Builds a spin from a sign (`>= 0` is up).
    pub fn from_sign(value: f64) -> Self {
        if value >= 0.0 {
            Spin::Up
        } else {
            Spin::Down
        }
    }
}

/// A fully-connected Ising model with couplings `J`, external fields `h`, and a spin
/// configuration.
///
/// The total energy is `H = −Σ_{i<j} J_ij σ_i σ_j − Σ_i h_i σ_i` (Eq. 1) and the local
/// field on spin `i` is `H_i = Σ_j J_ij σ_j + h_i` (Eq. 2). Flipping spin `i` so that it
/// aligns with the sign of its local field never increases the total energy (Eq. 3),
/// which is the greedy-descent property the paper's MAC update exploits; the stochastic
/// mask provides the hill-climbing violations.
///
/// # Example
///
/// ```
/// use taxi_ising::{IsingModel, Spin};
///
/// // Two ferromagnetically coupled spins prefer to align.
/// let mut model = IsingModel::new(2)?;
/// model.set_coupling(0, 1, 1.0)?;
/// model.set_spin(0, Spin::Up);
/// model.set_spin(1, Spin::Down);
/// let frustrated = model.total_energy();
/// model.set_spin(1, Spin::Up);
/// assert!(model.total_energy() < frustrated);
/// # Ok::<(), taxi_ising::IsingError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IsingModel {
    n: usize,
    /// Symmetric coupling matrix, row-major, with a zero diagonal.
    couplings: Vec<f64>,
    fields: Vec<f64>,
    spins: Vec<Spin>,
}

impl IsingModel {
    /// Creates a model of `n` spins with zero couplings, zero fields, and all spins up.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::InvalidProblem`] if `n` is zero.
    pub fn new(n: usize) -> Result<Self, IsingError> {
        if n == 0 {
            return Err(IsingError::InvalidProblem {
                reason: "an Ising model needs at least one spin".to_string(),
            });
        }
        Ok(Self {
            n,
            couplings: vec![0.0; n * n],
            fields: vec![0.0; n],
            spins: vec![Spin::Up; n],
        })
    }

    /// Resets the model in place to `n` spins with zero couplings, zero fields, and all
    /// spins up, reusing the coupling/field/spin buffers (no allocation once the buffers
    /// have grown to the largest problem seen).
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::InvalidProblem`] if `n` is zero.
    pub fn reset(&mut self, n: usize) -> Result<(), IsingError> {
        if n == 0 {
            return Err(IsingError::InvalidProblem {
                reason: "an Ising model needs at least one spin".to_string(),
            });
        }
        self.n = n;
        self.couplings.clear();
        self.couplings.resize(n * n, 0.0);
        self.fields.clear();
        self.fields.resize(n, 0.0);
        self.spins.clear();
        self.spins.resize(n, Spin::Up);
        Ok(())
    }

    /// Number of spins.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the model has no spins (never true for constructed models).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sets the symmetric coupling `J_ij = J_ji`.
    ///
    /// # Errors
    ///
    /// Returns an error if either index is out of range or `i == j`.
    pub fn set_coupling(&mut self, i: usize, j: usize, value: f64) -> Result<(), IsingError> {
        self.check(i)?;
        self.check(j)?;
        if i == j {
            return Err(IsingError::InvalidProblem {
                reason: "self-couplings are not allowed".to_string(),
            });
        }
        self.couplings[i * self.n + j] = value;
        self.couplings[j * self.n + i] = value;
        Ok(())
    }

    /// The coupling `J_ij`.
    ///
    /// # Errors
    ///
    /// Returns an error if either index is out of range.
    pub fn coupling(&self, i: usize, j: usize) -> Result<f64, IsingError> {
        self.check(i)?;
        self.check(j)?;
        Ok(self.couplings[i * self.n + j])
    }

    /// Sets the external field `h_i`.
    ///
    /// # Errors
    ///
    /// Returns an error if `i` is out of range.
    pub fn set_field(&mut self, i: usize, value: f64) -> Result<(), IsingError> {
        self.check(i)?;
        self.fields[i] = value;
        Ok(())
    }

    /// The external field `h_i`.
    ///
    /// # Errors
    ///
    /// Returns an error if `i` is out of range.
    pub fn field(&self, i: usize) -> Result<f64, IsingError> {
        self.check(i)?;
        Ok(self.fields[i])
    }

    /// Sets spin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_spin(&mut self, i: usize, spin: Spin) {
        assert!(i < self.n, "spin index out of range");
        self.spins[i] = spin;
    }

    /// Spin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn spin(&self, i: usize) -> Spin {
        assert!(i < self.n, "spin index out of range");
        self.spins[i]
    }

    /// The full spin configuration.
    pub fn spins(&self) -> &[Spin] {
        &self.spins
    }

    /// Replaces the full spin configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the length differs from the model size.
    pub fn set_spins(&mut self, spins: &[Spin]) -> Result<(), IsingError> {
        if spins.len() != self.n {
            return Err(IsingError::InvalidProblem {
                reason: format!(
                    "spin configuration has length {} but the model has {} spins",
                    spins.len(),
                    self.n
                ),
            });
        }
        self.spins.copy_from_slice(spins);
        Ok(())
    }

    /// Local field `H_i = Σ_j J_ij σ_j + h_i` (Eq. 2).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn local_field(&self, i: usize) -> f64 {
        assert!(i < self.n, "spin index out of range");
        let mut sum = self.fields[i];
        for j in 0..self.n {
            if j != i {
                sum += self.couplings[i * self.n + j] * self.spins[j].value();
            }
        }
        sum
    }

    /// Total energy `H = −Σ_{i<j} J_ij σ_i σ_j − Σ_i h_i σ_i` (Eq. 1).
    pub fn total_energy(&self) -> f64 {
        let mut coupling_term = 0.0;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                coupling_term +=
                    self.couplings[i * self.n + j] * self.spins[i].value() * self.spins[j].value();
            }
        }
        let field_term: f64 = self
            .fields
            .iter()
            .zip(&self.spins)
            .map(|(h, s)| h * s.value())
            .sum();
        -coupling_term - field_term
    }

    /// Energy change if spin `i` were flipped (positive means the flip raises the energy).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn flip_delta(&self, i: usize) -> f64 {
        // ΔH = 2 σ_i H_i  (flipping σ_i → −σ_i).
        2.0 * self.spins[i].value() * self.local_field(i)
    }

    /// Greedy update of spin `i`: aligns it with the sign of its local field (Eq. 3).
    /// Returns `true` if the spin changed.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn greedy_update(&mut self, i: usize) -> bool {
        let target = Spin::from_sign(self.local_field(i));
        if target != self.spins[i] {
            self.spins[i] = target;
            true
        } else {
            false
        }
    }

    fn check(&self, i: usize) -> Result<(), IsingError> {
        if i < self.n {
            Ok(())
        } else {
            Err(IsingError::IndexOutOfRange {
                kind: "spin",
                index: i,
                len: self.n,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frustrated_triangle() -> IsingModel {
        // Anti-ferromagnetic triangle: no configuration satisfies all couplings.
        let mut m = IsingModel::new(3).unwrap();
        m.set_coupling(0, 1, -1.0).unwrap();
        m.set_coupling(1, 2, -1.0).unwrap();
        m.set_coupling(0, 2, -1.0).unwrap();
        m
    }

    #[test]
    fn zero_size_model_is_rejected() {
        assert!(IsingModel::new(0).is_err());
    }

    #[test]
    fn couplings_are_symmetric() {
        let mut m = IsingModel::new(3).unwrap();
        m.set_coupling(0, 2, 0.5).unwrap();
        assert_eq!(m.coupling(2, 0).unwrap(), 0.5);
    }

    #[test]
    fn self_coupling_is_rejected() {
        let mut m = IsingModel::new(3).unwrap();
        assert!(m.set_coupling(1, 1, 1.0).is_err());
    }

    #[test]
    fn aligned_ferromagnet_has_lower_energy() {
        let mut m = IsingModel::new(2).unwrap();
        m.set_coupling(0, 1, 1.0).unwrap();
        m.set_spin(0, Spin::Up);
        m.set_spin(1, Spin::Up);
        let aligned = m.total_energy();
        m.set_spin(1, Spin::Down);
        assert!(m.total_energy() > aligned);
    }

    #[test]
    fn local_field_matches_definition() {
        let mut m = IsingModel::new(3).unwrap();
        m.set_coupling(0, 1, 2.0).unwrap();
        m.set_coupling(0, 2, -1.0).unwrap();
        m.set_field(0, 0.5).unwrap();
        m.set_spin(1, Spin::Up);
        m.set_spin(2, Spin::Down);
        // H_0 = 2·(+1) + (−1)·(−1) + 0.5 = 3.5
        assert!((m.local_field(0) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn flip_delta_matches_energy_difference() {
        let mut m = frustrated_triangle();
        m.set_field(1, 0.3).unwrap();
        m.set_spin(0, Spin::Up);
        m.set_spin(1, Spin::Down);
        m.set_spin(2, Spin::Up);
        for i in 0..3 {
            let before = m.total_energy();
            let predicted = m.flip_delta(i);
            let mut flipped = m.clone();
            flipped.set_spin(i, m.spin(i).flipped());
            let actual = flipped.total_energy() - before;
            assert!(
                (predicted - actual).abs() < 1e-12,
                "spin {i}: predicted {predicted}, actual {actual}"
            );
        }
    }

    #[test]
    fn greedy_update_never_increases_energy() {
        let mut m = frustrated_triangle();
        m.set_spin(0, Spin::Up);
        m.set_spin(1, Spin::Up);
        m.set_spin(2, Spin::Up);
        for _ in 0..10 {
            for i in 0..3 {
                let before = m.total_energy();
                m.greedy_update(i);
                assert!(m.total_energy() <= before + 1e-12);
            }
        }
    }

    #[test]
    fn set_spins_validates_length() {
        let mut m = IsingModel::new(3).unwrap();
        assert!(m.set_spins(&[Spin::Up, Spin::Down]).is_err());
        assert!(m.set_spins(&[Spin::Up, Spin::Down, Spin::Up]).is_ok());
        assert_eq!(m.spin(1), Spin::Down);
    }

    #[test]
    fn out_of_range_indices_error() {
        let m = IsingModel::new(2).unwrap();
        assert!(m.coupling(0, 5).is_err());
        assert!(m.field(9).is_err());
    }

    #[test]
    fn spin_helpers() {
        assert_eq!(Spin::Up.value(), 1.0);
        assert_eq!(Spin::Down.value(), -1.0);
        assert_eq!(Spin::Up.flipped(), Spin::Down);
        assert_eq!(Spin::from_sign(-0.2), Spin::Down);
        assert_eq!(Spin::from_sign(0.0), Spin::Up);
    }
}
