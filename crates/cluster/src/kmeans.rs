//! Lloyd's k-means clustering.
//!
//! Earlier clustered Ising solvers (HVC, IMA, CIMA — the paper's refs \[4\]–\[7\]) use
//! k-means to decompose the TSP. TAXI replaces it with agglomerative Ward clustering;
//! this module provides k-means so the baseline solvers and the clustering ablation can
//! compare both choices.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use taxi_dist::LANES;

use crate::{ClusterError, Point};

/// Configuration of the k-means pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iterations: usize,
    /// RNG seed for the k-means++ initialisation.
    pub seed: u64,
}

impl KMeansConfig {
    /// Creates a configuration with 50 Lloyd iterations and a fixed seed.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] if `k` is zero.
    pub fn new(k: usize) -> Result<Self, ClusterError> {
        if k == 0 {
            return Err(ClusterError::InvalidConfig {
                name: "k",
                reason: "must be at least 1".to_string(),
            });
        }
        Ok(Self {
            k,
            max_iterations: 50,
            seed: 0x5eed,
        })
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the iteration budget.
    pub fn with_max_iterations(mut self, iterations: usize) -> Self {
        self.max_iterations = iterations.max(1);
        self
    }
}

/// Clusters `points` into `config.k` groups with Lloyd's algorithm (k-means++
/// initialisation). Returns the member indices of each cluster; empty clusters are
/// dropped, so fewer than `k` clusters may be returned for degenerate inputs.
///
/// # Errors
///
/// Returns [`ClusterError::EmptyInput`] for an empty point set or
/// [`ClusterError::TooManyClusters`] when `k` exceeds the number of points.
///
/// # Example
///
/// ```
/// use taxi_cluster::{kmeans_clusters, KMeansConfig, Point};
///
/// let mut points = Vec::new();
/// for i in 0..10 {
///     points.push(Point::new(i as f64 * 0.01, 0.0));
///     points.push(Point::new(50.0 + i as f64 * 0.01, 0.0));
/// }
/// let clusters = kmeans_clusters(&points, &KMeansConfig::new(2)?)?;
/// assert_eq!(clusters.len(), 2);
/// # Ok::<(), taxi_cluster::ClusterError>(())
/// ```
pub fn kmeans_clusters(
    points: &[Point],
    config: &KMeansConfig,
) -> Result<Vec<Vec<usize>>, ClusterError> {
    if points.is_empty() {
        return Err(ClusterError::EmptyInput);
    }
    if config.k > points.len() {
        return Err(ClusterError::TooManyClusters {
            requested: config.k,
            points: points.len(),
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut centroids = kmeans_plus_plus_init(points, config.k, &mut rng);
    let mut assignment = vec![0usize; points.len()];
    for _ in 0..config.max_iterations {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let nearest = nearest_centroid(p, &centroids);
            if assignment[i] != nearest {
                assignment[i] = nearest;
                changed = true;
            }
        }
        // Recompute centroids.
        let mut sums = vec![(0.0f64, 0.0f64, 0usize); config.k];
        for (i, p) in points.iter().enumerate() {
            let s = &mut sums[assignment[i]];
            s.0 += p.x;
            s.1 += p.y;
            s.2 += 1;
        }
        for (c, s) in centroids.iter_mut().zip(&sums) {
            if s.2 > 0 {
                *c = Point::new(s.0 / s.2 as f64, s.1 / s.2 as f64);
            }
        }
        if !changed {
            break;
        }
    }
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); config.k];
    for (i, &a) in assignment.iter().enumerate() {
        clusters[a].push(i);
    }
    clusters.retain(|c| !c.is_empty());
    Ok(clusters)
}

/// Nearest centroid of `p` under squared Euclidean distance; the first minimum wins
/// ties, and NaN distances (from poisoned geometry) are never selected unless every
/// distance is NaN. The scan is [`LANES`]-chunked: distances land in fixed-width array
/// temporaries the autovectorizer can lower to SIMD, with a scalar tail for the
/// remainder — the selected index is identical to a sequential first-wins scan because
/// every comparison is exact.
fn nearest_centroid(p: &Point, centroids: &[Point]) -> usize {
    debug_assert!(!centroids.is_empty());
    let mut best = f64::INFINITY;
    let mut best_idx = 0usize;
    let chunks = centroids.chunks_exact(LANES);
    let tail_start = centroids.len() - chunks.remainder().len();
    for (c, chunk) in chunks.enumerate() {
        let mut d2 = [0.0f64; LANES];
        for l in 0..LANES {
            d2[l] = p.squared_distance(&chunk[l]);
        }
        for (l, &d) in d2.iter().enumerate() {
            if d.total_cmp(&best) == std::cmp::Ordering::Less {
                best = d;
                best_idx = c * LANES + l;
            }
        }
    }
    for (i, centroid) in centroids.iter().enumerate().skip(tail_start) {
        let d = p.squared_distance(centroid);
        if d.total_cmp(&best) == std::cmp::Ordering::Less {
            best = d;
            best_idx = i;
        }
    }
    best_idx
}

fn kmeans_plus_plus_init<R: Rng + ?Sized>(points: &[Point], k: usize, rng: &mut R) -> Vec<Point> {
    let mut centroids = Vec::with_capacity(k);
    let first = *points.choose(rng).expect("non-empty input");
    centroids.push(first);
    // Each point's min squared distance to the chosen centroids, maintained
    // incrementally: adding a centroid can only lower the minimum, so one `f64::min`
    // per point per round replaces the full rescan of all centroids (O(n·k) total
    // instead of O(n·k²)). Seeding with `min(∞, d²)` makes the cache equal, by
    // induction, to the old `fold(∞, min)` rescan for every input, NaN included.
    let mut weights: Vec<f64> = points
        .iter()
        .map(|p| f64::min(f64::INFINITY, p.squared_distance(&first)))
        .collect();
    while centroids.len() < k {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            // All remaining points coincide with existing centroids.
            centroids.push(first);
            continue;
        }
        let mut target = rng.gen::<f64>() * total;
        let mut chosen = points.len() - 1;
        for (i, w) in weights.iter().enumerate() {
            if target <= *w {
                chosen = i;
                break;
            }
            target -= w;
        }
        let next = points[chosen];
        centroids.push(next);
        for (w, p) in weights.iter_mut().zip(points) {
            *w = f64::min(*w, p.squared_distance(&next));
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_rejected() {
        let cfg = KMeansConfig::new(2).unwrap();
        assert_eq!(kmeans_clusters(&[], &cfg), Err(ClusterError::EmptyInput));
    }

    #[test]
    fn zero_k_is_rejected() {
        assert!(KMeansConfig::new(0).is_err());
    }

    #[test]
    fn too_many_clusters_is_rejected() {
        let pts = vec![Point::new(0.0, 0.0)];
        let cfg = KMeansConfig::new(3).unwrap();
        assert!(matches!(
            kmeans_clusters(&pts, &cfg),
            Err(ClusterError::TooManyClusters { .. })
        ));
    }

    #[test]
    fn separated_blobs_are_recovered() {
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(Point::new(i as f64 * 0.1, 0.0));
            pts.push(Point::new(1000.0 + i as f64 * 0.1, 0.0));
        }
        let cfg = KMeansConfig::new(2).unwrap();
        let clusters = kmeans_clusters(&pts, &cfg).unwrap();
        assert_eq!(clusters.len(), 2);
        for cluster in &clusters {
            assert_eq!(cluster.len(), 20);
            let parity = cluster[0] % 2;
            assert!(cluster.iter().all(|&i| i % 2 == parity));
        }
    }

    #[test]
    fn clusters_partition_the_input() {
        let pts: Vec<Point> = (0..37)
            .map(|i| Point::new((i % 6) as f64, (i / 6) as f64))
            .collect();
        let cfg = KMeansConfig::new(4).unwrap();
        let clusters = kmeans_clusters(&pts, &cfg).unwrap();
        let total: usize = clusters.iter().map(Vec::len).sum();
        assert_eq!(total, pts.len());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts: Vec<Point> = (0..50)
            .map(|i| Point::new((i * 13 % 29) as f64, (i * 7 % 31) as f64))
            .collect();
        let cfg = KMeansConfig::new(5).unwrap().with_seed(42);
        let a = kmeans_clusters(&pts, &cfg).unwrap();
        let b = kmeans_clusters(&pts, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_identical_points_do_not_panic() {
        let pts = vec![Point::new(1.0, 1.0); 8];
        let cfg = KMeansConfig::new(3).unwrap();
        let clusters = kmeans_clusters(&pts, &cfg).unwrap();
        let total: usize = clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 8);
    }
}
