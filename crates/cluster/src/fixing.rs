//! Inter-cluster endpoint fixing (Section IV-2 of the paper).
//!
//! Once the visiting order of the clusters at a level is known, TAXI fixes the first and
//! last entities of every cluster *before* solving its interior: for each pair of
//! neighbouring clusters in the visiting order, the closest pair of member entities pins
//! the exit of the first cluster and the entry of the second. This guarantees that
//! solving the sub-problems independently (and in parallel) can never lengthen the
//! inter-cluster portion of the route.

use crate::hierarchy::LevelView;
use crate::{ClusterError, Point};

/// Indexed access to the member lists of a level's clusters.
///
/// The fixer is generic over this trait so callers never re-materialise member lists:
/// plain slices of slice-likes (`&[Vec<usize>]`, `&[&[usize]]`) and the hierarchy's
/// zero-copy [`LevelView`] all plug in directly.
pub trait MemberLists {
    /// Number of clusters.
    fn num_clusters(&self) -> usize;

    /// Number of members of cluster `c`.
    fn member_count(&self, c: usize) -> usize;

    /// Member `i` of cluster `c`, as an entity index of the level below.
    fn member(&self, c: usize, i: usize) -> usize;
}

impl<C: AsRef<[usize]>> MemberLists for [C] {
    fn num_clusters(&self) -> usize {
        self.len()
    }

    fn member_count(&self, c: usize) -> usize {
        self[c].as_ref().len()
    }

    fn member(&self, c: usize, i: usize) -> usize {
        self[c].as_ref()[i]
    }
}

impl MemberLists for LevelView<'_> {
    fn num_clusters(&self) -> usize {
        self.len()
    }

    fn member_count(&self, c: usize) -> usize {
        self.members(c).len()
    }

    fn member(&self, c: usize, i: usize) -> usize {
        self.members(c)[i] as usize
    }
}

/// Fixed entry/exit entities of one cluster, expressed as indices into the level's entity
/// set (level 0: city indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixedEndpoints {
    /// Entity at which the route enters the cluster.
    pub entry: usize,
    /// Entity at which the route leaves the cluster.
    pub exit: usize,
}

impl FixedEndpoints {
    /// Returns `true` if the cluster is entered and left through the same entity (only
    /// legal for single-entity clusters).
    pub fn is_degenerate(&self) -> bool {
        self.entry == self.exit
    }
}

/// Computes fixed endpoints for every cluster of a level, given the clusters' member
/// entities and the visiting order of the clusters.
///
/// # Example
///
/// ```
/// use taxi_cluster::{EndpointFixer, Point};
///
/// // Two clusters side by side; the closest pair across the gap pins the boundary
/// // cities, and each multi-member cluster gets distinct entry and exit cities.
/// let entities = vec![
///     Point::new(0.0, 0.0), Point::new(1.0, 0.0),   // cluster 0
///     Point::new(3.0, 0.0), Point::new(4.0, 0.0),   // cluster 1
/// ];
/// let clusters = vec![vec![0, 1], vec![2, 3]];
/// let fixer = EndpointFixer::new(&entities);
/// let endpoints = fixer.fix(&clusters, &[0, 1])?;
/// assert_eq!(endpoints[0].entry, 1);
/// assert_eq!(endpoints[1].entry, 2);
/// assert!(!endpoints[0].is_degenerate());
/// assert!(!endpoints[1].is_degenerate());
/// # Ok::<(), taxi_cluster::ClusterError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EndpointFixer<'a> {
    entities: &'a [Point],
}

impl<'a> EndpointFixer<'a> {
    /// Creates a fixer over the positions of a level's entities.
    pub fn new(entities: &'a [Point]) -> Self {
        Self { entities }
    }

    /// Fixes the endpoints of every cluster.
    ///
    /// `clusters[c]` lists the member entity indices of cluster `c` (any slice-like
    /// container — `Vec<usize>` or `&[usize]` — so callers never have to re-materialise
    /// member lists); `visit_order` is the cyclic order in which the clusters are visited
    /// (each cluster index exactly once). The result is indexed by cluster index (not by
    /// position in the visiting order).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidClusterOrder`] if the visiting order is not a
    /// permutation of the cluster indices, a cluster is empty, or a member index is out
    /// of range.
    pub fn fix<C: AsRef<[usize]>>(
        &self,
        clusters: &[C],
        visit_order: &[usize],
    ) -> Result<Vec<FixedEndpoints>, ClusterError> {
        let mut out = Vec::new();
        self.fix_into(clusters, visit_order, &mut out)?;
        Ok(out)
    }

    /// Like [`fix`](Self::fix), but writes the endpoints into a caller-provided buffer
    /// (cleared first) so repeated level fixes reuse one allocation, and accepts any
    /// [`MemberLists`] — including the hierarchy's zero-copy
    /// [`LevelView`].
    ///
    /// # Errors
    ///
    /// Same error conditions as [`fix`](Self::fix).
    pub fn fix_into<M: MemberLists + ?Sized>(
        &self,
        clusters: &M,
        visit_order: &[usize],
        out: &mut Vec<FixedEndpoints>,
    ) -> Result<(), ClusterError> {
        out.clear();
        let k = clusters.num_clusters();
        if visit_order.len() != k {
            return Err(ClusterError::InvalidClusterOrder {
                reason: format!(
                    "visit order has {} entries but there are {} clusters",
                    visit_order.len(),
                    k
                ),
            });
        }
        let mut seen = vec![false; k];
        for &c in visit_order {
            if c >= k || seen[c] {
                return Err(ClusterError::InvalidClusterOrder {
                    reason: format!("cluster index {c} missing or duplicated in the visit order"),
                });
            }
            seen[c] = true;
        }
        for c in 0..k {
            if clusters.member_count(c) == 0 {
                return Err(ClusterError::InvalidClusterOrder {
                    reason: format!("cluster {c} has no members"),
                });
            }
            for i in 0..clusters.member_count(c) {
                let m = clusters.member(c, i);
                if m >= self.entities.len() {
                    return Err(ClusterError::InvalidClusterOrder {
                        reason: format!("cluster {c} references entity {m} which does not exist"),
                    });
                }
            }
        }
        if k == 1 {
            // A single cluster: the route both starts and ends inside it; pick the two
            // mutually farthest members as nominal endpoints (or the same entity when the
            // cluster is a singleton).
            let c = visit_order[0];
            let (entry, exit) = if clusters.member_count(c) == 1 {
                (clusters.member(c, 0), clusters.member(c, 0))
            } else {
                self.farthest_pair(clusters, c)
            };
            out.push(FixedEndpoints { entry, exit });
            return Ok(());
        }

        // For every adjacent pair in the cyclic visiting order, find the closest pair of
        // entities across the boundary. `out` doubles as the scratch for the chosen
        // exits/entries (usize::MAX marks "not yet fixed"; `out` was cleared above, so
        // the resize fills every slot with the sentinel).
        out.resize(
            k,
            FixedEndpoints {
                entry: usize::MAX,
                exit: usize::MAX,
            },
        );
        for pos in 0..k {
            let current = visit_order[pos];
            let next = visit_order[(pos + 1) % k];
            let (a, b) = self.closest_pair(clusters, current, next);
            out[current].exit = a;
            out[next].entry = b;
        }

        // Degenerate repair: if a multi-member cluster would enter and leave through the
        // same entity, move the exit to the second-best choice towards the next cluster.
        for c in 0..k {
            let entry = out[c].entry;
            let mut exit = out[c].exit;
            if entry == exit && clusters.member_count(c) > 1 {
                let pos = visit_order
                    .iter()
                    .position(|&x| x == c)
                    .expect("cluster is in the visit order");
                let next = visit_order[(pos + 1) % k];
                exit = self.closest_excluding(clusters, c, next, entry);
                if entry == exit {
                    // Fall back to any other member.
                    exit = (0..clusters.member_count(c))
                        .map(|i| clusters.member(c, i))
                        .find(|&m| m != entry)
                        .expect("cluster has more than one member");
                }
            }
            if out[c].entry == usize::MAX {
                out[c].entry = clusters.member(c, 0);
            }
            out[c].exit = if exit == usize::MAX {
                clusters.member(c, clusters.member_count(c) - 1)
            } else {
                exit
            };
        }
        Ok(())
    }

    /// Total length of the inter-cluster connections implied by `endpoints` and the
    /// cyclic `visit_order`: the sum of distances from each cluster's exit to the next
    /// cluster's entry.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn inter_cluster_length(&self, endpoints: &[FixedEndpoints], visit_order: &[usize]) -> f64 {
        let k = visit_order.len();
        if k < 2 {
            return 0.0;
        }
        (0..k)
            .map(|pos| {
                let current = visit_order[pos];
                let next = visit_order[(pos + 1) % k];
                self.entities[endpoints[current].exit]
                    .distance(&self.entities[endpoints[next].entry])
            })
            .sum()
    }

    fn closest_pair<M: MemberLists + ?Sized>(
        &self,
        clusters: &M,
        a: usize,
        b: usize,
    ) -> (usize, usize) {
        let mut best = (clusters.member(a, 0), clusters.member(b, 0));
        let mut best_d = f64::INFINITY;
        for ai in 0..clusters.member_count(a) {
            let i = clusters.member(a, ai);
            for bi in 0..clusters.member_count(b) {
                let j = clusters.member(b, bi);
                let d = self.entities[i].squared_distance(&self.entities[j]);
                if d < best_d {
                    best_d = d;
                    best = (i, j);
                }
            }
        }
        best
    }

    fn closest_excluding<M: MemberLists + ?Sized>(
        &self,
        clusters: &M,
        a: usize,
        b: usize,
        excluded: usize,
    ) -> usize {
        let mut best = excluded;
        let mut best_d = f64::INFINITY;
        for ai in 0..clusters.member_count(a) {
            let i = clusters.member(a, ai);
            if i == excluded {
                continue;
            }
            for bi in 0..clusters.member_count(b) {
                let j = clusters.member(b, bi);
                let d = self.entities[i].squared_distance(&self.entities[j]);
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
        }
        best
    }

    fn farthest_pair<M: MemberLists + ?Sized>(&self, clusters: &M, c: usize) -> (usize, usize) {
        let first = clusters.member(c, 0);
        let mut best = (first, first);
        let mut best_d = -1.0;
        for ai in 0..clusters.member_count(c) {
            let i = clusters.member(c, ai);
            for bi in 0..clusters.member_count(c) {
                let j = clusters.member(c, bi);
                if i == j {
                    continue;
                }
                let d = self.entities[i].squared_distance(&self.entities[j]);
                if d > best_d {
                    best_d = d;
                    best = (i, j);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_cluster_layout() -> (Vec<Point>, Vec<Vec<usize>>) {
        // Three clusters of three points each arranged on a triangle; each cluster has a
        // distinct member closest to each of the other clusters, so no endpoint conflicts
        // arise for the natural visiting order.
        let entities = vec![
            Point::new(1.0, 0.2),  // 0: cluster 0, towards cluster 1
            Point::new(0.4, 1.0),  // 1: cluster 0, towards cluster 2
            Point::new(0.0, 0.0),  // 2
            Point::new(9.0, 0.2),  // 3: cluster 1, towards cluster 0
            Point::new(9.6, 1.0),  // 4: cluster 1, towards cluster 2
            Point::new(10.0, 0.0), // 5
            Point::new(4.4, 7.0),  // 6: cluster 2, towards cluster 0
            Point::new(5.6, 7.0),  // 7: cluster 2, towards cluster 1
            Point::new(5.0, 8.0),  // 8
        ];
        let clusters = vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8]];
        (entities, clusters)
    }

    #[test]
    fn closest_pairs_define_endpoints() {
        let (entities, clusters) = three_cluster_layout();
        let fixer = EndpointFixer::new(&entities);
        let endpoints = fixer.fix(&clusters, &[0, 1, 2]).unwrap();
        assert_eq!(endpoints[0], FixedEndpoints { entry: 1, exit: 0 });
        assert_eq!(endpoints[1], FixedEndpoints { entry: 3, exit: 4 });
        assert_eq!(endpoints[2], FixedEndpoints { entry: 7, exit: 6 });
    }

    #[test]
    fn every_cluster_gets_entry_and_exit() {
        let (entities, clusters) = three_cluster_layout();
        let fixer = EndpointFixer::new(&entities);
        let endpoints = fixer.fix(&clusters, &[2, 0, 1]).unwrap();
        assert_eq!(endpoints.len(), 3);
        for (c, e) in endpoints.iter().enumerate() {
            assert!(clusters[c].contains(&e.entry));
            assert!(clusters[c].contains(&e.exit));
        }
    }

    #[test]
    fn multi_member_clusters_get_distinct_endpoints() {
        let (entities, clusters) = three_cluster_layout();
        let fixer = EndpointFixer::new(&entities);
        for order in [[0usize, 1, 2], [1, 2, 0], [2, 1, 0]] {
            let endpoints = fixer.fix(&clusters, &order).unwrap();
            for (c, e) in endpoints.iter().enumerate() {
                if clusters[c].len() > 1 {
                    assert_ne!(e.entry, e.exit, "cluster {c} must not be degenerate");
                }
            }
        }
    }

    #[test]
    fn singleton_cluster_is_degenerate() {
        let entities = vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(9.0, 0.0),
        ];
        let clusters = vec![vec![0], vec![1], vec![2]];
        let fixer = EndpointFixer::new(&entities);
        let endpoints = fixer.fix(&clusters, &[0, 1, 2]).unwrap();
        assert!(endpoints.iter().all(FixedEndpoints::is_degenerate));
    }

    #[test]
    fn single_cluster_level_uses_farthest_pair() {
        let entities = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(9.0, 0.0),
        ];
        let clusters = vec![vec![0, 1, 2]];
        let fixer = EndpointFixer::new(&entities);
        let endpoints = fixer.fix(&clusters, &[0]).unwrap();
        let e = endpoints[0];
        assert!((e.entry == 0 && e.exit == 2) || (e.entry == 2 && e.exit == 0));
    }

    #[test]
    fn invalid_visit_orders_are_rejected() {
        let (entities, clusters) = three_cluster_layout();
        let fixer = EndpointFixer::new(&entities);
        assert!(fixer.fix(&clusters, &[0, 1]).is_err());
        assert!(fixer.fix(&clusters, &[0, 1, 1]).is_err());
        assert!(fixer.fix(&clusters, &[0, 1, 9]).is_err());
    }

    #[test]
    fn empty_cluster_is_rejected() {
        let entities = vec![Point::new(0.0, 0.0)];
        let clusters = vec![vec![0], vec![]];
        let fixer = EndpointFixer::new(&entities);
        assert!(fixer.fix(&clusters, &[0, 1]).is_err());
    }

    #[test]
    fn out_of_range_member_is_rejected() {
        let entities = vec![Point::new(0.0, 0.0)];
        let clusters = vec![vec![0], vec![7]];
        let fixer = EndpointFixer::new(&entities);
        assert!(fixer.fix(&clusters, &[0, 1]).is_err());
    }

    #[test]
    fn inter_cluster_length_matches_manual_sum() {
        let (entities, clusters) = three_cluster_layout();
        let fixer = EndpointFixer::new(&entities);
        let order = [0usize, 1, 2];
        let endpoints = fixer.fix(&clusters, &order).unwrap();
        let len = fixer.inter_cluster_length(&endpoints, &order);
        let manual = entities[endpoints[0].exit].distance(&entities[endpoints[1].entry])
            + entities[endpoints[1].exit].distance(&entities[endpoints[2].entry])
            + entities[endpoints[2].exit].distance(&entities[endpoints[0].entry]);
        assert!((len - manual).abs() < 1e-12);
    }

    #[test]
    fn fixing_minimizes_boundary_crossing() {
        // The chosen exit/entry pair across adjacent clusters must achieve the minimum
        // possible crossing distance among all member pairs.
        let (entities, clusters) = three_cluster_layout();
        let fixer = EndpointFixer::new(&entities);
        let endpoints = fixer.fix(&clusters, &[0, 1, 2]).unwrap();
        let chosen = entities[endpoints[0].exit].distance(&entities[endpoints[1].entry]);
        let mut brute = f64::INFINITY;
        for &i in &clusters[0] {
            for &j in &clusters[1] {
                brute = brute.min(entities[i].distance(&entities[j]));
            }
        }
        assert!((chosen - brute).abs() < 1e-12);
    }
}
