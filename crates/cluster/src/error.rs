//! Error type for clustering operations.

use std::error::Error;
use std::fmt;

/// Errors returned by clustering and hierarchy construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The input point set was empty.
    EmptyInput,
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Constraint that was violated.
        reason: String,
    },
    /// The requested number of clusters exceeds the number of points.
    TooManyClusters {
        /// Requested number of clusters.
        requested: usize,
        /// Number of available points.
        points: usize,
    },
    /// A cluster ordering passed to the endpoint fixer was inconsistent.
    InvalidClusterOrder {
        /// Explanation of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::EmptyInput => write!(f, "input point set is empty"),
            ClusterError::InvalidConfig { name, reason } => {
                write!(f, "invalid configuration `{name}`: {reason}")
            }
            ClusterError::TooManyClusters { requested, points } => {
                write!(
                    f,
                    "requested {requested} clusters from only {points} points"
                )
            }
            ClusterError::InvalidClusterOrder { reason } => {
                write!(f, "invalid cluster order: {reason}")
            }
        }
    }
}

impl Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = ClusterError::TooManyClusters {
            requested: 10,
            points: 3,
        };
        assert!(err.to_string().contains("10"));
        assert!(err.to_string().contains("3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClusterError>();
    }
}
