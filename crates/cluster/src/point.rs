//! 2-D point type shared by the clustering and hierarchy modules.

use std::fmt;

/// A city location in the Euclidean plane.
///
/// # Example
///
/// ```
/// use taxi_cluster::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(&b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        self.squared_distance(other).sqrt()
    }

    /// Squared Euclidean distance (cheaper; used by Ward linkage and k-means).
    pub fn squared_distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Centroid of a non-empty set of points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn centroid(points: &[Point]) -> Point {
        assert!(
            !points.is_empty(),
            "centroid of an empty point set is undefined"
        );
        let n = points.len() as f64;
        let (sx, sy) = points
            .iter()
            .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
        Point::new(sx / n, sy / n)
    }

    /// Centroid of the points selected by `indices` from `points`.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or contains an out-of-range index.
    pub fn centroid_of_indices(points: &[Point], indices: &[usize]) -> Point {
        assert!(
            !indices.is_empty(),
            "centroid of an empty member set is undefined"
        );
        let n = indices.len() as f64;
        let (sx, sy) = indices.iter().fold((0.0, 0.0), |(sx, sy), &i| {
            (sx + points[i].x, sy + points[i].y)
        });
        Point::new(sx / n, sy / n)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.squared_distance(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(-3.5, 7.0);
        let b = Point::new(2.0, -1.0);
        assert_eq!(a.distance(&b), b.distance(&a));
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn centroid_averages_coordinates() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 3.0),
        ];
        let c = Point::centroid(&pts);
        assert!((c.x - 1.0).abs() < 1e-12);
        assert!((c.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_indices_uses_subset() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(2.0, 4.0),
        ];
        let c = Point::centroid_of_indices(&pts, &[0, 2]);
        assert!((c.x - 1.0).abs() < 1e-12);
        assert!((c.y - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn centroid_of_empty_set_panics() {
        Point::centroid(&[]);
    }

    #[test]
    fn display_formats_coordinates() {
        assert_eq!(Point::new(1.0, 2.5).to_string(), "(1.000, 2.500)");
    }
}
