//! Hierarchical clustering substrate for the TAXI reproduction (Section IV of the paper).
//!
//! TAXI decomposes a large TSP bottom-up: cities are grouped into clusters no larger than
//! the maximum sub-problem size an Ising macro can solve; the cluster centroids form the
//! next level and are clustered again, until the topmost level itself fits in one macro.
//! The paper uses **agglomerative clustering with Ward linkage** (rather than the k-means
//! of earlier works) for robustness to outliers and non-spherical clusters.
//!
//! This crate provides:
//!
//! * [`Point`] — 2-D city coordinates,
//! * [`agglomerative`] — Ward-linkage agglomerative clustering via the nearest-neighbour
//!   chain algorithm (O(n²) time, O(n) memory), with a divisive pre-partition for very
//!   large levels so that the 85 900-city instance remains tractable,
//! * [`kmeans`] — Lloyd's algorithm, used by the HVC-style baseline and for the
//!   clustering ablation,
//! * [`hierarchy`] — bottom-up hierarchy construction with a hard maximum cluster size,
//! * [`fixing`] — inter-cluster endpoint fixing: for neighbouring clusters in the
//!   visiting order, the closest city pair pins the exit city of one cluster and the
//!   entry city of the next (Section IV-2).
//!
//! # Example
//!
//! ```
//! use taxi_cluster::{Hierarchy, HierarchyConfig, Point};
//!
//! let cities: Vec<Point> = (0..100)
//!     .map(|i| Point::new((i % 10) as f64, (i / 10) as f64))
//!     .collect();
//! let hierarchy = Hierarchy::build(&cities, &HierarchyConfig::new(12)?)?;
//! assert!(hierarchy.num_levels() >= 1);
//! for level in hierarchy.levels() {
//!     for cluster in level.clusters() {
//!         assert!(cluster.members().len() <= 12);
//!     }
//! }
//! # Ok::<(), taxi_cluster::ClusterError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agglomerative;
pub mod error;
pub mod fixing;
pub mod hierarchy;
pub mod kmeans;
pub mod point;
pub mod stats;

pub use agglomerative::{agglomerative_clusters, AgglomerativeConfig};
pub use error::ClusterError;
pub use fixing::{EndpointFixer, FixedEndpoints, MemberLists};
pub use hierarchy::{ClusterView, Hierarchy, HierarchyConfig, LevelView};
pub use kmeans::{kmeans_clusters, KMeansConfig};
pub use point::Point;
pub use stats::ClusteringStats;
