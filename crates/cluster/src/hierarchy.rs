//! Bottom-up hierarchy construction (Section IV-1 of the paper).
//!
//! Cities are clustered into groups no larger than the maximum TSP size one Ising macro
//! can confidently solve; the cluster centroids form the next level, which is clustered
//! again, and so on until a level has no more entities than the maximum size — that top
//! level is solved directly as one sub-problem.
//!
//! # Storage layout
//!
//! The hierarchy is stored as index-based structure-of-arrays data rather than nested
//! per-level/per-cluster `Vec`s: one flat `Vec<u32>` membership table shared by every
//! cluster of every level, per-cluster offset ranges into it, a flat per-cluster
//! centroid table, and per-level cluster ranges. Consumers address it through the
//! borrowing [`LevelView`] / [`ClusterView`] types, so walking the hierarchy during a
//! solve — including reading a whole level's centroids as one contiguous `&[Point]`
//! slice — performs no allocation and no copying.

use crate::agglomerative::split_to_max_size;
use crate::{
    agglomerative_clusters, kmeans_clusters, AgglomerativeConfig, ClusterError, KMeansConfig, Point,
};

/// Clustering algorithm used to build each level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusteringMethod {
    /// Agglomerative clustering with Ward linkage (TAXI's choice).
    #[default]
    AgglomerativeWard,
    /// Lloyd's k-means (the choice of HVC / IMA / CIMA, kept for ablations).
    KMeans,
}

/// Configuration of the hierarchy builder.
///
/// # Example
///
/// ```
/// use taxi_cluster::HierarchyConfig;
///
/// let config = HierarchyConfig::new(12)?;
/// assert_eq!(config.max_cluster_size(), 12);
/// # Ok::<(), taxi_cluster::ClusterError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    max_cluster_size: usize,
    method: ClusteringMethod,
    seed: u64,
}

impl HierarchyConfig {
    /// Creates a configuration with the given maximum cluster (sub-problem) size.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] if `max_cluster_size` is below 4 (an Ising
    /// macro needs at least four cities for the annealing moves to be meaningful).
    pub fn new(max_cluster_size: usize) -> Result<Self, ClusterError> {
        if max_cluster_size < 4 {
            return Err(ClusterError::InvalidConfig {
                name: "max_cluster_size",
                reason: "must be at least 4".to_string(),
            });
        }
        Ok(Self {
            max_cluster_size,
            method: ClusteringMethod::default(),
            seed: 0xC1A5,
        })
    }

    /// Selects the clustering algorithm.
    pub fn with_method(mut self, method: ClusteringMethod) -> Self {
        self.method = method;
        self
    }

    /// Sets the RNG seed (only used by k-means).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The maximum cluster size.
    pub fn max_cluster_size(&self) -> usize {
        self.max_cluster_size
    }

    /// The clustering algorithm.
    pub fn method(&self) -> ClusteringMethod {
        self.method
    }
}

/// Borrowed view of one cluster at one hierarchy level.
#[derive(Debug, Clone, Copy)]
pub struct ClusterView<'a> {
    members: &'a [u32],
    centroid: Point,
}

impl<'a> ClusterView<'a> {
    /// Indices of the entities of the level below (level 0: city indices), as stored in
    /// the flat membership table.
    pub fn members(&self) -> &'a [u32] {
        self.members
    }

    /// Number of member entities.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the cluster has no members (never true for built hierarchies).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Centroid of the member positions.
    pub fn centroid(&self) -> Point {
        self.centroid
    }
}

/// Borrowed view of one level of the hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct LevelView<'a> {
    hierarchy: &'a Hierarchy,
    /// Global cluster-index range of this level.
    first: usize,
    last: usize,
}

impl<'a> LevelView<'a> {
    /// Number of clusters at this level.
    pub fn len(&self) -> usize {
        self.last - self.first
    }

    /// Returns `true` if the level has no clusters.
    pub fn is_empty(&self) -> bool {
        self.first == self.last
    }

    /// Centroids of all clusters at this level, as one contiguous borrowed slice.
    pub fn centroids(&self) -> &'a [Point] {
        &self.hierarchy.centroids[self.first..self.last]
    }

    /// Member entities of cluster `c` of this level.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn members(&self, c: usize) -> &'a [u32] {
        assert!(c < self.len(), "cluster index out of range");
        let g = self.first + c;
        let start = self.hierarchy.member_offsets[g] as usize;
        let end = self.hierarchy.member_offsets[g + 1] as usize;
        &self.hierarchy.membership[start..end]
    }

    /// Iterator over the clusters of this level.
    pub fn clusters(&self) -> impl Iterator<Item = ClusterView<'a>> + '_ {
        let view = *self;
        (0..self.len()).map(move |c| ClusterView {
            members: view.members(c),
            centroid: view.hierarchy.centroids[view.first + c],
        })
    }
}

/// A bottom-up cluster hierarchy over a set of cities.
///
/// Level 0 groups cities; level `i + 1` groups the centroids of level `i`. The topmost
/// level always has at most `max_cluster_size` clusters so it can be solved directly by
/// one Ising macro. For instances that already fit in one macro the hierarchy has zero
/// levels.
#[derive(Debug, Clone, PartialEq)]
pub struct Hierarchy {
    /// Flat membership table: member indices of every cluster of every level,
    /// concatenated bottom level first.
    membership: Vec<u32>,
    /// Per-cluster ranges into `membership` (global cluster index, one sentinel at the
    /// end): cluster `g` owns `membership[member_offsets[g]..member_offsets[g + 1]]`.
    member_offsets: Vec<u32>,
    /// Per-cluster centroids, global cluster indexing (a level's centroids are
    /// contiguous, so they read back as one slice).
    centroids: Vec<Point>,
    /// Per-level ranges of global cluster indices (one sentinel at the end).
    level_offsets: Vec<u32>,
    num_cities: usize,
    max_cluster_size: usize,
}

impl Hierarchy {
    /// Builds the hierarchy for `cities` under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::EmptyInput`] if `cities` is empty, or propagates
    /// clustering errors.
    pub fn build(cities: &[Point], config: &HierarchyConfig) -> Result<Self, ClusterError> {
        if cities.is_empty() {
            return Err(ClusterError::EmptyInput);
        }
        let max = config.max_cluster_size;
        let mut hierarchy = Self {
            membership: Vec::new(),
            member_offsets: vec![0],
            centroids: Vec::new(),
            level_offsets: vec![0],
            num_cities: cities.len(),
            max_cluster_size: max,
        };
        let mut entities: Vec<Point> = cities.to_vec();
        while entities.len() > max {
            let target = entities.len().div_ceil(max);
            let raw_clusters = match config.method {
                ClusteringMethod::AgglomerativeWard => {
                    agglomerative_clusters(&entities, &AgglomerativeConfig::new(target)?)?
                }
                ClusteringMethod::KMeans => kmeans_clusters(
                    &entities,
                    &KMeansConfig::new(target)?.with_seed(config.seed),
                )?,
            };
            // Enforce the hard maximum sub-problem size by splitting oversized clusters.
            let mut bounded: Vec<Vec<usize>> = Vec::with_capacity(raw_clusters.len());
            for members in raw_clusters {
                if members.len() <= max {
                    bounded.push(members);
                } else {
                    bounded.extend(split_to_max_size(&entities, &members, max));
                }
            }
            let mut next_entities = Vec::with_capacity(bounded.len());
            for members in &bounded {
                let centroid = Point::centroid_of_indices(&entities, members);
                hierarchy
                    .membership
                    .extend(members.iter().map(|&m| m as u32));
                hierarchy
                    .member_offsets
                    .push(hierarchy.membership.len() as u32);
                hierarchy.centroids.push(centroid);
                next_entities.push(centroid);
            }
            hierarchy
                .level_offsets
                .push(hierarchy.centroids.len() as u32);
            entities = next_entities;
            if hierarchy.num_levels() > 64 {
                return Err(ClusterError::InvalidConfig {
                    name: "max_cluster_size",
                    reason: "hierarchy did not converge (too many levels)".to_string(),
                });
            }
        }
        Ok(hierarchy)
    }

    /// Number of levels (zero when the whole instance fits in one macro).
    pub fn num_levels(&self) -> usize {
        self.level_offsets.len() - 1
    }

    /// Iterator over the levels, bottom (cities) first.
    pub fn levels(&self) -> impl Iterator<Item = LevelView<'_>> + '_ {
        (0..self.num_levels()).map(|i| self.level(i))
    }

    /// Level `i` (0 = the level grouping cities).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn level(&self, i: usize) -> LevelView<'_> {
        assert!(i < self.num_levels(), "level index out of range");
        LevelView {
            hierarchy: self,
            first: self.level_offsets[i] as usize,
            last: self.level_offsets[i + 1] as usize,
        }
    }

    /// The topmost level (the one solved directly), if any levels exist.
    pub fn top_level(&self) -> Option<LevelView<'_>> {
        self.num_levels().checked_sub(1).map(|i| self.level(i))
    }

    /// Number of cities the hierarchy was built over.
    pub fn num_cities(&self) -> usize {
        self.num_cities
    }

    /// The maximum cluster size the hierarchy was built with.
    pub fn max_cluster_size(&self) -> usize {
        self.max_cluster_size
    }

    /// Total number of sub-problems (clusters across all levels plus the top-level TSP).
    pub fn num_subproblems(&self) -> usize {
        // The topmost solve over the last level's centroids (or over the cities if there
        // are no levels) is one additional sub-problem.
        self.centroids.len() + 1
    }

    /// Checks the structural invariants: every entity of every level appears in exactly
    /// one cluster of the level above, and no cluster exceeds the maximum size.
    pub fn validate(&self) -> Result<(), ClusterError> {
        let mut expected = self.num_cities;
        for li in 0..self.num_levels() {
            let level = self.level(li);
            let mut seen = vec![false; expected];
            for c in 0..level.len() {
                let members = level.members(c);
                if members.len() > self.max_cluster_size {
                    return Err(ClusterError::InvalidConfig {
                        name: "max_cluster_size",
                        reason: format!(
                            "cluster at level {li} has {} members (max {})",
                            members.len(),
                            self.max_cluster_size
                        ),
                    });
                }
                for &m in members {
                    let m = m as usize;
                    if m >= expected || seen[m] {
                        return Err(ClusterError::InvalidClusterOrder {
                            reason: format!("entity {m} at level {li} is missing or duplicated"),
                        });
                    }
                    seen[m] = true;
                }
            }
            if !seen.iter().all(|&s| s) {
                return Err(ClusterError::InvalidClusterOrder {
                    reason: format!("level {li} does not cover all entities"),
                });
            }
            expected = level.len();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<Point> {
        let side = (n as f64).sqrt().ceil() as usize;
        (0..n)
            .map(|i| Point::new((i % side) as f64, (i / side) as f64))
            .collect()
    }

    #[test]
    fn small_instance_has_zero_levels() {
        let cities = grid(10);
        let h = Hierarchy::build(&cities, &HierarchyConfig::new(12).unwrap()).unwrap();
        assert_eq!(h.num_levels(), 0);
        assert_eq!(h.num_subproblems(), 1);
        assert!(h.top_level().is_none());
        h.validate().unwrap();
    }

    #[test]
    fn medium_instance_builds_one_level() {
        let cities = grid(100);
        let h = Hierarchy::build(&cities, &HierarchyConfig::new(12).unwrap()).unwrap();
        assert!(h.num_levels() >= 1);
        h.validate().unwrap();
        // Level 0 must cover all 100 cities.
        let covered: usize = h.level(0).clusters().map(|c| c.len()).sum();
        assert_eq!(covered, 100);
    }

    #[test]
    fn deep_hierarchy_for_large_instance() {
        let cities = grid(2000);
        let h = Hierarchy::build(&cities, &HierarchyConfig::new(12).unwrap()).unwrap();
        assert!(
            h.num_levels() >= 2,
            "2000 cities at size 12 needs multiple levels"
        );
        h.validate().unwrap();
        assert!(h.top_level().unwrap().len() <= 12);
    }

    #[test]
    fn no_cluster_exceeds_max_size() {
        let cities = grid(500);
        for max in [8usize, 12, 20] {
            let h = Hierarchy::build(&cities, &HierarchyConfig::new(max).unwrap()).unwrap();
            for level in h.levels() {
                for cluster in level.clusters() {
                    assert!(cluster.len() <= max);
                    assert!(!cluster.is_empty());
                }
            }
        }
    }

    #[test]
    fn kmeans_method_also_builds_valid_hierarchy() {
        let cities = grid(300);
        let config = HierarchyConfig::new(12)
            .unwrap()
            .with_method(ClusteringMethod::KMeans);
        let h = Hierarchy::build(&cities, &config).unwrap();
        h.validate().unwrap();
    }

    #[test]
    fn larger_cluster_size_gives_fewer_subproblems() {
        let cities = grid(600);
        let small = Hierarchy::build(&cities, &HierarchyConfig::new(8).unwrap()).unwrap();
        let large = Hierarchy::build(&cities, &HierarchyConfig::new(20).unwrap()).unwrap();
        assert!(large.num_subproblems() < small.num_subproblems());
    }

    #[test]
    fn empty_input_is_rejected() {
        assert_eq!(
            Hierarchy::build(&[], &HierarchyConfig::new(12).unwrap()),
            Err(ClusterError::EmptyInput)
        );
    }

    #[test]
    fn tiny_max_cluster_size_is_rejected() {
        assert!(HierarchyConfig::new(3).is_err());
        assert!(HierarchyConfig::new(4).is_ok());
    }

    #[test]
    fn centroids_lie_within_bounding_box() {
        let cities = grid(250);
        let h = Hierarchy::build(&cities, &HierarchyConfig::new(10).unwrap()).unwrap();
        for level in h.levels() {
            for cluster in level.clusters() {
                assert!(cluster.centroid().x >= 0.0 && cluster.centroid().x <= 16.0);
                assert!(cluster.centroid().y >= 0.0 && cluster.centroid().y <= 16.0);
            }
        }
    }

    #[test]
    fn level_centroids_are_contiguous_slices() {
        let cities = grid(400);
        let h = Hierarchy::build(&cities, &HierarchyConfig::new(10).unwrap()).unwrap();
        assert!(h.num_levels() >= 2);
        for li in 0..h.num_levels() {
            let level = h.level(li);
            let slice = level.centroids();
            assert_eq!(slice.len(), level.len());
            for (c, cluster) in level.clusters().enumerate() {
                assert_eq!(slice[c], cluster.centroid());
            }
        }
    }

    #[test]
    fn members_views_match_cluster_iteration() {
        let cities = grid(120);
        let h = Hierarchy::build(&cities, &HierarchyConfig::new(9).unwrap()).unwrap();
        let level = h.level(0);
        for (c, cluster) in level.clusters().enumerate() {
            assert_eq!(level.members(c), cluster.members());
        }
    }
}
