//! Agglomerative clustering with Ward linkage (nearest-neighbour chain algorithm).
//!
//! Ward's criterion merges, at every step, the pair of clusters whose union has the
//! smallest increase in within-cluster variance. With cluster centroids `c_i`, `c_j` and
//! sizes `n_i`, `n_j`, that increase is
//!
//! ```text
//! Δ(i, j) = (n_i · n_j) / (n_i + n_j) · ‖c_i − c_j‖²
//! ```
//!
//! The nearest-neighbour chain algorithm builds the full dendrogram in O(n²) time and
//! O(n) memory (Ward linkage is reducible, so chain merges produce the same dendrogram as
//! greedy merging). The dendrogram is then cut into the requested number of clusters.
//!
//! For very large inputs (beyond [`AgglomerativeConfig::max_exact_points`]) the points
//! are first divided into spatially compact chunks with a recursive median split and the
//! exact algorithm runs inside each chunk. This keeps the 85 900-city TSPLIB instance
//! tractable while preserving the compact-irregular-cluster behaviour the paper relies
//! on (see DESIGN.md).

use crate::{ClusterError, Point};

/// Configuration of the agglomerative clustering pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgglomerativeConfig {
    /// Desired number of clusters.
    pub target_clusters: usize,
    /// Largest input size handled by the exact O(n²) algorithm; larger inputs are chunked
    /// first.
    pub max_exact_points: usize,
    /// Chunk size used by the divisive pre-partition for very large inputs.
    pub prepartition_chunk: usize,
}

impl AgglomerativeConfig {
    /// Creates a configuration with default scalability thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] if `target_clusters` is zero.
    pub fn new(target_clusters: usize) -> Result<Self, ClusterError> {
        if target_clusters == 0 {
            return Err(ClusterError::InvalidConfig {
                name: "target_clusters",
                reason: "must be at least 1".to_string(),
            });
        }
        Ok(Self {
            target_clusters,
            max_exact_points: 20_000,
            prepartition_chunk: 2_048,
        })
    }

    /// Overrides the exact-algorithm threshold.
    pub fn with_max_exact_points(mut self, max_exact_points: usize) -> Self {
        self.max_exact_points = max_exact_points.max(2);
        self
    }

    /// Overrides the pre-partition chunk size.
    pub fn with_prepartition_chunk(mut self, chunk: usize) -> Self {
        self.prepartition_chunk = chunk.max(2);
        self
    }
}

/// Clusters `points` into `config.target_clusters` groups using Ward-linkage
/// agglomerative clustering. Returns the member indices of each cluster.
///
/// # Errors
///
/// Returns [`ClusterError::EmptyInput`] for an empty point set or
/// [`ClusterError::TooManyClusters`] when more clusters than points are requested.
///
/// # Example
///
/// ```
/// use taxi_cluster::{agglomerative_clusters, AgglomerativeConfig, Point};
///
/// // Two well-separated blobs must be recovered as two clusters.
/// let mut points = Vec::new();
/// for i in 0..5 {
///     points.push(Point::new(i as f64 * 0.1, 0.0));
///     points.push(Point::new(100.0 + i as f64 * 0.1, 0.0));
/// }
/// let clusters = agglomerative_clusters(&points, &AgglomerativeConfig::new(2)?)?;
/// assert_eq!(clusters.len(), 2);
/// assert!(clusters.iter().all(|c| c.len() == 5));
/// # Ok::<(), taxi_cluster::ClusterError>(())
/// ```
pub fn agglomerative_clusters(
    points: &[Point],
    config: &AgglomerativeConfig,
) -> Result<Vec<Vec<usize>>, ClusterError> {
    if points.is_empty() {
        return Err(ClusterError::EmptyInput);
    }
    if config.target_clusters > points.len() {
        return Err(ClusterError::TooManyClusters {
            requested: config.target_clusters,
            points: points.len(),
        });
    }
    let all_indices: Vec<usize> = (0..points.len()).collect();
    if points.len() <= config.max_exact_points {
        return Ok(ward_cut(points, &all_indices, config.target_clusters));
    }

    // Divisive pre-partition: split into spatially compact chunks, then run the exact
    // algorithm inside each chunk with a proportional share of the cluster budget.
    let chunks = median_split_chunks(points, &all_indices, config.prepartition_chunk);
    let total = points.len() as f64;
    let mut clusters = Vec::with_capacity(config.target_clusters);
    let mut remaining_clusters = config.target_clusters;
    let mut remaining_points = points.len();
    for chunk in &chunks {
        let share = ((chunk.len() as f64 / total) * config.target_clusters as f64).round() as usize;
        let k = share
            .max(1)
            .min(chunk.len())
            .min(remaining_clusters.saturating_sub(0).max(1));
        clusters.extend(ward_cut(points, chunk, k));
        remaining_clusters = remaining_clusters.saturating_sub(k);
        remaining_points -= chunk.len();
        let _ = remaining_points;
    }
    Ok(clusters)
}

/// One merge of the dendrogram.
#[derive(Debug, Clone, Copy)]
struct Merge {
    a: usize,
    b: usize,
    delta: f64,
}

/// Runs exact NN-chain Ward clustering over the points selected by `indices` and cuts the
/// dendrogram into `k` clusters. Returns member lists in terms of the original indices.
fn ward_cut(points: &[Point], indices: &[usize], k: usize) -> Vec<Vec<usize>> {
    let n = indices.len();
    if k >= n {
        return indices.iter().map(|&i| vec![i]).collect();
    }
    let merges = nn_chain_dendrogram(points, indices);

    // Cut: apply the n - k merges with the smallest Ward deltas (Ward is monotonic, so
    // this equals cutting the dendrogram at k clusters).
    let mut order: Vec<usize> = (0..merges.len()).collect();
    // total_cmp: identical to partial_cmp for the non-negative finite Ward deltas the
    // dendrogram produces, and a defined (not Equal-collapsed) order if a delta is NaN.
    order.sort_by(|&x, &y| merges[x].delta.total_cmp(&merges[y].delta));
    let mut uf = UnionFind::new(n);
    for &m in order.iter().take(n - k) {
        uf.union(merges[m].a, merges[m].b);
    }
    // BTreeMap keeps the cluster order deterministic (keyed by the union-find root, i.e.
    // the smallest-index representative encountered first).
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for local in 0..n {
        groups
            .entry(uf.find(local))
            .or_default()
            .push(indices[local]);
    }
    groups.into_values().collect()
}

/// Builds the full Ward dendrogram with the nearest-neighbour chain algorithm.
/// Cluster identities in the returned merges refer to *local* leaf indices (0..n); merged
/// clusters reuse the representative leaf index of one of their members via union-find at
/// cut time, so each merge records one representative leaf per side.
fn nn_chain_dendrogram(points: &[Point], indices: &[usize]) -> Vec<Merge> {
    let n = indices.len();
    #[derive(Clone, Copy)]
    struct Active {
        centroid: Point,
        size: f64,
        /// Representative local leaf index for the cut phase.
        leaf: usize,
    }
    let mut active: Vec<Option<Active>> = indices
        .iter()
        .enumerate()
        .map(|(local, &global)| {
            Some(Active {
                centroid: points[global],
                size: 1.0,
                leaf: local,
            })
        })
        .collect();
    let mut alive: Vec<usize> = (0..n).collect();
    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    let mut chain: Vec<usize> = Vec::new();

    let ward = |a: &Active, b: &Active| -> f64 {
        (a.size * b.size) / (a.size + b.size) * a.centroid.squared_distance(&b.centroid)
    };

    while merges.len() + 1 < n {
        if chain.is_empty() {
            chain.push(*alive.first().expect("at least two clusters remain"));
        }
        let current = *chain.last().expect("chain is non-empty");
        let current_cluster = active[current].expect("chain entries are alive");
        // Nearest alive neighbour of `current` under total order (first minimum wins;
        // NaN deltas sort above +∞ so they are never selected). The scan is
        // lane-chunked: Ward deltas land in fixed-width array temporaries, then fold
        // into the running best — identical to a sequential scan because every
        // comparison is exact.
        let mut best = usize::MAX;
        let mut best_delta = f64::INFINITY;
        let chunks = alive.chunks_exact(taxi_dist::LANES);
        let tail_start = alive.len() - chunks.remainder().len();
        for (c, chunk) in chunks.enumerate() {
            let mut deltas = [f64::NAN; taxi_dist::LANES];
            for l in 0..taxi_dist::LANES {
                let other = chunk[l];
                if other != current {
                    deltas[l] = ward(&current_cluster, &active[other].expect("alive cluster"));
                }
            }
            for (l, &delta) in deltas.iter().enumerate() {
                if delta.total_cmp(&best_delta) == std::cmp::Ordering::Less {
                    best_delta = delta;
                    best = chunk[l];
                    debug_assert_eq!(alive[c * taxi_dist::LANES + l], chunk[l]);
                }
            }
        }
        for &other in &alive[tail_start..] {
            if other == current {
                continue;
            }
            let delta = ward(&current_cluster, &active[other].expect("alive cluster"));
            if delta.total_cmp(&best_delta) == std::cmp::Ordering::Less {
                best_delta = delta;
                best = other;
            }
        }
        // Non-finite geometry (NaN/∞ coordinates) produces NaN Ward deltas for every
        // neighbour, leaving `best` unset. Fail fast with a diagnosable message: the
        // fleet's crash containment expects poisoned instances to panic inside the
        // clustering stage rather than emit an arbitrary dendrogram.
        assert!(
            best != usize::MAX,
            "agglomerative clustering: no finite Ward delta from cluster {current}; \
             input coordinates are likely NaN or infinite"
        );
        let reciprocal = chain.len() >= 2 && chain[chain.len() - 2] == best;
        if reciprocal {
            // Merge `current` and `best`.
            chain.pop();
            chain.pop();
            let a = active[current].expect("alive");
            let b = active[best].expect("alive");
            let merged = Active {
                centroid: Point::new(
                    (a.centroid.x * a.size + b.centroid.x * b.size) / (a.size + b.size),
                    (a.centroid.y * a.size + b.centroid.y * b.size) / (a.size + b.size),
                ),
                size: a.size + b.size,
                leaf: a.leaf,
            };
            merges.push(Merge {
                a: a.leaf,
                b: b.leaf,
                delta: best_delta,
            });
            active[current] = Some(merged);
            active[best] = None;
            alive.retain(|&c| c != best);
        } else {
            chain.push(best);
        }
    }
    merges
}

/// Recursively splits the points selected by `indices` along the axis of larger spread at
/// the median, until every chunk holds at most `chunk_size` points.
fn median_split_chunks(points: &[Point], indices: &[usize], chunk_size: usize) -> Vec<Vec<usize>> {
    if indices.len() <= chunk_size {
        return vec![indices.to_vec()];
    }
    let (min_x, max_x) = indices
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &i| {
            (lo.min(points[i].x), hi.max(points[i].x))
        });
    let (min_y, max_y) = indices
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &i| {
            (lo.min(points[i].y), hi.max(points[i].y))
        });
    let split_x = (max_x - min_x) >= (max_y - min_y);
    let mut sorted = indices.to_vec();
    sorted.sort_by(|&a, &b| {
        let (ka, kb) = if split_x {
            (points[a].x, points[b].x)
        } else {
            (points[a].y, points[b].y)
        };
        ka.total_cmp(&kb)
    });
    let mid = sorted.len() / 2;
    let (left, right) = sorted.split_at(mid);
    let mut chunks = median_split_chunks(points, left, chunk_size);
    chunks.extend(median_split_chunks(points, right, chunk_size));
    chunks
}

/// Splits an oversized member list into pieces of at most `max_size` members using the
/// same recursive median split (exposed for the hierarchy builder).
pub(crate) fn split_to_max_size(
    points: &[Point],
    members: &[usize],
    max_size: usize,
) -> Vec<Vec<usize>> {
    median_split_chunks(points, members, max_size)
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(centers: &[(f64, f64)], per_blob: usize, spread: f64) -> Vec<Point> {
        let mut pts = Vec::new();
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for k in 0..per_blob {
                // Deterministic jitter.
                let angle = (ci * per_blob + k) as f64 * 2.399_963; // golden angle
                let r = spread * ((k % 7) as f64 / 7.0);
                pts.push(Point::new(cx + r * angle.cos(), cy + r * angle.sin()));
            }
        }
        pts
    }

    #[test]
    fn empty_input_is_rejected() {
        let cfg = AgglomerativeConfig::new(2).unwrap();
        assert_eq!(
            agglomerative_clusters(&[], &cfg),
            Err(ClusterError::EmptyInput)
        );
    }

    #[test]
    fn zero_clusters_is_rejected() {
        assert!(AgglomerativeConfig::new(0).is_err());
    }

    #[test]
    fn more_clusters_than_points_is_rejected() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let cfg = AgglomerativeConfig::new(5).unwrap();
        assert!(matches!(
            agglomerative_clusters(&pts, &cfg),
            Err(ClusterError::TooManyClusters { .. })
        ));
    }

    #[test]
    fn clusters_partition_the_input() {
        let pts = blobs(&[(0.0, 0.0), (50.0, 0.0), (0.0, 50.0)], 20, 2.0);
        let cfg = AgglomerativeConfig::new(3).unwrap();
        let clusters = agglomerative_clusters(&pts, &cfg).unwrap();
        let mut seen = vec![false; pts.len()];
        for cluster in &clusters {
            for &i in cluster {
                assert!(!seen[i], "point {i} assigned to two clusters");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every point must be assigned");
    }

    #[test]
    fn well_separated_blobs_are_recovered() {
        let pts = blobs(
            &[(0.0, 0.0), (100.0, 0.0), (0.0, 100.0), (100.0, 100.0)],
            15,
            3.0,
        );
        let cfg = AgglomerativeConfig::new(4).unwrap();
        let clusters = agglomerative_clusters(&pts, &cfg).unwrap();
        assert_eq!(clusters.len(), 4);
        for cluster in &clusters {
            assert_eq!(
                cluster.len(),
                15,
                "each blob must map to exactly one cluster"
            );
            // All members of a cluster must come from the same blob (indices are grouped
            // by blob in the generator).
            let blob = cluster[0] / 15;
            assert!(cluster.iter().all(|&i| i / 15 == blob));
        }
    }

    #[test]
    fn singleton_request_returns_one_cluster() {
        let pts = blobs(&[(0.0, 0.0), (10.0, 0.0)], 5, 1.0);
        let cfg = AgglomerativeConfig::new(1).unwrap();
        let clusters = agglomerative_clusters(&pts, &cfg).unwrap();
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 10);
    }

    #[test]
    fn k_equals_n_returns_singletons() {
        let pts = blobs(&[(0.0, 0.0)], 6, 2.0);
        let cfg = AgglomerativeConfig::new(6).unwrap();
        let clusters = agglomerative_clusters(&pts, &cfg).unwrap();
        assert_eq!(clusters.len(), 6);
        assert!(clusters.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn prepartition_path_still_partitions_input() {
        let pts = blobs(
            &[(0.0, 0.0), (200.0, 0.0), (0.0, 200.0), (200.0, 200.0)],
            50,
            5.0,
        );
        let cfg = AgglomerativeConfig::new(8)
            .unwrap()
            .with_max_exact_points(60)
            .with_prepartition_chunk(64);
        let clusters = agglomerative_clusters(&pts, &cfg).unwrap();
        let total: usize = clusters.iter().map(Vec::len).sum();
        assert_eq!(total, pts.len());
        assert!(
            clusters.len() >= 4,
            "expected at least one cluster per chunk"
        );
    }

    #[test]
    fn ward_prefers_merging_nearby_points() {
        // Three points: two close together, one far away; with k = 2 the far point must
        // be alone.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.0),
            Point::new(100.0, 0.0),
        ];
        let cfg = AgglomerativeConfig::new(2).unwrap();
        let clusters = agglomerative_clusters(&pts, &cfg).unwrap();
        let lonely = clusters
            .iter()
            .find(|c| c.len() == 1)
            .expect("a singleton cluster");
        assert_eq!(lonely[0], 2);
    }

    #[test]
    fn median_split_respects_chunk_size() {
        let pts = blobs(&[(0.0, 0.0)], 100, 50.0);
        let idx: Vec<usize> = (0..pts.len()).collect();
        let chunks = median_split_chunks(&pts, &idx, 16);
        assert!(chunks.iter().all(|c| c.len() <= 16));
        let total: usize = chunks.iter().map(Vec::len).sum();
        assert_eq!(total, pts.len());
    }
}
