//! Cluster-quality statistics.
//!
//! The paper argues for agglomerative Ward clustering over k-means because Ward minimises
//! intra-cluster variance while still allowing compact *irregular* clusters. These
//! statistics make that argument measurable: intra-cluster variance, cluster radius, and
//! the balance of cluster sizes, computed for any clustering produced by this crate.

use crate::Point;

/// Summary statistics of one clustering (a partition of a point set).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClusteringStats {
    /// Number of clusters.
    pub clusters: usize,
    /// Total number of points.
    pub points: usize,
    /// Sum over clusters of the within-cluster sum of squared distances to the centroid
    /// (the quantity Ward linkage greedily minimises).
    pub within_cluster_variance: f64,
    /// Mean distance of a point to its cluster centroid.
    pub mean_radius: f64,
    /// Largest distance of any point to its cluster centroid.
    pub max_radius: f64,
    /// Size of the smallest cluster.
    pub min_cluster_size: usize,
    /// Size of the largest cluster.
    pub max_cluster_size: usize,
}

impl ClusteringStats {
    /// Computes statistics for `clusters` (member indices into `points`).
    ///
    /// # Panics
    ///
    /// Panics if a member index is out of range or a cluster is empty.
    pub fn compute(points: &[Point], clusters: &[Vec<usize>]) -> Self {
        assert!(!clusters.is_empty(), "at least one cluster is required");
        let mut within = 0.0;
        let mut radius_sum = 0.0;
        let mut max_radius: f64 = 0.0;
        let mut total_points = 0usize;
        let mut min_size = usize::MAX;
        let mut max_size = 0usize;
        for members in clusters {
            assert!(!members.is_empty(), "clusters must not be empty");
            let centroid = Point::centroid_of_indices(points, members);
            min_size = min_size.min(members.len());
            max_size = max_size.max(members.len());
            total_points += members.len();
            for &m in members {
                let d2 = points[m].squared_distance(&centroid);
                within += d2;
                let d = d2.sqrt();
                radius_sum += d;
                max_radius = max_radius.max(d);
            }
        }
        Self {
            clusters: clusters.len(),
            points: total_points,
            within_cluster_variance: within,
            mean_radius: radius_sum / total_points as f64,
            max_radius,
            min_cluster_size: min_size,
            max_cluster_size: max_size,
        }
    }

    /// Ratio of the largest to the smallest cluster size (1.0 = perfectly balanced).
    pub fn size_imbalance(&self) -> f64 {
        if self.min_cluster_size == 0 {
            return f64::INFINITY;
        }
        self.max_cluster_size as f64 / self.min_cluster_size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{agglomerative_clusters, kmeans_clusters, AgglomerativeConfig, KMeansConfig};

    fn two_blobs() -> Vec<Point> {
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(Point::new(i as f64 * 0.1, 0.0));
            pts.push(Point::new(100.0 + i as f64 * 0.1, 0.0));
        }
        pts
    }

    #[test]
    fn perfect_split_has_tiny_variance() {
        let pts = two_blobs();
        let good = vec![
            (0..40).step_by(2).collect::<Vec<_>>(),
            (1..40).step_by(2).collect(),
        ];
        let bad = vec![(0..20).collect::<Vec<_>>(), (20..40).collect()];
        let good_stats = ClusteringStats::compute(&pts, &good);
        let bad_stats = ClusteringStats::compute(&pts, &bad);
        // "good" groups each blob together (even indices = blob 1, odd = blob 2), "bad"
        // cuts across the blobs, mixing near and far points.
        assert!(good_stats.within_cluster_variance < bad_stats.within_cluster_variance);
        assert!(good_stats.max_radius < bad_stats.max_radius);
    }

    #[test]
    fn ward_variance_is_competitive_with_kmeans() {
        let pts = two_blobs();
        let ward = agglomerative_clusters(&pts, &AgglomerativeConfig::new(2).unwrap()).unwrap();
        let km = kmeans_clusters(&pts, &KMeansConfig::new(2).unwrap()).unwrap();
        let ward_stats = ClusteringStats::compute(&pts, &ward);
        let km_stats = ClusteringStats::compute(&pts, &km);
        // On a clean two-blob instance both must find the obvious partition.
        assert!(
            (ward_stats.within_cluster_variance - km_stats.within_cluster_variance).abs() < 1e-6
        );
        assert_eq!(ward_stats.points, 40);
        assert_eq!(ward_stats.clusters, 2);
    }

    #[test]
    fn imbalance_is_one_for_equal_clusters() {
        let pts = two_blobs();
        let clusters = vec![(0..20).collect::<Vec<_>>(), (20..40).collect()];
        let stats = ClusteringStats::compute(&pts, &clusters);
        assert!((stats.size_imbalance() - 1.0).abs() < 1e-12);
        assert_eq!(stats.min_cluster_size, 20);
        assert_eq!(stats.max_cluster_size, 20);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_cluster_panics() {
        let pts = two_blobs();
        ClusteringStats::compute(&pts, &[vec![0, 1], vec![]]);
    }
}
