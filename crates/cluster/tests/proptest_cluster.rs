//! Property-based tests of the clustering substrate.

use proptest::prelude::*;

use taxi_cluster::{
    agglomerative_clusters, kmeans_clusters, AgglomerativeConfig, ClusteringStats, EndpointFixer,
    Hierarchy, HierarchyConfig, KMeansConfig, Point,
};

fn points_strategy(max_len: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((-200.0f64..200.0, -200.0f64..200.0), 8..max_len)
        .prop_map(|raw| raw.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

fn is_partition(clusters: &[Vec<usize>], n: usize) -> bool {
    let mut seen = vec![false; n];
    for cluster in clusters {
        for &m in cluster {
            if m >= n || seen[m] {
                return false;
            }
            seen[m] = true;
        }
    }
    seen.iter().all(|&s| s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// k-means always partitions the input and never produces empty clusters.
    #[test]
    fn kmeans_partitions_points(points in points_strategy(80), k in 1usize..8) {
        prop_assume!(k <= points.len());
        let clusters = kmeans_clusters(&points, &KMeansConfig::new(k).unwrap()).unwrap();
        prop_assert!(is_partition(&clusters, points.len()));
        prop_assert!(clusters.iter().all(|c| !c.is_empty()));
        prop_assert!(clusters.len() <= k);
    }

    /// Ward agglomerative clustering never yields a higher within-cluster variance than
    /// putting everything in one cluster, and splitting further never increases it.
    #[test]
    fn ward_variance_decreases_with_more_clusters(points in points_strategy(60)) {
        let one = agglomerative_clusters(&points, &AgglomerativeConfig::new(1).unwrap()).unwrap();
        let four_k = 4.min(points.len());
        let four =
            agglomerative_clusters(&points, &AgglomerativeConfig::new(four_k).unwrap()).unwrap();
        let stats_one = ClusteringStats::compute(&points, &one);
        let stats_four = ClusteringStats::compute(&points, &four);
        prop_assert!(stats_four.within_cluster_variance <= stats_one.within_cluster_variance + 1e-6);
    }

    /// Endpoint fixing always returns endpoints that belong to their cluster, with
    /// distinct entry/exit for multi-member clusters.
    #[test]
    fn endpoint_fixing_respects_membership(points in points_strategy(60), max_size in 4usize..10) {
        let hierarchy = Hierarchy::build(&points, &HierarchyConfig::new(max_size).unwrap()).unwrap();
        prop_assume!(hierarchy.num_levels() >= 1);
        let level = hierarchy.level(0);
        prop_assume!(level.len() >= 2);
        let order: Vec<usize> = (0..level.len()).collect();
        let fixer = EndpointFixer::new(&points);
        // The zero-copy LevelView plugs into the fixer directly (no member clones).
        let mut endpoints = Vec::new();
        fixer.fix_into(&level, &order, &mut endpoints).unwrap();
        for (cluster, endpoint) in level.clusters().zip(&endpoints) {
            prop_assert!(cluster.members().contains(&(endpoint.entry as u32)));
            prop_assert!(cluster.members().contains(&(endpoint.exit as u32)));
            if cluster.len() > 1 {
                prop_assert_ne!(endpoint.entry, endpoint.exit);
            }
        }
        prop_assert!(fixer.inter_cluster_length(&endpoints, &order) >= 0.0);
    }

    /// Hierarchies built with either clustering method cover every city exactly once at
    /// level 0 and never exceed the maximum cluster size anywhere.
    #[test]
    fn hierarchies_are_valid_partitions(points in points_strategy(120), max_size in 4usize..14) {
        for method in [
            taxi_cluster::hierarchy::ClusteringMethod::AgglomerativeWard,
            taxi_cluster::hierarchy::ClusteringMethod::KMeans,
        ] {
            let config = HierarchyConfig::new(max_size).unwrap().with_method(method);
            let hierarchy = Hierarchy::build(&points, &config).unwrap();
            hierarchy.validate().unwrap();
            if hierarchy.num_levels() > 0 {
                let level0: Vec<Vec<usize>> = hierarchy
                    .level(0)
                    .clusters()
                    .map(|c| c.members().iter().map(|&m| m as usize).collect())
                    .collect();
                prop_assert!(is_partition(&level0, points.len()));
            }
        }
    }
}
