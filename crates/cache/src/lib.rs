//! # taxi-cache — serving-side memoization primitives
//!
//! Real dispatch traffic is dominated by repeated and near-duplicate instances
//! (popular routes, recurring PCB panels); this crate provides the two generic
//! building blocks that let the serving stack avoid recomputing what it already
//! knows:
//!
//! * [`ShardedLru`] — a concurrent LRU cache split into N mutex-guarded shards, with
//!   capacity bounded both in **entries** and in **bytes** (via the [`Weighted`]
//!   trait), optional **TTL** expiry, and lock-free hit/miss/insert/evict counters
//!   ([`CacheCounters`] / [`CacheSnapshot`]). The hit path (hash → shard lock → map
//!   probe → recency relink → value clone) performs no heap allocation, so an
//!   `Arc`-valued cache serves hits allocation-free in steady state.
//! * [`Singleflight`] — request coalescing: concurrent callers that miss on the same
//!   key elect one **leader** to compute the value while **followers** park on the
//!   flight's ticket; the leader's completion wakes them all with a shared clone. A
//!   leader that fails (drops its token without completing, e.g. by panicking)
//!   abandons the flight: followers observe [`FlightOutcome::Abandoned`] and re-try
//!   themselves, so one poisoned request can never wedge its followers.
//!
//! Both types are `std`-only (mutexes, condvars, atomics — no external runtime) and
//! the crate forbids `unsafe`. They are deliberately **domain-free**: keys are any
//! `Hash + Eq + Clone` type and values any `Clone` type, so the same machinery that
//! backs `taxi::cache::SolutionCache` can memoise anything else the workspace grows
//! (clusterings, compiled plans, ...).
//!
//! # Quickstart
//!
//! ```
//! use taxi_cache::{CachePolicy, ShardedLru, Weighted};
//!
//! #[derive(Clone, Debug, PartialEq)]
//! struct Tour(Vec<u32>);
//! impl Weighted for Tour {
//!     fn weight_bytes(&self) -> usize {
//!         self.0.len() * 4
//!     }
//! }
//!
//! let cache: ShardedLru<u64, Tour> = ShardedLru::new(CachePolicy::new().with_max_entries(128));
//! assert!(cache.get(&7).is_none());
//! cache.insert(7, Tour(vec![0, 1, 2]));
//! assert_eq!(cache.get(&7), Some(Tour(vec![0, 1, 2])));
//! let stats = cache.stats();
//! assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lru;
pub mod singleflight;

pub use lru::{CacheCounters, CachePolicy, CacheSnapshot, ShardedLru, Weighted};
pub use singleflight::{FlightOutcome, FlightTicket, Join, LeaderToken, Singleflight};
