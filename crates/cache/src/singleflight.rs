//! Singleflight request coalescing.
//!
//! When many callers miss the cache on the same key at once, computing the value
//! once and sharing it beats N identical computations. [`Singleflight::join`] elects
//! roles: the first caller for a key becomes the **leader** (receiving a
//! [`LeaderToken`]); everyone else becomes a **follower** (receiving a
//! [`FlightTicket`]). The leader computes the value and calls
//! [`LeaderToken::complete`], which publishes a clone to every parked follower and
//! retires the flight. If the leader instead drops its token — an early return, an
//! error path, a panic unwinding through it — the flight is **abandoned**: followers
//! wake with [`FlightOutcome::Abandoned`] and are expected to retry (typically
//! re-joining, so exactly one of them is promoted to the new leader). A failed
//! leader therefore fails only itself; it can never strand its followers.
//!
//! The registry holds only in-progress flights: completion or abandonment removes
//! the key, so the map's size is bounded by concurrency, not key cardinality.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What a follower observes when its flight ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightOutcome<V> {
    /// The leader completed with this value.
    Complete(V),
    /// The leader dropped its token without completing (failure or panic); the
    /// follower should retry.
    Abandoned,
}

impl<V> FlightOutcome<V> {
    /// The completed value, if the flight completed.
    pub fn complete(self) -> Option<V> {
        match self {
            FlightOutcome::Complete(value) => Some(value),
            FlightOutcome::Abandoned => None,
        }
    }
}

#[derive(Debug)]
struct FlightState<V> {
    outcome: Mutex<Option<FlightOutcome<V>>>,
    done: Condvar,
}

impl<V: Clone> FlightState<V> {
    fn new() -> Self {
        Self {
            outcome: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn publish(&self, outcome: FlightOutcome<V>) {
        let mut guard = self
            .outcome
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if guard.is_none() {
            *guard = Some(outcome);
            self.done.notify_all();
        }
    }

    fn wait(&self) -> FlightOutcome<V> {
        let mut guard = self
            .outcome
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(outcome) = guard.clone() {
                return outcome;
            }
            guard = self
                .done
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn wait_until(&self, deadline: Instant) -> Option<FlightOutcome<V>> {
        let mut guard = self
            .outcome
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(outcome) = guard.clone() {
                return Some(outcome);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (recovered, _timed_out) = self
                .done
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard = recovered;
        }
    }
}

/// A follower's handle on an in-progress flight.
#[derive(Debug)]
pub struct FlightTicket<V> {
    state: Arc<FlightState<V>>,
}

impl<V: Clone> FlightTicket<V> {
    /// Blocks until the leader completes or abandons the flight.
    pub fn wait(self) -> FlightOutcome<V> {
        self.state.wait()
    }

    /// Blocks until the flight ends or `timeout` elapses; `None` is a timeout.
    ///
    /// A timed-out waiter has **not** abandoned the flight — only the leader's
    /// fate decides that. A leader that completes after its waiters gave up still
    /// counts as a completed flight (the value lands in the cache for the
    /// waiters' retries); the abandoned counter moves only when the leader drops
    /// its token uncompleted. Timed-out callers typically re-probe the cache and
    /// re-[`join`](Singleflight::join), becoming a follower of the still-running
    /// flight or the leader of a fresh one.
    pub fn wait_timeout(self, timeout: Duration) -> Option<FlightOutcome<V>> {
        self.state.wait_until(Instant::now() + timeout)
    }

    /// Returns the outcome if the flight has already ended.
    pub fn try_get(&self) -> Option<FlightOutcome<V>> {
        self.state
            .outcome
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

/// The leader's obligation: complete the flight, or abandon it by dropping.
#[derive(Debug)]
pub struct LeaderToken<'a, K: Hash + Eq + Clone, V: Clone> {
    flight: &'a Singleflight<K, V>,
    key: K,
    state: Arc<FlightState<V>>,
    completed: bool,
}

impl<K: Hash + Eq + Clone, V: Clone> LeaderToken<'_, K, V> {
    /// Publishes `value` to every follower and retires the flight. Counts as a
    /// **completed** flight even if every follower already timed out of its wait
    /// — completion is the leader's fate, not the audience's.
    pub fn complete(mut self, value: V) {
        self.completed = true;
        self.flight.retire(&self.key);
        self.flight.completed.fetch_add(1, Ordering::Relaxed);
        self.state.publish(FlightOutcome::Complete(value));
    }
}

impl<K: Hash + Eq + Clone, V: Clone> Drop for LeaderToken<'_, K, V> {
    fn drop(&mut self) {
        if !self.completed {
            // Leader failed (error return or panic unwind): retire the flight first
            // so retrying followers can elect a new leader, then wake them.
            self.flight.retire(&self.key);
            self.flight.abandoned.fetch_add(1, Ordering::Relaxed);
            self.state.publish(FlightOutcome::Abandoned);
        }
    }
}

/// The role [`Singleflight::join`] assigned to a caller.
#[derive(Debug)]
pub enum Join<'a, K: Hash + Eq + Clone, V: Clone> {
    /// This caller computes the value and must [`complete`](LeaderToken::complete)
    /// (or abandon) the flight.
    Leader(LeaderToken<'a, K, V>),
    /// Another caller is already computing; wait on the ticket.
    Follower(FlightTicket<V>),
}

/// Coalesces concurrent computations of the same key. See the [module docs](self).
///
/// # Example
///
/// ```
/// use taxi_cache::{FlightOutcome, Join, Singleflight};
///
/// let flights: Singleflight<&'static str, u64> = Singleflight::new();
/// // First caller is elected leader and computes.
/// let Join::Leader(token) = flights.join("answer") else {
///     panic!("no flight in progress yet");
/// };
/// // A concurrent caller becomes a follower of the same flight.
/// let Join::Follower(ticket) = flights.join("answer") else {
///     panic!("leader already in flight");
/// };
/// token.complete(42);
/// assert_eq!(ticket.wait().complete(), Some(42));
/// assert_eq!(flights.in_flight(), 0);
/// ```
#[derive(Debug)]
pub struct Singleflight<K, V> {
    flights: Mutex<HashMap<K, Arc<FlightState<V>>>>,
    /// Flights whose leader called [`LeaderToken::complete`].
    completed: AtomicU64,
    /// Flights whose leader dropped its token uncompleted. Exactly one of these
    /// two counters moves per flight, exactly once.
    abandoned: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> Singleflight<K, V> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self {
            flights: Mutex::new(HashMap::new()),
            completed: AtomicU64::new(0),
            abandoned: AtomicU64::new(0),
        }
    }

    /// Joins the flight for `key`, electing this caller leader if none is in
    /// progress.
    pub fn join(&self, key: K) -> Join<'_, K, V> {
        let mut flights = self
            .flights
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(state) = flights.get(&key) {
            return Join::Follower(FlightTicket {
                state: Arc::clone(state),
            });
        }
        let state = Arc::new(FlightState::new());
        flights.insert(key.clone(), Arc::clone(&state));
        Join::Leader(LeaderToken {
            flight: self,
            key,
            state,
            completed: false,
        })
    }

    /// Flights that ended with [`LeaderToken::complete`].
    pub fn completed_flights(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Flights whose leader dropped its token without completing (error returns
    /// and panic unwinds). Waiter timeouts do **not** move this counter — see
    /// [`FlightTicket::wait_timeout`].
    pub fn abandoned_flights(&self) -> u64 {
        self.abandoned.load(Ordering::Relaxed)
    }

    /// Number of in-progress flights.
    pub fn in_flight(&self) -> usize {
        self.flights
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    fn retire(&self, key: &K) {
        self.flights
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(key);
    }
}

impl<K: Hash + Eq + Clone, V: Clone> Default for Singleflight<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    #[test]
    fn leader_completion_feeds_all_followers() {
        let flight: Arc<Singleflight<u64, u64>> = Arc::new(Singleflight::new());
        let computed = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let flight = Arc::clone(&flight);
                let computed = &computed;
                scope.spawn(move || match flight.join(42) {
                    Join::Leader(token) => {
                        computed.fetch_add(1, Ordering::Relaxed);
                        // Linger so the other threads genuinely join as followers.
                        std::thread::sleep(Duration::from_millis(30));
                        token.complete(4242);
                    }
                    Join::Follower(ticket) => {
                        assert_eq!(ticket.wait(), FlightOutcome::Complete(4242));
                    }
                });
            }
        });
        assert_eq!(computed.load(Ordering::Relaxed), 1, "exactly one leader");
        assert_eq!(flight.in_flight(), 0, "completion retires the flight");
    }

    #[test]
    fn abandoned_flights_wake_followers_for_retry() {
        let flight: Arc<Singleflight<u64, u64>> = Arc::new(Singleflight::new());
        let solves = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let flight = Arc::clone(&flight);
                let solves = &solves;
                scope.spawn(move || {
                    loop {
                        match flight.join(7) {
                            Join::Leader(token) => {
                                if worker == 0 && solves.load(Ordering::Relaxed) == 0 {
                                    std::thread::sleep(Duration::from_millis(20));
                                    // First leader fails: drop without completing.
                                    drop(token);
                                    return 0;
                                }
                                solves.fetch_add(1, Ordering::Relaxed);
                                token.complete(77);
                                return 77;
                            }
                            Join::Follower(ticket) => match ticket.wait() {
                                FlightOutcome::Complete(v) => return v,
                                FlightOutcome::Abandoned => continue,
                            },
                        }
                    }
                });
            }
        });
        assert!(solves.load(Ordering::Relaxed) >= 1);
        assert_eq!(flight.in_flight(), 0);
    }

    #[test]
    fn panicking_leader_abandons_via_drop() {
        let flight: Singleflight<u64, u64> = Singleflight::new();
        let Join::Leader(token) = flight.join(1) else {
            panic!("first join leads");
        };
        let Join::Follower(ticket) = flight.join(1) else {
            panic!("second join follows");
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _token = token;
            panic!("leader died");
        }));
        assert!(result.is_err());
        assert_eq!(ticket.wait(), FlightOutcome::Abandoned);
        // The key is free again: a retry is promoted to leader.
        assert!(matches!(flight.join(1), Join::Leader(_)));
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let flight: Singleflight<u64, u64> = Singleflight::new();
        let Join::Leader(a) = flight.join(1) else {
            panic!("leads")
        };
        let Join::Leader(b) = flight.join(2) else {
            panic!("leads")
        };
        assert_eq!(flight.in_flight(), 2);
        a.complete(1);
        b.complete(2);
        assert_eq!(flight.in_flight(), 0);
    }

    #[test]
    fn late_completion_after_waiter_timeout_counts_completed_not_abandoned() {
        // The path the counters must pin down: the leader is slow, every waiter
        // times out and walks away, and only then does the leader complete. The
        // flight *completed* — the waiters' impatience is not the leader's
        // abandonment — so completed=1, abandoned=0, and the published value is
        // there for anyone still holding a ticket.
        let flight: Singleflight<u64, u64> = Singleflight::new();
        let Join::Leader(token) = flight.join(9) else {
            panic!("first join leads");
        };
        let Join::Follower(impatient) = flight.join(9) else {
            panic!("second join follows");
        };
        let Join::Follower(patient) = flight.join(9) else {
            panic!("third join follows");
        };
        assert_eq!(
            impatient.wait_timeout(Duration::from_millis(10)),
            None,
            "waiter times out while the leader is still working"
        );
        assert_eq!(flight.completed_flights(), 0);
        assert_eq!(flight.abandoned_flights(), 0);
        // A timed-out caller that re-joins while the flight is still running
        // becomes a follower again — the flight key is not freed by a timeout.
        assert!(matches!(flight.join(9), Join::Follower(_)));
        token.complete(99);
        assert_eq!(flight.completed_flights(), 1);
        assert_eq!(
            flight.abandoned_flights(),
            0,
            "a late completion must never count as abandoned"
        );
        assert_eq!(patient.wait(), FlightOutcome::Complete(99));
        // After completion the key is free: a retry is promoted to leader.
        assert!(matches!(flight.join(9), Join::Leader(_)));
    }

    #[test]
    fn wait_timeout_returns_the_outcome_when_it_arrives_in_time() {
        let flight: Arc<Singleflight<u64, u64>> = Arc::new(Singleflight::new());
        let Join::Leader(token) = flight.join(3) else {
            panic!("leads");
        };
        let Join::Follower(ticket) = flight.join(3) else {
            panic!("follows");
        };
        std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(10));
                token.complete(33);
            });
            assert_eq!(
                ticket.wait_timeout(Duration::from_secs(5)),
                Some(FlightOutcome::Complete(33))
            );
        });
    }

    #[test]
    fn counters_attribute_each_flight_exactly_once() {
        let flight: Singleflight<u64, u64> = Singleflight::new();
        // Flight 1: abandoned (leader drops uncompleted).
        let Join::Leader(token) = flight.join(1) else {
            panic!("leads");
        };
        drop(token);
        assert_eq!(flight.completed_flights(), 0);
        assert_eq!(flight.abandoned_flights(), 1);
        // Retry after abandonment elects a new leader; its completion counts on
        // the completed side, leaving the abandoned count untouched.
        let Join::Leader(token) = flight.join(1) else {
            panic!("abandonment freed the key for a new leader");
        };
        token.complete(11);
        assert_eq!(flight.completed_flights(), 1);
        assert_eq!(flight.abandoned_flights(), 1);
        // Panic unwinds count as abandonment exactly once too.
        let Join::Leader(token) = flight.join(2) else {
            panic!("leads");
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _token = token;
            panic!("leader died");
        }));
        assert!(result.is_err());
        assert_eq!(flight.abandoned_flights(), 2);
        assert_eq!(flight.completed_flights(), 1);
    }

    #[test]
    fn try_get_observes_completion_without_blocking() {
        let flight: Singleflight<u64, u64> = Singleflight::new();
        let Join::Leader(token) = flight.join(5) else {
            panic!("leads")
        };
        let Join::Follower(ticket) = flight.join(5) else {
            panic!("follows")
        };
        assert!(ticket.try_get().is_none());
        token.complete(55);
        assert_eq!(ticket.try_get(), Some(FlightOutcome::Complete(55)));
    }
}
