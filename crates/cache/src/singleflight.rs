//! Singleflight request coalescing.
//!
//! When many callers miss the cache on the same key at once, computing the value
//! once and sharing it beats N identical computations. [`Singleflight::join`] elects
//! roles: the first caller for a key becomes the **leader** (receiving a
//! [`LeaderToken`]); everyone else becomes a **follower** (receiving a
//! [`FlightTicket`]). The leader computes the value and calls
//! [`LeaderToken::complete`], which publishes a clone to every parked follower and
//! retires the flight. If the leader instead drops its token — an early return, an
//! error path, a panic unwinding through it — the flight is **abandoned**: followers
//! wake with [`FlightOutcome::Abandoned`] and are expected to retry (typically
//! re-joining, so exactly one of them is promoted to the new leader). A failed
//! leader therefore fails only itself; it can never strand its followers.
//!
//! The registry holds only in-progress flights: completion or abandonment removes
//! the key, so the map's size is bounded by concurrency, not key cardinality.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

/// What a follower observes when its flight ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightOutcome<V> {
    /// The leader completed with this value.
    Complete(V),
    /// The leader dropped its token without completing (failure or panic); the
    /// follower should retry.
    Abandoned,
}

impl<V> FlightOutcome<V> {
    /// The completed value, if the flight completed.
    pub fn complete(self) -> Option<V> {
        match self {
            FlightOutcome::Complete(value) => Some(value),
            FlightOutcome::Abandoned => None,
        }
    }
}

#[derive(Debug)]
struct FlightState<V> {
    outcome: Mutex<Option<FlightOutcome<V>>>,
    done: Condvar,
}

impl<V: Clone> FlightState<V> {
    fn new() -> Self {
        Self {
            outcome: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn publish(&self, outcome: FlightOutcome<V>) {
        let mut guard = self
            .outcome
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if guard.is_none() {
            *guard = Some(outcome);
            self.done.notify_all();
        }
    }

    fn wait(&self) -> FlightOutcome<V> {
        let mut guard = self
            .outcome
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(outcome) = guard.clone() {
                return outcome;
            }
            guard = self
                .done
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// A follower's handle on an in-progress flight.
#[derive(Debug)]
pub struct FlightTicket<V> {
    state: Arc<FlightState<V>>,
}

impl<V: Clone> FlightTicket<V> {
    /// Blocks until the leader completes or abandons the flight.
    pub fn wait(self) -> FlightOutcome<V> {
        self.state.wait()
    }

    /// Returns the outcome if the flight has already ended.
    pub fn try_get(&self) -> Option<FlightOutcome<V>> {
        self.state
            .outcome
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

/// The leader's obligation: complete the flight, or abandon it by dropping.
#[derive(Debug)]
pub struct LeaderToken<'a, K: Hash + Eq + Clone, V: Clone> {
    flight: &'a Singleflight<K, V>,
    key: K,
    state: Arc<FlightState<V>>,
    completed: bool,
}

impl<K: Hash + Eq + Clone, V: Clone> LeaderToken<'_, K, V> {
    /// Publishes `value` to every follower and retires the flight.
    pub fn complete(mut self, value: V) {
        self.completed = true;
        self.flight.retire(&self.key);
        self.state.publish(FlightOutcome::Complete(value));
    }
}

impl<K: Hash + Eq + Clone, V: Clone> Drop for LeaderToken<'_, K, V> {
    fn drop(&mut self) {
        if !self.completed {
            // Leader failed (error return or panic unwind): retire the flight first
            // so retrying followers can elect a new leader, then wake them.
            self.flight.retire(&self.key);
            self.state.publish(FlightOutcome::Abandoned);
        }
    }
}

/// The role [`Singleflight::join`] assigned to a caller.
#[derive(Debug)]
pub enum Join<'a, K: Hash + Eq + Clone, V: Clone> {
    /// This caller computes the value and must [`complete`](LeaderToken::complete)
    /// (or abandon) the flight.
    Leader(LeaderToken<'a, K, V>),
    /// Another caller is already computing; wait on the ticket.
    Follower(FlightTicket<V>),
}

/// Coalesces concurrent computations of the same key. See the [module docs](self).
///
/// # Example
///
/// ```
/// use taxi_cache::{FlightOutcome, Join, Singleflight};
///
/// let flights: Singleflight<&'static str, u64> = Singleflight::new();
/// // First caller is elected leader and computes.
/// let Join::Leader(token) = flights.join("answer") else {
///     panic!("no flight in progress yet");
/// };
/// // A concurrent caller becomes a follower of the same flight.
/// let Join::Follower(ticket) = flights.join("answer") else {
///     panic!("leader already in flight");
/// };
/// token.complete(42);
/// assert_eq!(ticket.wait().complete(), Some(42));
/// assert_eq!(flights.in_flight(), 0);
/// ```
#[derive(Debug)]
pub struct Singleflight<K, V> {
    flights: Mutex<HashMap<K, Arc<FlightState<V>>>>,
}

impl<K: Hash + Eq + Clone, V: Clone> Singleflight<K, V> {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self {
            flights: Mutex::new(HashMap::new()),
        }
    }

    /// Joins the flight for `key`, electing this caller leader if none is in
    /// progress.
    pub fn join(&self, key: K) -> Join<'_, K, V> {
        let mut flights = self
            .flights
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(state) = flights.get(&key) {
            return Join::Follower(FlightTicket {
                state: Arc::clone(state),
            });
        }
        let state = Arc::new(FlightState::new());
        flights.insert(key.clone(), Arc::clone(&state));
        Join::Leader(LeaderToken {
            flight: self,
            key,
            state,
            completed: false,
        })
    }

    /// Number of in-progress flights.
    pub fn in_flight(&self) -> usize {
        self.flights
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    fn retire(&self, key: &K) {
        self.flights
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(key);
    }
}

impl<K: Hash + Eq + Clone, V: Clone> Default for Singleflight<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    #[test]
    fn leader_completion_feeds_all_followers() {
        let flight: Arc<Singleflight<u64, u64>> = Arc::new(Singleflight::new());
        let computed = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let flight = Arc::clone(&flight);
                let computed = &computed;
                scope.spawn(move || match flight.join(42) {
                    Join::Leader(token) => {
                        computed.fetch_add(1, Ordering::Relaxed);
                        // Linger so the other threads genuinely join as followers.
                        std::thread::sleep(Duration::from_millis(30));
                        token.complete(4242);
                    }
                    Join::Follower(ticket) => {
                        assert_eq!(ticket.wait(), FlightOutcome::Complete(4242));
                    }
                });
            }
        });
        assert_eq!(computed.load(Ordering::Relaxed), 1, "exactly one leader");
        assert_eq!(flight.in_flight(), 0, "completion retires the flight");
    }

    #[test]
    fn abandoned_flights_wake_followers_for_retry() {
        let flight: Arc<Singleflight<u64, u64>> = Arc::new(Singleflight::new());
        let solves = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let flight = Arc::clone(&flight);
                let solves = &solves;
                scope.spawn(move || {
                    loop {
                        match flight.join(7) {
                            Join::Leader(token) => {
                                if worker == 0 && solves.load(Ordering::Relaxed) == 0 {
                                    std::thread::sleep(Duration::from_millis(20));
                                    // First leader fails: drop without completing.
                                    drop(token);
                                    return 0;
                                }
                                solves.fetch_add(1, Ordering::Relaxed);
                                token.complete(77);
                                return 77;
                            }
                            Join::Follower(ticket) => match ticket.wait() {
                                FlightOutcome::Complete(v) => return v,
                                FlightOutcome::Abandoned => continue,
                            },
                        }
                    }
                });
            }
        });
        assert!(solves.load(Ordering::Relaxed) >= 1);
        assert_eq!(flight.in_flight(), 0);
    }

    #[test]
    fn panicking_leader_abandons_via_drop() {
        let flight: Singleflight<u64, u64> = Singleflight::new();
        let Join::Leader(token) = flight.join(1) else {
            panic!("first join leads");
        };
        let Join::Follower(ticket) = flight.join(1) else {
            panic!("second join follows");
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _token = token;
            panic!("leader died");
        }));
        assert!(result.is_err());
        assert_eq!(ticket.wait(), FlightOutcome::Abandoned);
        // The key is free again: a retry is promoted to leader.
        assert!(matches!(flight.join(1), Join::Leader(_)));
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let flight: Singleflight<u64, u64> = Singleflight::new();
        let Join::Leader(a) = flight.join(1) else {
            panic!("leads")
        };
        let Join::Leader(b) = flight.join(2) else {
            panic!("leads")
        };
        assert_eq!(flight.in_flight(), 2);
        a.complete(1);
        b.complete(2);
        assert_eq!(flight.in_flight(), 0);
    }

    #[test]
    fn try_get_observes_completion_without_blocking() {
        let flight: Singleflight<u64, u64> = Singleflight::new();
        let Join::Leader(token) = flight.join(5) else {
            panic!("leads")
        };
        let Join::Follower(ticket) = flight.join(5) else {
            panic!("follows")
        };
        assert!(ticket.try_get().is_none());
        token.complete(55);
        assert_eq!(ticket.try_get(), Some(FlightOutcome::Complete(55)));
    }
}
