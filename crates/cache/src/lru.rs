//! The sharded concurrent LRU cache.
//!
//! A [`ShardedLru`] splits its key space over N independent shards (selected by key
//! hash), each a mutex-guarded `HashMap` + intrusive recency list, so concurrent
//! workers contend only when they touch the same shard. Capacity is bounded per
//! shard both in entries and in bytes (total caps divided evenly); insertion evicts
//! from the least-recently-used end until both caps hold. An optional TTL expires
//! entries lazily at lookup time.
//!
//! The recency list is index-linked inside a slot vector (no per-entry boxing): a
//! hit relinks indices and clones the value, performing **zero heap allocation** —
//! the property the serving cache's counting-allocator test pins down.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Byte-weight of a cached value, used for the cache's byte-capacity accounting.
///
/// Implementations should return the value's approximate heap footprint; the cache
/// adds its own per-entry bookkeeping overhead on top. Weights are advisory
/// accounting, not allocator truth — consistent under-estimation simply makes the
/// byte cap admit more entries.
pub trait Weighted {
    /// Approximate heap bytes owned by this value.
    fn weight_bytes(&self) -> usize;
}

impl<T: Weighted + ?Sized> Weighted for std::sync::Arc<T> {
    fn weight_bytes(&self) -> usize {
        // Shared ownership: the Arc'd payload is counted where it is cached; clones
        // handed to callers share it.
        (**self).weight_bytes()
    }
}

/// Capacity, sharding and expiry policy of a [`ShardedLru`].
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use taxi_cache::CachePolicy;
///
/// let policy = CachePolicy::new()
///     .with_shards(4)
///     .with_max_entries(1024)
///     .with_max_bytes(8 << 20)
///     .with_ttl(Some(Duration::from_secs(300)));
/// assert_eq!(policy.shards, 4);
/// assert_eq!(policy.max_entries, 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachePolicy {
    /// Number of independent shards (rounded up to a power of two).
    pub shards: usize,
    /// Total entry capacity across all shards.
    pub max_entries: usize,
    /// Total byte capacity across all shards (entry weights + bookkeeping).
    pub max_bytes: usize,
    /// Entry time-to-live; `None` disables expiry.
    pub ttl: Option<Duration>,
}

impl CachePolicy {
    /// Defaults: 8 shards, 4096 entries, 64 MiB, no TTL.
    pub fn new() -> Self {
        Self {
            shards: 8,
            max_entries: 4096,
            max_bytes: 64 << 20,
            ttl: None,
        }
    }

    /// Sets the shard count (rounded up to a power of two; `0` clamps to 1).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1).next_power_of_two();
        self
    }

    /// Sets the total entry capacity.
    ///
    /// # Panics
    ///
    /// Panics if `max_entries` is zero.
    #[must_use]
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        assert!(max_entries > 0, "cache entry capacity must be positive");
        self.max_entries = max_entries;
        self
    }

    /// Sets the total byte capacity.
    ///
    /// # Panics
    ///
    /// Panics if `max_bytes` is zero.
    #[must_use]
    pub fn with_max_bytes(mut self, max_bytes: usize) -> Self {
        assert!(max_bytes > 0, "cache byte capacity must be positive");
        self.max_bytes = max_bytes;
        self
    }

    /// Sets (or clears) the entry TTL.
    #[must_use]
    pub fn with_ttl(mut self, ttl: Option<Duration>) -> Self {
        self.ttl = ttl;
        self
    }
}

impl Default for CachePolicy {
    fn default() -> Self {
        Self::new()
    }
}

/// Lock-free cache activity counters (all `Relaxed`; metrics, not synchronisation).
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    expirations: AtomicU64,
}

impl CacheCounters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing (including expired entries).
    pub misses: u64,
    /// Entries inserted (including replacements).
    pub insertions: u64,
    /// Entries evicted to respect the entry/byte capacity.
    pub evictions: u64,
    /// Entries dropped because their TTL had elapsed.
    pub expirations: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Accounted bytes currently cached.
    pub bytes: usize,
}

impl CacheSnapshot {
    /// Hit fraction of all lookups so far (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    weight: usize,
    inserted_at: Instant,
    prev: usize,
    next: usize,
}

/// One shard: a map from key to slot index plus an intrusive recency list over the
/// slot vector (`head` = most recent, `tail` = least recent).
#[derive(Debug)]
struct Shard<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Option<Slot<K, V>>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
}

impl<K: Hash + Eq + Clone, V: Clone + Weighted> Shard<K, V> {
    fn new(entry_capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(entry_capacity.min(1 << 16)),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }

    fn slot(&self, index: usize) -> &Slot<K, V> {
        self.slots[index].as_ref().expect("linked slot is occupied")
    }

    fn slot_mut(&mut self, index: usize) -> &mut Slot<K, V> {
        self.slots[index].as_mut().expect("linked slot is occupied")
    }

    fn unlink(&mut self, index: usize) {
        let (prev, next) = {
            let slot = self.slot(index);
            (slot.prev, slot.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slot_mut(p).next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slot_mut(n).prev = prev,
        }
    }

    fn push_front(&mut self, index: usize) {
        let old_head = self.head;
        {
            let slot = self.slot_mut(index);
            slot.prev = NIL;
            slot.next = old_head;
        }
        if old_head != NIL {
            self.slot_mut(old_head).prev = index;
        }
        self.head = index;
        if self.tail == NIL {
            self.tail = index;
        }
    }

    fn touch(&mut self, index: usize) {
        if self.head != index {
            self.unlink(index);
            self.push_front(index);
        }
    }

    /// Removes the slot at `index`, returning its value.
    fn remove_slot(&mut self, index: usize) -> V {
        self.unlink(index);
        let slot = self.slots[index].take().expect("linked slot is occupied");
        self.map.remove(&slot.key);
        self.bytes -= slot.weight;
        self.free.push(index);
        slot.value
    }

    fn evict_tail(&mut self) {
        let tail = self.tail;
        if tail != NIL {
            let _ = self.remove_slot(tail);
        }
    }
}

/// A concurrent LRU cache sharded by key hash. See the [module docs](self) and the
/// [crate example](crate).
///
/// # Example: LRU eviction under an entry bound
///
/// ```
/// use taxi_cache::{CachePolicy, ShardedLru, Weighted};
///
/// #[derive(Clone, Debug, PartialEq)]
/// struct Name(&'static str);
/// impl Weighted for Name {
///     fn weight_bytes(&self) -> usize {
///         self.0.len()
///     }
/// }
///
/// let cache: ShardedLru<u32, Name> =
///     ShardedLru::new(CachePolicy::new().with_shards(1).with_max_entries(2));
/// cache.insert(1, Name("one"));
/// cache.insert(2, Name("two"));
/// assert_eq!(cache.get(&1), Some(Name("one"))); // touches 1: now 2 is the oldest
/// cache.insert(3, Name("three"));               // evicts 2
/// assert_eq!(cache.get(&2), None);
/// assert_eq!(cache.stats().evictions, 1);
/// ```
#[derive(Debug)]
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    policy: CachePolicy,
    /// Per-shard capacity (total caps divided evenly, rounded up).
    shard_entries: usize,
    shard_bytes: usize,
    counters: CacheCounters,
}

impl<K: Hash + Eq + Clone, V: Clone + Weighted> ShardedLru<K, V> {
    /// Creates an empty cache under `policy`.
    pub fn new(policy: CachePolicy) -> Self {
        let shards = policy.shards.max(1).next_power_of_two();
        let shard_entries = policy.max_entries.div_ceil(shards).max(1);
        let shard_bytes = policy.max_bytes.div_ceil(shards).max(1);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(shard_entries)))
                .collect(),
            policy,
            shard_entries,
            shard_bytes,
            counters: CacheCounters::default(),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> &CachePolicy {
        &self.policy
    }

    fn shard_for(&self, key: &K) -> MutexGuard<'_, Shard<K, V>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        let index = (hasher.finish() as usize) & (self.shards.len() - 1);
        // Cached state is structurally valid at every point; a panicking peer must
        // not take the whole cache down with mutex poisoning.
        self.shards[index]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks `key` up, refreshing its recency on a hit. Expired entries are dropped
    /// and reported as a miss. The hit path performs no heap allocation (the value
    /// clone is the caller's — use `Arc` values for allocation-free serving).
    pub fn get(&self, key: &K) -> Option<V> {
        self.get_impl(key, true)
    }

    /// Like [`get`](Self::get), but a miss is **not** counted — for layered
    /// lookups that re-check a key whose miss was already counted upstream (e.g. a
    /// dispatch worker re-probing a request that missed at admission). Hits (and
    /// TTL expirations) are counted normally.
    pub fn probe(&self, key: &K) -> Option<V> {
        self.get_impl(key, false)
    }

    fn get_impl(&self, key: &K, count_miss: bool) -> Option<V> {
        let mut shard = self.shard_for(key);
        let Some(&index) = shard.map.get(key) else {
            if count_miss {
                CacheCounters::bump(&self.counters.misses);
            }
            return None;
        };
        if let Some(ttl) = self.policy.ttl {
            if shard.slot(index).inserted_at.elapsed() > ttl {
                let _ = shard.remove_slot(index);
                CacheCounters::bump(&self.counters.expirations);
                if count_miss {
                    CacheCounters::bump(&self.counters.misses);
                }
                return None;
            }
        }
        shard.touch(index);
        CacheCounters::bump(&self.counters.hits);
        Some(shard.slot(index).value.clone())
    }

    /// Inserts (or replaces) `key`, evicting least-recently-used entries until the
    /// shard respects both capacity bounds. Returns `false` — without inserting —
    /// if the value alone outweighs a whole shard's byte budget (such an entry
    /// would evict everything and then still violate the cap).
    pub fn insert(&self, key: K, value: V) -> bool {
        let weight = value.weight_bytes() + std::mem::size_of::<Slot<K, V>>();
        if weight > self.shard_bytes {
            return false;
        }
        let mut shard = self.shard_for(&key);
        if let Some(&index) = shard.map.get(&key) {
            // Replacement: swap the value in place and refresh recency.
            shard.bytes = shard.bytes - shard.slot(index).weight + weight;
            let slot = shard.slot_mut(index);
            slot.value = value;
            slot.weight = weight;
            slot.inserted_at = Instant::now();
            shard.touch(index);
        } else {
            let index = match shard.free.pop() {
                Some(index) => {
                    shard.slots[index] = Some(Slot {
                        key: key.clone(),
                        value,
                        weight,
                        inserted_at: Instant::now(),
                        prev: NIL,
                        next: NIL,
                    });
                    index
                }
                None => {
                    shard.slots.push(Some(Slot {
                        key: key.clone(),
                        value,
                        weight,
                        inserted_at: Instant::now(),
                        prev: NIL,
                        next: NIL,
                    }));
                    shard.slots.len() - 1
                }
            };
            shard.map.insert(key, index);
            shard.bytes += weight;
            shard.push_front(index);
        }
        while shard.map.len() > self.shard_entries || shard.bytes > self.shard_bytes {
            shard.evict_tail();
            CacheCounters::bump(&self.counters.evictions);
        }
        CacheCounters::bump(&self.counters.insertions);
        true
    }

    /// Removes `key`, returning its value if it was cached.
    pub fn remove(&self, key: &K) -> Option<V> {
        let mut shard = self.shard_for(key);
        let index = *shard.map.get(key)?;
        Some(shard.remove_slot(index))
    }

    /// Number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .map
                    .len()
            })
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accounted bytes across all shards.
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .bytes
            })
            .sum()
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            shard.map.clear();
            shard.slots.clear();
            shard.free.clear();
            shard.head = NIL;
            shard.tail = NIL;
            shard.bytes = 0;
        }
    }

    /// Visits every live entry, **oldest-first** within each shard (shard order is
    /// the internal hash layout and carries no meaning). Entries past their TTL
    /// are skipped. Recency is not refreshed and no counter moves; each shard's
    /// lock is held for the duration of that shard's walk, so keep `f` cheap.
    ///
    /// Oldest-first order is what a snapshotter wants: re-inserting entries in
    /// visit order reproduces the same relative recency ranking, so a restored
    /// cache evicts in the same order the original would have.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for shard in &self.shards {
            let shard = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let mut index = shard.tail;
            while index != NIL {
                let slot = shard.slot(index);
                let live = self
                    .policy
                    .ttl
                    .map_or(true, |ttl| slot.inserted_at.elapsed() <= ttl);
                if live {
                    f(&slot.key, &slot.value);
                }
                index = slot.prev;
            }
        }
    }

    /// Current statistics (counters plus occupancy).
    pub fn stats(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            insertions: self.counters.insertions.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            expirations: self.counters.expirations.load(Ordering::Relaxed),
            entries: self.len(),
            bytes: self.bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Blob(Vec<u8>);

    impl Weighted for Blob {
        fn weight_bytes(&self) -> usize {
            self.0.len()
        }
    }

    fn blob(n: usize, fill: u8) -> Blob {
        Blob(vec![fill; n])
    }

    fn single_shard(max_entries: usize) -> ShardedLru<u64, Blob> {
        ShardedLru::new(
            CachePolicy::new()
                .with_shards(1)
                .with_max_entries(max_entries),
        )
    }

    #[test]
    fn get_insert_round_trip_and_counters() {
        let cache = single_shard(8);
        assert!(cache.get(&1).is_none());
        assert!(cache.insert(1, blob(10, 0xAA)));
        assert_eq!(cache.get(&1), Some(blob(10, 0xAA)));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 10);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn entry_capacity_evicts_least_recently_used() {
        let cache = single_shard(3);
        for key in 0..3u64 {
            cache.insert(key, blob(4, key as u8));
        }
        // Touch 0 so 1 becomes the LRU victim.
        assert!(cache.get(&0).is_some());
        cache.insert(3, blob(4, 3));
        assert!(cache.get(&1).is_none(), "LRU entry was evicted");
        assert!(cache.get(&0).is_some());
        assert!(cache.get(&2).is_some());
        assert!(cache.get(&3).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn byte_capacity_evicts_and_oversized_values_are_refused() {
        let overhead = std::mem::size_of::<Slot<u64, Blob>>();
        let cache: ShardedLru<u64, Blob> = ShardedLru::new(
            CachePolicy::new()
                .with_shards(1)
                .with_max_entries(100)
                .with_max_bytes(3 * (100 + overhead)),
        );
        for key in 0..3u64 {
            assert!(cache.insert(key, blob(100, key as u8)));
        }
        assert_eq!(cache.len(), 3);
        // A fourth entry busts the byte budget: the oldest goes.
        assert!(cache.insert(3, blob(100, 3)));
        assert_eq!(cache.len(), 3);
        assert!(cache.get(&0).is_none());
        // A value heavier than the whole shard budget is refused outright.
        assert!(!cache.insert(9, blob(10_000, 9)));
        assert!(cache.get(&9).is_none());
    }

    #[test]
    fn replacement_updates_value_weight_and_recency() {
        let cache = single_shard(2);
        cache.insert(1, blob(10, 1));
        cache.insert(2, blob(10, 2));
        let bytes_before = cache.bytes();
        cache.insert(1, blob(20, 11));
        assert_eq!(cache.bytes(), bytes_before + 10);
        assert_eq!(cache.get(&1), Some(blob(20, 11)));
        // 1 was refreshed by the replacement, so 2 is now the LRU victim.
        cache.insert(3, blob(10, 3));
        assert!(cache.get(&2).is_none());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn ttl_expires_entries_lazily() {
        let cache: ShardedLru<u64, Blob> = ShardedLru::new(
            CachePolicy::new()
                .with_shards(1)
                .with_ttl(Some(Duration::from_millis(20))),
        );
        cache.insert(1, blob(4, 1));
        assert!(cache.get(&1).is_some());
        std::thread::sleep(Duration::from_millis(40));
        assert!(cache.get(&1).is_none(), "expired entry reads as a miss");
        let stats = cache.stats();
        assert_eq!(stats.expirations, 1);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn remove_and_clear() {
        let cache = single_shard(8);
        cache.insert(1, blob(4, 1));
        cache.insert(2, blob(4, 2));
        assert_eq!(cache.remove(&1), Some(blob(4, 1)));
        assert!(cache.remove(&1).is_none());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
        // Counters survive a clear.
        assert_eq!(cache.stats().insertions, 2);
    }

    #[test]
    fn shards_operate_independently_under_concurrency() {
        let cache: std::sync::Arc<ShardedLru<u64, Blob>> = std::sync::Arc::new(ShardedLru::new(
            CachePolicy::new().with_shards(8).with_max_entries(4096),
        ));
        std::thread::scope(|scope| {
            for worker in 0..8u64 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let key = worker * 1000 + i;
                        cache.insert(key, blob(8, worker as u8));
                        assert_eq!(cache.get(&key), Some(blob(8, worker as u8)));
                    }
                });
            }
        });
        assert_eq!(cache.stats().hits, 8 * 200);
        assert_eq!(cache.len(), 8 * 200);
    }

    #[test]
    fn probe_counts_hits_but_not_misses() {
        let cache = single_shard(8);
        assert!(cache.probe(&1).is_none());
        cache.insert(1, blob(4, 1));
        assert_eq!(cache.probe(&1), Some(blob(4, 1)));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1, "probe hits count");
        assert_eq!(stats.misses, 0, "probe misses do not");
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(CachePolicy::new().with_shards(0).shards, 1);
        assert_eq!(CachePolicy::new().with_shards(3).shards, 4);
        assert_eq!(CachePolicy::new().with_shards(16).shards, 16);
    }

    #[test]
    fn for_each_walks_oldest_first_and_skips_expired() {
        let cache = single_shard(8);
        for key in 0..4u64 {
            cache.insert(key, blob(4, key as u8));
        }
        // Touch 0: recency becomes 1 (oldest), 2, 3, 0 (newest).
        assert!(cache.get(&0).is_some());
        let mut seen = Vec::new();
        cache.for_each(|&k, _| seen.push(k));
        assert_eq!(seen, vec![1, 2, 3, 0]);

        let expiring: ShardedLru<u64, Blob> = ShardedLru::new(
            CachePolicy::new()
                .with_shards(1)
                .with_ttl(Some(Duration::from_millis(10))),
        );
        expiring.insert(1, blob(4, 1));
        std::thread::sleep(Duration::from_millis(30));
        let mut count = 0;
        expiring.for_each(|_, _| count += 1);
        assert_eq!(count, 0, "expired entries are not visited");
    }

    #[test]
    fn slot_indices_are_recycled() {
        let cache = single_shard(2);
        for round in 0..50u64 {
            cache.insert(round, blob(4, round as u8));
        }
        // Only 2 live entries; the slot vector must not have grown per insertion.
        let shard = cache.shards[0]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        assert!(
            shard.slots.len() <= 3,
            "slots grew to {}",
            shard.slots.len()
        );
    }
}
