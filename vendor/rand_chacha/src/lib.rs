//! Offline [`ChaCha8Rng`] built on the vendored `rand` traits.
//!
//! Implements the genuine ChaCha stream-cipher core (RFC 8439 quarter-round, 8 rounds)
//! as a deterministic RNG. Seeding and word-stream layout follow the upstream crate's
//! shape, but bit-exact parity with upstream `rand_chacha` is not guaranteed; workspace
//! determinism relies only on (seed → stream) being a pure function.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha random number generator with 8 rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Cipher input state: constants, 8 key words, block counter, 3 nonce words.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word within `block` (16 = exhausted).
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Block counter and nonce start at zero.
        Self {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_helpers_work_through_the_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.gen_range(0..4usize)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "counts {counts:?}");
        let mean: f64 = (0..1000).map(|_| rng.gen::<f64>()).sum::<f64>() / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn matches_the_chacha_permutation_structure() {
        // The first block must differ from the raw state (the permutation did work) and
        // two consecutive blocks must differ (the counter advanced).
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
