//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build container has no registry access, so the workspace vendors the exact API
//! surface it consumes: [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng`] (including the SplitMix64-based `seed_from_u64` default), and
//! [`seq::SliceRandom::choose`]. Algorithms follow the upstream documentation closely
//! enough for statistical use, but bit-exact equivalence with upstream `rand` is *not*
//! guaranteed — all determinism in this workspace is anchored to seeds passing through
//! this crate, never to upstream golden values.

/// The core of a random number generator: uniformly distributed raw words.
pub trait RngCore {
    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled from the "standard" distribution (`Rng::gen`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1), matching upstream's convention.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
              usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
              i64 => next_u64, isize => next_u64);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let value = (rng.next_u64() as u128) % span;
                (self.start as i128 + value as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let value = (rng.next_u64() as u128) % span;
                (start as i128 + value as i128) as $t
            }
        }
    )*};
}
uniform_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
uniform_float_range!(f32, f64);

/// User-facing random value generation, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (uniform over the type's natural
    /// domain; `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = StandardSample::standard_sample(self);
        unit < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 as upstream
    /// `rand_core` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea & Flood): fast, well-distributed seed expansion.
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Sequence-related random operations (subset: [`SliceRandom::choose`]).

    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Returns a uniformly random element, or `None` for an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[idx])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A weak generator is fine for API tests.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_edge_cases() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!((0..64).any(|_| rng.gen_bool(0.9)));
    }

    #[test]
    fn choose_and_shuffle_cover_the_slice() {
        use seq::SliceRandom;
        let mut rng = Counter(3);
        let items = [1, 2, 3, 4];
        assert!(items.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut perm: Vec<usize> = (0..20).collect();
        perm.shuffle(&mut rng);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
