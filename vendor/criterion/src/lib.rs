//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build container has no registry access, so the workspace vendors the surface its
//! benches consume: [`Criterion`], [`BenchmarkGroup`] (`sample_size`,
//! `measurement_time`, `bench_function`, `bench_with_input`, `finish`), [`Bencher::iter`],
//! [`BenchmarkId`], [`black_box`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Instead of upstream's statistical analysis it times a bounded number of
//! iterations with `std::time::Instant` and prints mean wall-clock time per iteration.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: a function name plus an optional
/// parameter rendered into the printed label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id like `"name/parameter"`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Drives the timed closure of one benchmark.
pub struct Bencher {
    iterations: u64,
    /// Mean wall-clock time per iteration measured by the last `iter` call.
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via [`black_box`] so the optimiser
    /// cannot delete the measured work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then the measured loop.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.last_mean = Some(start.elapsed() / self.iterations as u32);
    }
}

/// Top-level benchmark harness handle.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(BenchmarkId::from(name.as_str()), f);
        group.finish();
        self
    }
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            iterations: self.sample_size as u64,
            last_mean: None,
        };
        let start = Instant::now();
        f(&mut bencher);
        let mean = bencher.last_mean.unwrap_or_else(|| start.elapsed());
        println!(
            "bench {}/{}: {:>12.3?} per iter ({} iters)",
            self.name, id.label, mean, self.sample_size
        );
        self
    }

    /// Runs one benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group (prints nothing; provided for API parity).
    pub fn finish(self) {}
}

/// Declares a set of benchmark functions runnable via [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Generates the `main` function running every [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_closures() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut group = c.benchmark_group("g");
            group
                .sample_size(3)
                .measurement_time(Duration::from_millis(1));
            group.bench_function(BenchmarkId::new("f", 1), |b| {
                b.iter(|| ran += 1);
            });
            group.bench_with_input(BenchmarkId::new("g", 2), &5, |b, &x| {
                b.iter(|| black_box(x * 2));
            });
            group.finish();
        }
        // warm-up + sample_size iterations.
        assert_eq!(ran, 4);
    }

    #[test]
    fn bench_function_works_at_top_level() {
        let mut c = Criterion::default();
        c.bench_function("top", |b| b.iter(|| black_box(1 + 1)));
    }
}
