//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build container has no registry access, so the workspace vendors the surface its
//! property tests consume: the [`proptest!`] macro, `prop_assert*` / `prop_assume`
//! macros, [`strategy::Strategy`] with `prop_map` / `prop_flat_map` / `prop_shuffle`,
//! range and tuple strategies, [`strategy::Just`], [`collection::vec`], [`bool::ANY`]
//! and [`test_runner::ProptestConfig`].
//!
//! Semantics: each test case draws fresh values from a deterministically seeded ChaCha8
//! stream (seed derived from the test name, overridable via `PROPTEST_RNG_SEED`), runs
//! the body, and panics with the recorded assertion message on failure. Unlike upstream
//! there is **no shrinking** — the failing input is printed as-is via the panic message.

pub mod strategy;
pub mod test_runner;

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool_half()
        }
    }
}

pub mod collection {
    //! Collection strategies (subset: [`vec`]).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: an exact count or a half-open/inclusive range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy producing vectors of `element` samples.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_usize_inclusive(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import for property tests, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! Module-path alias (`prop::collection::vec`, `prop::bool::ANY`, ...).
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not panicking
/// directly) so the runner can attach the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)*);
    }};
}

/// Discards the current case (counted against the rejection budget) when the generated
/// inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }` becomes a
/// `#[test]` that samples the strategies for every case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)
     $($(#[$attr:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$attr])*
            #[test]
            fn $name() {
                let config = $config;
                $crate::test_runner::run_cases(&config, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), __rng);)+
                    let __case = move || -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}
