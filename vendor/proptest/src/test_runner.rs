//! Deterministic case runner (subset of `proptest::test_runner`).

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Per-test configuration (subset: number of cases).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of rejected (`prop_assume`) cases tolerated before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed; the test fails with this message.
    Fail(String),
    /// A `prop_assume` precondition was unmet; the case is discarded.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// The RNG handed to strategies: a seeded ChaCha8 stream plus convenience samplers.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: ChaCha8Rng,
}

macro_rules! inclusive_sampler {
    ($($name:ident => $t:ty),*) => {$(
        /// Uniform draw from `lo..=hi`.
        pub fn $name(&mut self, lo: $t, hi: $t) -> $t {
            assert!(lo <= hi, "empty inclusive range");
            let span = (hi as i128 - lo as i128) as u128 + 1;
            let draw = (self.inner.next_u64() as u128) % span;
            (lo as i128 + draw as i128) as $t
        }
    )*};
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        Self {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    inclusive_sampler!(
        gen_usize_inclusive => usize,
        gen_u8_inclusive => u8,
        gen_u16_inclusive => u16,
        gen_u32_inclusive => u32,
        gen_u64_inclusive => u64,
        gen_i32_inclusive => i32,
        gen_i64_inclusive => i64
    );

    /// Uniform draw from `[0, 1)`.
    pub fn gen_unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Fair coin flip.
    pub fn gen_bool_half(&mut self) -> bool {
        self.inner.gen::<bool>()
    }
}

fn base_seed(test_name: &str) -> u64 {
    if let Some(seed) = std::env::var("PROPTEST_RNG_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        return seed;
    }
    // FNV-1a over the test name: stable across runs and platforms.
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x1000_0000_01B3);
    }
    hash
}

/// Runs `case` until `config.cases` successes, a failure, or the rejection budget is
/// exhausted. Panics (failing the enclosing `#[test]`) on the first failing case.
pub fn run_cases(
    config: &ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let seed = base_seed(test_name);
    let mut successes = 0u32;
    let mut rejects = 0u32;
    let mut index = 0u64;
    while successes < config.cases {
        let mut rng = TestRng::from_seed(seed.wrapping_add(index.wrapping_mul(0x9E37_79B9)));
        match case(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "{test_name}: too many prop_assume rejections \
                         ({rejects} rejects for {successes} successes)"
                    );
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "{test_name}: property failed at case #{index} \
                     (base seed {seed}): {message}"
                );
            }
        }
        index += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn runner_reaches_the_requested_case_count() {
        let mut seen = 0;
        run_cases(&ProptestConfig::with_cases(10), "counting", |_| {
            seen += 1;
            Ok(())
        });
        assert_eq!(seen, 10);
    }

    #[test]
    fn rejects_do_not_count_as_successes() {
        let mut calls = 0u32;
        run_cases(&ProptestConfig::with_cases(5), "rejecting", |rng| {
            calls += 1;
            if rng.gen_bool_half() {
                Err(TestCaseError::Reject)
            } else {
                Ok(())
            }
        });
        assert!(calls >= 5);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_the_message() {
        run_cases(&ProptestConfig::with_cases(5), "failing", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn strategies_sample_within_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..200 {
            let v = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-1.0f64..1.0).sample(&mut rng);
            assert!((-1.0..1.0).contains(&f));
            let (a, b) = ((0u64..4), (0.0f64..2.0)).sample(&mut rng);
            assert!(a < 4 && (0.0..2.0).contains(&b));
        }
    }

    #[test]
    fn shuffle_preserves_elements() {
        use crate::strategy::Just;
        let strat = Just((0..30usize).collect::<Vec<_>>()).prop_shuffle();
        let mut rng = TestRng::from_seed(11);
        let mut perm = strat.sample(&mut rng);
        perm.sort_unstable();
        assert_eq!(perm, (0..30).collect::<Vec<_>>());
    }
}
