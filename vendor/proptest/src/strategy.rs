//! Value-generation strategies (subset of `proptest::strategy`).

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream there is no shrinking: a strategy is just a pure sampling function
/// over the deterministic [`TestRng`] stream.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Randomly permutes generated collections (Fisher–Yates).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Collections that [`Strategy::prop_shuffle`] can permute.
pub trait Shuffleable {
    /// Permutes `self` in place using `rng`.
    fn shuffle(&mut self, rng: &mut TestRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut TestRng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_usize_inclusive(0, i);
            self.swap(i, j);
        }
    }
}

/// Output of [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<S> {
    inner: S,
}

impl<S> Strategy for Shuffle<S>
where
    S: Strategy,
    S::Value: Shuffleable,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let mut value = self.inner.sample(rng);
        value.shuffle(rng);
        value
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $m:ident),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.$m(self.start, self.end - 1)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.$m(*self.start(), *self.end())
            }
        }
    )*};
}
int_range_strategy!(
    usize => gen_usize_inclusive,
    u8 => gen_u8_inclusive,
    u16 => gen_u16_inclusive,
    u32 => gen_u32_inclusive,
    u64 => gen_u64_inclusive,
    i32 => gen_i32_inclusive,
    i64 => gen_i64_inclusive
);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.gen_unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        *self.start() + rng.gen_unit_f64() * (*self.end() - *self.start())
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.gen_unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}
