//! Domain scenario: last-mile delivery routing.
//!
//! The paper's introduction motivates TSP acceleration with logistics. This example
//! builds a delivery scenario — a metropolitan area with several dense neighbourhoods and
//! a sparse rural fringe — and compares TAXI against the classical heuristics a dispatch
//! system would otherwise use, including the effect of the maximum cluster size on route
//! quality and hardware latency.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example logistics_routing
//! ```

use taxi::{TaxiConfig, TaxiError, TaxiSolver};
use taxi_tsplib::{EdgeWeightKind, TspInstance};

/// Builds a delivery-stop layout: dense neighbourhood blobs plus scattered rural stops.
fn build_delivery_instance(stops: usize, seed: u64) -> TspInstance {
    use rand::Rng;
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let neighbourhoods = [
        (10.0, 10.0, 3.0),
        (40.0, 15.0, 4.0),
        (25.0, 45.0, 5.0),
        (60.0, 50.0, 3.5),
        (75.0, 20.0, 2.5),
    ];
    let mut coords = Vec::with_capacity(stops);
    for i in 0..stops {
        if i % 10 == 9 {
            // Rural stop anywhere in the service area.
            coords.push((rng.gen::<f64>() * 90.0, rng.gen::<f64>() * 70.0));
        } else {
            let (cx, cy, spread) = neighbourhoods[i % neighbourhoods.len()];
            coords.push((
                cx + (rng.gen::<f64>() - 0.5) * 2.0 * spread,
                cy + (rng.gen::<f64>() - 0.5) * 2.0 * spread,
            ));
        }
    }
    TspInstance::from_coordinates("last-mile-delivery", coords, EdgeWeightKind::Euclidean)
        .expect("generated coordinates are valid")
}

fn main() -> Result<(), TaxiError> {
    let instance = build_delivery_instance(350, 2024);
    println!(
        "last-mile delivery scenario: {} stops across 5 neighbourhoods + rural fringe\n",
        instance.dimension()
    );

    // Classical dispatch heuristics.
    let matrix = instance.full_distance_matrix();
    let nn = taxi_baselines::nearest_neighbor_tour(&matrix, 0);
    let nn_length = taxi_baselines::tour_length(&matrix, &nn);
    let mut improved = nn.clone();
    taxi_baselines::two_opt(&matrix, &mut improved, 8);
    let two_opt_length = taxi_baselines::tour_length(&matrix, &improved);
    println!("nearest-neighbour route : {nn_length:>10.1} km");
    println!("NN + 2-opt route        : {two_opt_length:>10.1} km");
    println!();

    // TAXI at several maximum cluster sizes (vehicle capacity of the Ising macro).
    println!("TAXI (hierarchically clustered Ising macros):");
    println!(
        "{:>12} {:>12} {:>14} {:>14}",
        "cluster", "route km", "hw latency µs", "energy µJ"
    );
    for cluster_size in [8usize, 12, 16, 20] {
        let config = TaxiConfig::new()
            .with_max_cluster_size(cluster_size)?
            .with_seed(7);
        let solution = TaxiSolver::new(config).solve(&instance)?;
        let hardware_latency = solution.latency.ising_seconds
            + solution.latency.transfer_seconds
            + solution.latency.mapping_seconds;
        println!(
            "{:>12} {:>12.1} {:>14.2} {:>14.3}",
            cluster_size,
            solution.length,
            hardware_latency * 1e6,
            solution.energy.total_joules() * 1e6
        );
    }
    println!();
    println!("Smaller clusters give more parallel sub-problems (better hardware utilisation);");
    println!("route quality stays close to the dispatcher's NN + 2-opt reference.");
    Ok(())
}
