//! Warm-restart durability harness: quantifies what snapshot/restore buys a
//! restarted service on repeat-heavy traffic, emitting `BENCH_restart.json`.
//!
//! Four arms over the same popular-routes replay workload:
//!
//! * **Pre-restart** — the first service generation warms its cache, then the
//!   replay phase measures its steady-state hit rate. At shutdown the
//!   generation writes its durability snapshot.
//! * **Snapshot restart** — a fresh generation restores that snapshot on start
//!   and replays the same traffic. The acceptance bar for this artifact is a
//!   hit rate **≥ 90% of the pre-restart rate**, with every served tour
//!   bit-identical to what the dead generation computed.
//! * **Cold restart** — the contrast arm: a fresh generation with no snapshot
//!   re-pays every route's cold miss.
//! * **Corrupted snapshot** — a fresh generation pointed at a bit-flipped
//!   snapshot file: the restore is rejected (counted, typed), the service
//!   falls back to a cold start, and every answer is still correct — a bad
//!   snapshot costs warmth, never correctness.
//!
//! Run with `cargo run --release --example restart_bench`; set
//! `TAXI_RESTART_SMOKE=1` (CI) for a fast smoke-scale run.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use taxi::{SolutionCache, SolverBackend, TaxiConfig};
use taxi_bench::json::JsonObject;
use taxi_dispatch::{
    shard_snapshot_path, DispatchConfig, DispatchRequest, DispatchService, ServiceSnapshot,
    SnapshotPolicy, Ticket,
};
use taxi_tsplib::generator::random_uniform_instance;
use taxi_tsplib::TspInstance;

struct Scale {
    smoke: bool,
    workers: usize,
    routes: usize,
    replays: usize,
    size: usize,
}

impl Scale {
    fn detect() -> Self {
        let smoke = std::env::var("TAXI_RESTART_SMOKE").is_ok_and(|v| v != "0");
        if smoke {
            Self {
                smoke,
                workers: 2,
                routes: 12,
                replays: 3,
                size: 32,
            }
        } else {
            Self {
                smoke,
                workers: 4,
                routes: 32,
                replays: 6,
                size: 48,
            }
        }
    }
}

fn routes(scale: &Scale) -> Vec<TspInstance> {
    (0..scale.routes)
        .map(|r| random_uniform_instance(&format!("route{r}"), scale.size, 7_000 + r as u64))
        .collect()
}

fn service(scale: &Scale, snapshot: Option<SnapshotPolicy>) -> DispatchService {
    let mut config = DispatchConfig::new()
        .with_solver(
            TaxiConfig::new()
                .with_seed(29)
                .with_backend(SolverBackend::NnTwoOpt),
        )
        .with_workers(scale.workers)
        .with_queue_capacity(scale.routes.max(8))
        .with_cache(Arc::new(SolutionCache::with_defaults()));
    if let Some(policy) = snapshot {
        config = config.with_snapshot_policy(policy);
    }
    DispatchService::start(config)
}

/// Submits every route `replays` times (waiting each round so hits can land
/// behind the solve that seeds them) and returns the recorded tour lengths,
/// bit-exact, in route order from the **last** round.
fn replay(service: &DispatchService, routes: &[TspInstance], replays: usize) -> Vec<u64> {
    let mut lengths = vec![0u64; routes.len()];
    for _ in 0..replays {
        let tickets: Vec<Ticket> = routes
            .iter()
            .map(|route| {
                service
                    .submit(DispatchRequest::new(route.clone()))
                    .expect("admitted")
            })
            .collect();
        for (index, ticket) in tickets.into_iter().enumerate() {
            let response = ticket.wait().solved().expect("solved");
            lengths[index] = response.solution.length.to_bits();
        }
    }
    lengths
}

/// Hit rate over the delta between two cumulative snapshots.
fn hit_rate_between(before: &ServiceSnapshot, after: &ServiceSnapshot) -> f64 {
    let hits = after.cache_hits - before.cache_hits;
    let completed = after.completed - before.completed;
    if completed == 0 {
        0.0
    } else {
        hits as f64 / completed as f64
    }
}

struct Arm {
    hit_rate: f64,
    snapshot: ServiceSnapshot,
    lengths: Vec<u64>,
}

/// Starts a fresh generation under `policy`, replays the measurement workload
/// and returns its steady hit rate (no warmup round: warmth, if any, must come
/// from the restored snapshot).
fn restart_arm(scale: &Scale, routes: &[TspInstance], policy: Option<SnapshotPolicy>) -> Arm {
    let service = service(scale, policy);
    let before = service.snapshot();
    let lengths = replay(&service, routes, scale.replays);
    let after = service.snapshot();
    let hit_rate = hit_rate_between(&before, &after);
    Arm {
        hit_rate,
        snapshot: service.shutdown(),
        lengths,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("taxi-restart-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    dir
}

/// Copies the generation-1 snapshot into its own directory and flips one
/// payload byte — a realistic torn/corrupted file.
fn corrupted_copy(source: &Path, tag: &str) -> PathBuf {
    let dir = temp_dir(tag);
    let mut bytes = std::fs::read(source).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(shard_snapshot_path(&dir, 0), bytes).expect("write corrupted snapshot");
    dir
}

fn main() {
    let scale = Scale::detect();
    println!(
        "warm-restart harness ({} scale: {} routes x {} replays, {} workers)",
        if scale.smoke { "smoke" } else { "full" },
        scale.routes,
        scale.replays,
        scale.workers,
    );
    let routes = routes(&scale);
    let dir = temp_dir("gen1");
    // Interval zero: no periodic writes — durability rides on the final
    // snapshot the retiring generation writes at shutdown.
    let policy = SnapshotPolicy::new(&dir).with_interval(Duration::ZERO);

    // Generation 1: warm (one round of cold misses), then measure.
    let gen1 = service(&scale, Some(policy.clone()));
    let warm_lengths = replay(&gen1, &routes, 1);
    let before = gen1.snapshot();
    let measured = replay(&gen1, &routes, scale.replays);
    let after = gen1.snapshot();
    assert_eq!(measured, warm_lengths, "steady state is deterministic");
    let pre_rate = hit_rate_between(&before, &after);
    let gen1_snapshot = gen1.shutdown();
    assert!(
        gen1_snapshot.snapshots_written >= 1,
        "the retiring generation persisted its state"
    );
    println!("  pre-restart: hit rate {:.1}%", pre_rate * 100.0);

    // Snapshot-restart arm: restore generation 1's state, replay.
    let snap = restart_arm(&scale, &routes, Some(policy.clone()));
    assert!(
        snap.snapshot.snapshots_restored >= 1,
        "the fresh generation restored the snapshot"
    );
    assert_eq!(
        snap.lengths, warm_lengths,
        "restored tours are bit-identical to the dead generation's"
    );
    println!(
        "  snapshot restart: hit rate {:.1}% (restored {} snapshot)",
        snap.hit_rate * 100.0,
        snap.snapshot.snapshots_restored,
    );

    // Cold-restart contrast arm: same traffic, no snapshot.
    let cold = restart_arm(&scale, &routes, None);
    println!("  cold restart: hit rate {:.1}%", cold.hit_rate * 100.0);

    // Corrupted-snapshot arm: restore rejected, cold start, still correct.
    let corrupt_dir = corrupted_copy(&shard_snapshot_path(&dir, 0), "corrupt");
    let corrupt = restart_arm(
        &scale,
        &routes,
        Some(SnapshotPolicy::new(&corrupt_dir).with_interval(Duration::ZERO)),
    );
    assert!(
        corrupt.snapshot.snapshots_rejected >= 1,
        "the corrupted snapshot was rejected, not trusted"
    );
    assert_eq!(
        corrupt.lengths, warm_lengths,
        "a rejected snapshot still yields correct (cold-computed) answers"
    );
    println!(
        "  corrupted snapshot: rejected {}, hit rate {:.1}% (cold fallback)",
        corrupt.snapshot.snapshots_rejected,
        corrupt.hit_rate * 100.0,
    );

    // The acceptance gate: restoring the snapshot preserves ≥ 90% of the
    // pre-restart hit rate, and beats the cold arm.
    assert!(
        snap.hit_rate >= 0.9 * pre_rate,
        "snapshot-restart hit rate {:.3} must be >= 90% of pre-restart {:.3}",
        snap.hit_rate,
        pre_rate,
    );
    assert!(
        snap.hit_rate > cold.hit_rate,
        "warm restart ({:.3}) must beat cold restart ({:.3})",
        snap.hit_rate,
        cold.hit_rate,
    );

    let arm_json = |arm: &Arm| {
        JsonObject::new()
            .num("hit_rate", arm.hit_rate, 4)
            .uint("completed", arm.snapshot.completed)
            .uint("cache_hits", arm.snapshot.cache_hits)
            .uint("snapshots_restored", arm.snapshot.snapshots_restored)
            .uint("snapshots_rejected", arm.snapshot.snapshots_rejected)
            .raw("snapshot", &arm.snapshot.to_json())
    };
    let artifact = JsonObject::new()
        .str("bench", "restart")
        .bool("smoke", scale.smoke)
        .uint("routes", scale.routes as u64)
        .uint("replays", scale.replays as u64)
        .uint("workers", scale.workers as u64)
        .object(
            "pre_restart",
            JsonObject::new()
                .num("hit_rate", pre_rate, 4)
                .uint("snapshots_written", gen1_snapshot.snapshots_written)
                .raw("snapshot", &gen1_snapshot.to_json()),
        )
        .object("snapshot_restart", arm_json(&snap))
        .object("cold_restart", arm_json(&cold))
        .object("corrupted_snapshot", arm_json(&corrupt))
        .num(
            "warm_over_pre_ratio",
            snap.hit_rate / pre_rate.max(f64::EPSILON),
            4,
        )
        .bool("gate_90_percent", snap.hit_rate >= 0.9 * pre_rate);
    let path = taxi_bench::artifact_path("BENCH_restart.json");
    std::fs::write(&path, artifact.render()).expect("write BENCH_restart.json");
    println!("wrote {}", path.display());

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&corrupt_dir);
}
