//! Dispatch load harness: closed- and open-loop load against the `DispatchService`,
//! emitting `BENCH_dispatch.json` (consumed as a CI artifact).
//!
//! Two experiments:
//!
//! * **Closed loop (saturation)** — a fixed pool of client threads each keeps exactly
//!   one request in flight against a blocking-admission service, comparing
//!   micro-batching (`max_batch = 16`, short linger) against the batch-size-1
//!   baseline. At saturation every request pays the dispatch machinery (queue lock,
//!   producer wake-ups, clock reads) — micro-batching amortises that per batch instead
//!   of per request, so its achieved throughput is higher. Requests are deliberately
//!   tiny (cheap backend, small instances) so the dispatch path, not the solve,
//!   dominates — this isolates exactly the effect the batching rule exists for.
//! * **Open loop (offered vs achieved)** — Poisson arrivals replayed in real time at
//!   0.5×, 0.9× and 1.5× of the measured saturation capacity, once per admission
//!   policy (reject / shed-oldest / block), recording achieved throughput, latency
//!   percentiles, and loss (shed/rejected) — the classic saturation curves, per
//!   policy.
//!
//! Run with `cargo run --release --example dispatch_bench`; set
//! `TAXI_DISPATCH_SMOKE=1` (CI) for a fast smoke-scale run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use taxi::{SolverBackend, TaxiConfig};
use taxi_bench::json::{JsonArray, JsonObject};
use taxi_dispatch::{
    AdmissionPolicy, BatchPolicy, DispatchConfig, DispatchRequest, DispatchService, Scenario,
    ServiceSnapshot, Workload, WorkloadConfig,
};
use taxi_tsplib::TspInstance;

struct Scale {
    smoke: bool,
    clients: usize,
    workers: usize,
    closed_duration: Duration,
    open_requests_cap: usize,
}

impl Scale {
    fn detect() -> Self {
        let smoke = std::env::var("TAXI_DISPATCH_SMOKE").is_ok_and(|v| v != "0");
        // The client pool must be deep relative to `workers × max_batch`: a 16-wide
        // batch drain from a shallow queue hands the whole queue to one worker and
        // starves the rest, which is a scheduling mistake, not a batching win/loss.
        if smoke {
            Self {
                smoke,
                clients: 32,
                workers: 2,
                closed_duration: Duration::from_millis(500),
                open_requests_cap: 400,
            }
        } else {
            Self {
                smoke,
                clients: 96,
                workers: 4,
                closed_duration: Duration::from_secs(2),
                open_requests_cap: 20_000,
            }
        }
    }
}

/// Cheap, dispatch-dominated request pool: small uniform instances under the software
/// heuristic backend.
fn request_pool() -> Vec<TspInstance> {
    (0..32)
        .map(|i| {
            taxi_tsplib::generator::random_uniform_instance(&format!("load-{i}"), 12, 9000 + i)
        })
        .collect()
}

fn service_solver() -> TaxiConfig {
    TaxiConfig::new()
        .with_seed(17)
        .with_backend(SolverBackend::NnTwoOpt)
}

struct ClosedArm {
    max_batch: usize,
    throughput_per_sec: f64,
    mean_batch_size: f64,
    p50: Duration,
    p99: Duration,
}

/// Closed-loop saturation: `clients` threads, one request in flight each, for
/// `duration`. Returns achieved throughput and the final snapshot.
fn closed_loop(scale: &Scale, max_batch: usize) -> ClosedArm {
    // The queue is half as deep as the client pool, so admission exercises real
    // backpressure: some producers are always parked on the space condvar, and each
    // drain pays the wake-up. Batch-size-1 pays it per request; micro-batching pays
    // it per batch.
    let service = DispatchService::start(
        DispatchConfig::new()
            .with_solver(service_solver())
            .with_workers(scale.workers)
            .with_queue_capacity((scale.clients / 2).max(4))
            .with_admission(AdmissionPolicy::Block)
            .with_batch(
                BatchPolicy::new()
                    .with_max_batch(max_batch)
                    .with_linger(Duration::from_micros(200)),
            ),
    );
    let pool = Arc::new(request_pool());
    let completed = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..scale.clients {
            let service = &service;
            let pool = Arc::clone(&pool);
            let completed = &completed;
            let deadline = started + scale.closed_duration;
            scope.spawn(move || {
                let mut i = client;
                while Instant::now() < deadline {
                    let instance = pool[i % pool.len()].clone();
                    i += 1;
                    let Ok(ticket) = service.submit(DispatchRequest::new(instance)) else {
                        break;
                    };
                    if ticket.wait().solved().is_some() {
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();
    let snapshot = service.shutdown();
    ClosedArm {
        max_batch,
        throughput_per_sec: completed.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64(),
        mean_batch_size: snapshot.mean_batch_size,
        p50: snapshot.end_to_end.p50,
        p99: snapshot.end_to_end.p99,
    }
}

struct OpenArm {
    policy: AdmissionPolicy,
    offered_per_sec: f64,
    achieved_per_sec: f64,
    snapshot: ServiceSnapshot,
}

/// Open-loop replay of a Poisson workload at `offered_per_sec` under `policy`.
fn open_loop(scale: &Scale, policy: AdmissionPolicy, offered_per_sec: f64) -> OpenArm {
    let window = if scale.smoke {
        Duration::from_millis(600)
    } else {
        Duration::from_secs(3)
    };
    let requests =
        ((offered_per_sec * window.as_secs_f64()) as usize).clamp(20, scale.open_requests_cap);
    let events = Workload::generate(
        WorkloadConfig::new(Scenario::Uniform)
            .with_requests(requests)
            .with_size_range(10, 14)
            .with_interactive_fraction(0.25)
            .with_interactive_deadline(Some(Duration::from_millis(50)))
            .with_arrivals(taxi_dispatch::ArrivalProcess::Poisson {
                rate_hz: offered_per_sec,
            })
            .with_seed(23),
    )
    .into_events();
    let service = DispatchService::start(
        DispatchConfig::new()
            .with_solver(service_solver())
            .with_workers(scale.workers)
            .with_queue_capacity(64)
            .with_admission(policy)
            .with_batch(
                BatchPolicy::new()
                    .with_max_batch(16)
                    .with_linger(Duration::from_micros(200))
                    .with_overload_threshold(48),
            ),
    );
    let started = Instant::now();
    let mut tickets = Vec::with_capacity(events.len());
    for event in events {
        if let Some(wait) = event.at.checked_sub(started.elapsed()) {
            std::thread::sleep(wait);
        }
        if let Ok(ticket) = service.submit(event.request) {
            tickets.push(ticket);
        }
    }
    for ticket in tickets {
        let _ = ticket.wait();
    }
    let elapsed = started.elapsed();
    let snapshot = service.shutdown();
    OpenArm {
        policy,
        offered_per_sec,
        achieved_per_sec: snapshot.completed as f64 / elapsed.as_secs_f64(),
        snapshot,
    }
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() {
    let scale = Scale::detect();
    println!(
        "dispatch load harness ({} scale: {} workers, {} closed-loop clients)",
        if scale.smoke { "smoke" } else { "full" },
        scale.workers,
        scale.clients,
    );

    // Closed loop: batch-size-1 baseline vs micro-batching.
    let baseline = closed_loop(&scale, 1);
    let batched = closed_loop(&scale, 16);
    let speedup = batched.throughput_per_sec / baseline.throughput_per_sec;
    for arm in [&baseline, &batched] {
        println!(
            "  closed loop max_batch={:<2}: {:8.0} req/s (mean batch {:.2}, p50 {:.0}µs, p99 {:.0}µs)",
            arm.max_batch,
            arm.throughput_per_sec,
            arm.mean_batch_size,
            micros(arm.p50),
            micros(arm.p99),
        );
    }
    println!("  micro-batching speedup at saturation: {speedup:.3}x");

    // Open loop: offered vs achieved per admission policy.
    let capacity = batched.throughput_per_sec;
    let mut open_arms = Vec::new();
    for policy in [
        AdmissionPolicy::Reject,
        AdmissionPolicy::ShedOldest,
        AdmissionPolicy::Block,
    ] {
        for fraction in [0.5, 0.9, 1.5] {
            let arm = open_loop(&scale, policy, capacity * fraction);
            println!(
                "  open loop {:<11} offered {:8.0}/s: {}",
                arm.policy.to_string(),
                arm.offered_per_sec,
                arm.snapshot.one_line(),
            );
            open_arms.push(arm);
        }
    }

    // Emit BENCH_dispatch.json via the shared artifact writer.
    let closed_arm = |arm: &ClosedArm| {
        JsonObject::new()
            .uint("max_batch", arm.max_batch as u64)
            .num("throughput_per_sec", arm.throughput_per_sec, 1)
            .num("mean_batch_size", arm.mean_batch_size, 3)
            .num("p50_us", micros(arm.p50), 1)
            .num("p99_us", micros(arm.p99), 1)
    };
    let open_arm = |arm: &OpenArm| {
        JsonObject::new()
            .str("policy", &arm.policy.to_string())
            .num("offered_per_sec", arm.offered_per_sec, 1)
            .num("achieved_per_sec", arm.achieved_per_sec, 1)
            .uint("completed", arm.snapshot.completed)
            .uint("shed", arm.snapshot.shed)
            .uint("rejected", arm.snapshot.rejected)
            .uint("degraded", arm.snapshot.degraded)
            .uint("deadline_misses", arm.snapshot.deadline_misses)
            .num("queue_wait_p99_us", micros(arm.snapshot.queue_wait.p99), 1)
            .num("e2e_p50_us", micros(arm.snapshot.end_to_end.p50), 1)
            .num("e2e_p99_us", micros(arm.snapshot.end_to_end.p99), 1)
            .raw("snapshot", &arm.snapshot.to_json())
    };
    let artifact = JsonObject::new()
        .str("bench", "dispatch")
        .bool("smoke", scale.smoke)
        .uint("workers", scale.workers as u64)
        .object(
            "closed_loop",
            JsonObject::new()
                .uint("clients", scale.clients as u64)
                .num("duration_secs", scale.closed_duration.as_secs_f64(), 3)
                .array(
                    "arms",
                    JsonArray::from_objects([&baseline, &batched].map(closed_arm)),
                )
                .num("batching_speedup", speedup, 4),
        )
        .object(
            "open_loop",
            JsonObject::new()
                .num("capacity_probe_per_sec", capacity, 1)
                .array(
                    "arms",
                    JsonArray::from_objects(open_arms.iter().map(open_arm)),
                ),
        );
    let path = taxi_bench::artifact_path("BENCH_dispatch.json");
    std::fs::write(&path, artifact.render()).expect("write BENCH_dispatch.json");
    println!("wrote {}", path.display());
}
