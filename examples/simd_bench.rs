//! SIMD compute-core bench: kernel ns/op before/after plus end-to-end backend
//! throughput with and without neighbor-pruned local search. Emits the results as
//! `BENCH_simd.json` (consumed as a CI artifact).
//!
//! Two kinds of comparison:
//!
//! * **Kernels** — each hot kernel is timed against a faithful re-implementation of
//!   its pre-refactor shape (nested `Vec<Vec<f64>>` storage, scalar accumulation,
//!   per-cell scan). The f64 results must agree **bit-identically** wherever the
//!   refactor promises identity (lengths, matrix fills, MAC, superposition); the
//!   neighbor-pruned 2-opt arm is the opt-in approximation and is gated by a tour
//!   validity + quality bound instead.
//! * **End-to-end** — `instances_per_sec` for the software backends solving whole
//!   instances directly, before (`neighbor_limit = 0`, the exhaustive legacy scan)
//!   vs after (`neighbor_limit = 12`). A separate `pipeline` section reports the
//!   full hierarchical solver for all four backends — its sub-problems are capped
//!   at the cluster size, so pruning is expected to be neutral there.
//!
//! Run with `cargo run --release --example simd_bench`; set `TAXI_SIMD_SMOKE=1`
//! (CI) for a fast smoke-scale run.

use std::hint::black_box;
use std::time::Instant;

use taxi::{SolverBackend, SolverScratch, TaxiConfig, TaxiSolver};
use taxi_baselines::HeuristicScratch;
use taxi_baselines::{nearest_neighbor_tour, tour_length, two_opt, two_opt_limited};
use taxi_device::DeviceParams;
use taxi_dist::DistanceMatrix;
use taxi_tsplib::generator::{clustered_instance, random_uniform_instance};
use taxi_xbar::array::NonIdealityConfig;
use taxi_xbar::{BitPrecision, CrossbarArray, QuantizedDistances};

struct Scale {
    kernel_n: usize,
    kernel_iters: u32,
    mac_n: usize,
    mac_iters: u32,
    two_opt_n: usize,
    two_opt_iters: u32,
    flat_n: usize,
    flat_rounds: usize,
    pipeline_n: usize,
    pipeline_rounds: usize,
}

impl Scale {
    fn from_env() -> (Self, bool) {
        let smoke = std::env::var("TAXI_SIMD_SMOKE").is_ok_and(|v| v != "0");
        let scale = if smoke {
            Scale {
                kernel_n: 128,
                kernel_iters: 2_000,
                mac_n: 16,
                mac_iters: 2_000,
                two_opt_n: 160,
                two_opt_iters: 8,
                flat_n: 140,
                flat_rounds: 6,
                pipeline_n: 150,
                pipeline_rounds: 2,
            }
        } else {
            Scale {
                kernel_n: 512,
                kernel_iters: 20_000,
                mac_n: 64,
                mac_iters: 20_000,
                two_opt_n: 400,
                two_opt_iters: 30,
                flat_n: 320,
                flat_rounds: 20,
                pipeline_n: 400,
                pipeline_rounds: 6,
            }
        };
        (scale, smoke)
    }
}

/// Times `f` over `iters` calls and returns ns/op.
fn ns_per_op(iters: u32, mut f: impl FnMut()) -> f64 {
    // One untimed call to warm caches.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

struct KernelResult {
    name: &'static str,
    before_ns: f64,
    after_ns: f64,
}

impl KernelResult {
    fn speedup(&self) -> f64 {
        self.before_ns / self.after_ns
    }
}

fn euclid_matrix(n: usize, seed: u64) -> DistanceMatrix {
    let mut state = seed.wrapping_add(0x9E37_79B9);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64 * 1000.0
    };
    let points: Vec<(f64, f64)> = (0..n).map(|_| (next(), next())).collect();
    DistanceMatrix::from_fn(n, |i, j| {
        let (x1, y1) = points[i];
        let (x2, y2) = points[j];
        (x1 - x2).hypot(y1 - y2)
    })
}

/// Pre-refactor tour length: nested rows, scalar edge-by-edge accumulation.
fn tour_length_legacy(rows: &[Vec<f64>], order: &[usize]) -> f64 {
    let n = order.len();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..n {
        total += rows[order[i]][order[(i + 1) % n]];
    }
    total
}

fn bench_tour_length(scale: &Scale) -> KernelResult {
    let matrix = euclid_matrix(scale.kernel_n, 1);
    let rows = matrix.to_rows();
    let order: Vec<usize> = (0..scale.kernel_n).collect();
    let legacy = tour_length_legacy(&rows, &order);
    let chunked = tour_length(&matrix, &order);
    assert!(
        legacy == chunked,
        "chunked tour length must be bit-identical to the legacy kernel"
    );
    KernelResult {
        name: "tour_length",
        before_ns: ns_per_op(scale.kernel_iters, || {
            black_box(tour_length_legacy(black_box(&rows), black_box(&order)));
        }),
        after_ns: ns_per_op(scale.kernel_iters, || {
            black_box(tour_length(black_box(&matrix), black_box(&order)));
        }),
    }
}

fn bench_matrix_fill(scale: &Scale) -> KernelResult {
    let n = scale.kernel_n;
    let coords: Vec<(f64, f64)> = {
        let m = euclid_matrix(n, 2);
        (0..n).map(|i| (m.get(0, i), m.get(i, 0))).collect()
    };
    let dist = |i: usize, j: usize| {
        let (x1, y1) = coords[i];
        let (x2, y2) = coords[j];
        (x1 - x2).hypot(y1 - y2)
    };
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut flat = DistanceMatrix::default();
    let fills = (scale.kernel_iters / 100).max(64);
    let result = KernelResult {
        name: "matrix_fill",
        before_ns: ns_per_op(fills, || {
            // Pre-refactor fill: row-of-Vecs, clear + extend per row.
            if rows.len() < n {
                rows.resize_with(n, Vec::new);
            }
            for i in 0..n {
                let row = &mut rows[i];
                row.clear();
                row.extend((0..n).map(|j| dist(i, j)));
            }
            black_box(&rows);
        }),
        after_ns: ns_per_op(fills, || {
            flat.fill_from_fn(n, dist);
            black_box(&flat);
        }),
    };
    for i in 0..n {
        for j in 0..n {
            assert!(
                rows[i][j] == flat.get(i, j),
                "fills must agree bit-identically"
            );
        }
    }
    result
}

/// Scalar MAC over the same cached conductances the chunked kernel reads.
fn mac_scalar_reference(array: &CrossbarArray, row_vector: &[bool], out: &mut [f64]) {
    let geometry = array.geometry();
    let v = array.params().read_voltage;
    let bits = geometry.precision.bits();
    out.fill(0.0);
    for p in 0..bits {
        let significance = f64::from(1u32 << (bits - 1 - p));
        let start = geometry.weight_partition_start(p);
        for (city, slot) in out.iter_mut().enumerate() {
            let mut i_col = 0.0;
            for (row, &active) in row_vector.iter().enumerate() {
                if active {
                    i_col += v * array.effective_conductance(row, start + city);
                }
            }
            *slot += significance * i_col;
        }
    }
}

fn bench_crossbar_mac(scale: &Scale) -> KernelResult {
    let n = scale.mac_n;
    let matrix = euclid_matrix(n, 3);
    let q = QuantizedDistances::from_distances(&matrix, BitPrecision::FOUR)
        .expect("quantization succeeds");
    let mut array = CrossbarArray::new(
        n,
        BitPrecision::FOUR,
        DeviceParams::default(),
        NonIdealityConfig::realistic(),
    );
    array.program_weights(&q).expect("weights program");
    let row_vector: Vec<bool> = (0..n).map(|i| i % 3 != 0).collect();
    let mut before_out = vec![0.0f64; n];
    let mut after_out = vec![0.0f64; n];
    mac_scalar_reference(&array, &row_vector, &mut before_out);
    array.weighted_column_currents_into(&row_vector, &mut after_out);
    assert_eq!(
        before_out, after_out,
        "chunked MAC must be bit-identical to the scalar reference"
    );
    KernelResult {
        name: "crossbar_mac",
        before_ns: ns_per_op(scale.mac_iters, || {
            mac_scalar_reference(black_box(&array), black_box(&row_vector), &mut before_out);
            black_box(&before_out);
        }),
        after_ns: ns_per_op(scale.mac_iters, || {
            array.weighted_column_currents_into(black_box(&row_vector), &mut after_out);
            black_box(&after_out);
        }),
    }
}

fn bench_superposition(scale: &Scale) -> KernelResult {
    let n = scale.mac_n;
    let matrix = euclid_matrix(n, 4);
    let q = QuantizedDistances::from_distances(&matrix, BitPrecision::FOUR)
        .expect("quantization succeeds");
    let mut array = CrossbarArray::new(
        n,
        BitPrecision::FOUR,
        DeviceParams::default(),
        NonIdealityConfig::realistic(),
    );
    array.program_weights(&q).expect("weights program");
    let perm: Vec<usize> = (0..n).collect();
    array.write_assignment(&perm).expect("assignment writes");
    let orders: Vec<usize> = (0..4.min(n)).collect();

    let geometry = array.geometry();
    let v = array.params().read_voltage;
    let spin_start = geometry.spin_storage_start();
    let mut before_out = vec![0.0f64; n];
    let mut after_out = vec![0.0f64; n];

    let result = KernelResult {
        name: "superposition",
        before_ns: ns_per_op(scale.mac_iters, || {
            before_out.fill(0.0);
            for &order in &orders {
                let col = spin_start + order;
                for (row, slot) in before_out.iter_mut().enumerate() {
                    *slot += v * array.effective_conductance(row, col);
                }
            }
            black_box(&before_out);
        }),
        after_ns: ns_per_op(scale.mac_iters, || {
            array
                .superpose_orders_into(black_box(&orders), &mut after_out)
                .expect("superposition succeeds");
            black_box(&after_out);
        }),
    };
    assert_eq!(
        before_out, after_out,
        "chunked superposition must be bit-identical to the scalar reference"
    );
    result
}

fn bench_two_opt(scale: &Scale) -> KernelResult {
    let n = scale.two_opt_n;
    let matrix = euclid_matrix(n, 5);
    let seed_order = nearest_neighbor_tour(&matrix, 0);
    let mut scratch = HeuristicScratch::new();

    let mut exhaustive = seed_order.clone();
    two_opt(&matrix, &mut exhaustive, 1_000);
    let exhaustive_len = tour_length(&matrix, &exhaustive);
    let limit = 16;
    let mut pruned = seed_order.clone();
    two_opt_limited(&matrix, &mut pruned, 1_000, &mut scratch, limit);
    let pruned_len = tour_length(&matrix, &pruned);
    // Quality gate for the opt-in approximation: valid permutation, bounded regression.
    let mut sorted = pruned.clone();
    sorted.sort_unstable();
    assert_eq!(
        sorted,
        (0..n).collect::<Vec<_>>(),
        "pruned 2-opt must stay a tour"
    );
    assert!(
        pruned_len <= exhaustive_len * 1.2,
        "pruned 2-opt regressed quality beyond 20%: {pruned_len:.1} vs {exhaustive_len:.1}"
    );

    let mut order = seed_order.clone();
    KernelResult {
        name: "two_opt_pass",
        before_ns: ns_per_op(scale.two_opt_iters, || {
            order.copy_from_slice(&seed_order);
            black_box(two_opt(black_box(&matrix), &mut order, 1_000));
        }),
        after_ns: ns_per_op(scale.two_opt_iters, || {
            order.copy_from_slice(&seed_order);
            black_box(two_opt_limited(
                black_box(&matrix),
                &mut order,
                1_000,
                &mut scratch,
                limit,
            ));
        }),
    }
}

struct EndToEnd {
    backend: &'static str,
    before_ips: f64,
    after_ips: f64,
}

impl EndToEnd {
    fn speedup(&self) -> f64 {
        self.after_ips / self.before_ips
    }
}

/// Direct backend solves over whole flat instances (where neighbor pruning engages).
fn flat_end_to_end(scale: &Scale) -> Vec<EndToEnd> {
    let instances: Vec<DistanceMatrix> = (0..3)
        .map(|i| {
            random_uniform_instance("simd-flat", scale.flat_n + 20 * i, 7 + i as u64)
                .full_distance_matrix()
        })
        .collect();
    let mut results = Vec::new();
    for kind in [SolverBackend::NnTwoOpt, SolverBackend::GreedyEdge] {
        let before = TaxiConfig::new().with_backend(kind).build_backend();
        let after = TaxiConfig::new()
            .with_backend(kind)
            .with_neighbor_limit(12)
            .build_backend();
        let mut scratch = SolverScratch::new();
        let mut out = Vec::new();
        let mut arm = |backend: &std::sync::Arc<dyn taxi::TourSolver>| {
            // Warm-up.
            for m in &instances {
                backend
                    .solve_cycle_into(m, 1, &mut scratch, &mut out)
                    .expect("solve succeeds");
            }
            let start = Instant::now();
            for _ in 0..scale.flat_rounds {
                for m in &instances {
                    backend
                        .solve_cycle_into(m, 1, &mut scratch, &mut out)
                        .expect("solve succeeds");
                    black_box(&out);
                }
            }
            (scale.flat_rounds * instances.len()) as f64 / start.elapsed().as_secs_f64()
        };
        let before_ips = arm(&before);
        let after_ips = arm(&after);
        results.push(EndToEnd {
            backend: kind.label(),
            before_ips,
            after_ips,
        });
    }
    results
}

/// Full hierarchical pipeline for every backend (pruning is neutral here by design:
/// sub-problems are capped at the cluster size).
fn pipeline_end_to_end(scale: &Scale) -> Vec<EndToEnd> {
    let instance = clustered_instance("simd-pipeline", scale.pipeline_n, 12, 77);
    let mut results = Vec::new();
    for kind in SolverBackend::ALL {
        let arm = |limit: usize| {
            let solver = TaxiSolver::new(
                TaxiConfig::new()
                    .with_seed(7)
                    .with_threads(1)
                    .with_backend(kind)
                    .with_neighbor_limit(limit),
            );
            let mut ctx = taxi::SolveContext::new();
            solver
                .solve_reusing(&instance, &mut ctx)
                .expect("warm-up solve succeeds");
            let start = Instant::now();
            for _ in 0..scale.pipeline_rounds {
                black_box(
                    solver
                        .solve_reusing(&instance, &mut ctx)
                        .expect("solve succeeds"),
                );
            }
            scale.pipeline_rounds as f64 / start.elapsed().as_secs_f64()
        };
        results.push(EndToEnd {
            backend: kind.label(),
            before_ips: arm(0),
            after_ips: arm(12),
        });
    }
    results
}

fn main() {
    let (scale, smoke) = Scale::from_env();
    println!(
        "SIMD compute-core bench ({} scale)",
        if smoke { "smoke" } else { "full" }
    );

    let kernels = vec![
        bench_tour_length(&scale),
        bench_matrix_fill(&scale),
        bench_crossbar_mac(&scale),
        bench_superposition(&scale),
        bench_two_opt(&scale),
    ];
    println!("\nkernels (ns/op):");
    for k in &kernels {
        println!(
            "  {:14} before {:>10.1}  after {:>10.1}  speedup {:>6.2}x",
            k.name,
            k.before_ns,
            k.after_ns,
            k.speedup()
        );
    }

    let flat = flat_end_to_end(&scale);
    println!("\nend-to-end, direct backend solves (instances/s):");
    for e in &flat {
        println!(
            "  {:14} before {:>8.2}  after {:>8.2}  speedup {:>6.2}x",
            e.backend,
            e.before_ips,
            e.after_ips,
            e.speedup()
        );
    }

    let pipeline = pipeline_end_to_end(&scale);
    println!("\nend-to-end, hierarchical pipeline (instances/s):");
    for e in &pipeline {
        println!(
            "  {:14} before {:>8.2}  after {:>8.2}  speedup {:>6.2}x",
            e.backend,
            e.before_ips,
            e.after_ips,
            e.speedup()
        );
    }

    let best = flat
        .iter()
        .map(|e| e.speedup())
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best >= 1.3,
        "acceptance gate: expected >= 1.3x end-to-end on at least one backend, best was {best:.2}x"
    );

    let mut json = String::from("{\n  \"bench\": \"simd_compute_core\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"before_ns_per_op\": {:.1}, \"after_ns_per_op\": {:.1}, \"speedup\": {:.3} }}{}\n",
            k.name,
            k.before_ns,
            k.after_ns,
            k.speedup(),
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"end_to_end\": [\n");
    for (i, e) in flat.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"backend\": \"{}\", \"before_instances_per_sec\": {:.3}, \"after_instances_per_sec\": {:.3}, \"speedup\": {:.3} }}{}\n",
            e.backend,
            e.before_ips,
            e.after_ips,
            e.speedup(),
            if i + 1 < flat.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"pipeline\": [\n");
    for (i, e) in pipeline.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"backend\": \"{}\", \"before_instances_per_sec\": {:.3}, \"after_instances_per_sec\": {:.3}, \"speedup\": {:.3} }}{}\n",
            e.backend,
            e.before_ips,
            e.after_ips,
            e.speedup(),
            if i + 1 < pipeline.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = taxi_bench::artifact_path("BENCH_simd.json");
    std::fs::write(&path, json).expect("write BENCH_simd.json");
    println!("\nwrote {}", path.display());
}
