//! Visualises the annealing dynamics of one Ising macro (Section III-C6 of the paper).
//!
//! The macro's stochasticity follows the device's sigmoidal switching curve as the write
//! current is ramped down linearly, so most of the tour improvement happens early in the
//! anneal. This example records a trace on one sub-problem and prints the stochasticity
//! and tour length per sweep as a text chart.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example annealing_trace
//! ```

use taxi_ising::{CurrentSchedule, IsingError, MacroSolverConfig, MacroTspSolver};
use taxi_tsplib::generator::clustered_instance;
use taxi_xbar::MacroConfig;

fn main() -> Result<(), IsingError> {
    // One 12-city sub-problem, the size the paper characterises.
    let instance = clustered_instance("trace12", 12, 3, 9);
    let matrix = instance.full_distance_matrix();

    let config = MacroSolverConfig::new(MacroConfig::new(4).with_capacity(12))
        .with_schedule(CurrentSchedule::software());
    let solver = MacroTspSolver::new(config);
    let (solution, trace) = solver.solve_cycle_traced(&matrix, 7)?;

    println!("annealing trace of one 12-city Ising macro (670-iteration software schedule)\n");
    println!(
        "{:>9} {:>12} {:>14} {:>12}  best-so-far",
        "sweep", "I_write µA", "stochasticity", "length"
    );
    let best = trace.best_so_far();
    let max_length = trace
        .points()
        .iter()
        .map(|p| p.length)
        .fold(f64::MIN, f64::max);
    for (i, (point, best_len)) in trace.points().iter().zip(&best).enumerate() {
        if i % 4 != 0 && i + 1 != trace.len() {
            continue; // print every 4th sweep to keep the chart compact
        }
        let bar_len = ((best_len / max_length) * 40.0).round() as usize;
        println!(
            "{:>9} {:>12.2} {:>13.1}% {:>12.2}  {}",
            i,
            point.i_write.as_micro_amps(),
            point.stochasticity * 100.0,
            point.length,
            "#".repeat(bar_len)
        );
    }
    println!();
    println!("final tour length : {:.2}", solution.length);
    if let Some(fraction) = trace.early_improvement_fraction() {
        println!(
            "improvement in the first half of the anneal: {:.0}% (fast-early / slow-late, as the paper argues)",
            fraction * 100.0
        );
    }
    Ok(())
}
