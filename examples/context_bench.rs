//! Context-reuse ablation bench: measures the effect of the `SolveContext` arena on
//! throughput and allocation pressure, and emits the results as `BENCH_context.json`
//! (consumed as a CI artifact).
//!
//! Two arms solve the same workload single-threaded with the default Ising-macro
//! backend:
//!
//! * **before** — a fresh (cold) `SolveContext` per solve: every sub-problem
//!   re-materialises its matrices, macros and order buffers, which is what the solve
//!   path did before the zero-realloc refactor;
//! * **after** — one persistent context: matrices, warm macros and buffers are reused,
//!   so the steady-state level-solve loop performs zero heap allocations.
//!
//! Run with `cargo run --release --example context_bench`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use taxi::{SolveContext, TaxiConfig, TaxiSolver};
use taxi_tsplib::generator::clustered_instance;
use taxi_tsplib::TspInstance;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

struct ArmResult {
    instances_per_sec: f64,
    allocations_per_solve: f64,
}

fn run_arm(solver: &TaxiSolver, workload: &[TspInstance], reuse: bool) -> ArmResult {
    // Warm-up pass (not measured) so both arms start from hot caches.
    let mut persistent = SolveContext::new();
    for instance in workload {
        let mut cold = SolveContext::new();
        let ctx = if reuse { &mut persistent } else { &mut cold };
        solver.solve_reusing(instance, ctx).expect("solve succeeds");
    }

    const ROUNDS: usize = 3;
    let start_allocs = allocations();
    let start = Instant::now();
    for _ in 0..ROUNDS {
        for instance in workload {
            let mut cold = SolveContext::new();
            let ctx = if reuse { &mut persistent } else { &mut cold };
            solver.solve_reusing(instance, ctx).expect("solve succeeds");
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    let solves = (ROUNDS * workload.len()) as f64;
    ArmResult {
        instances_per_sec: solves / seconds,
        allocations_per_solve: (allocations() - start_allocs) as f64 / solves,
    }
}

fn main() {
    let workload: Vec<TspInstance> = (0..4)
        .map(|i| clustered_instance("ctx-bench", 130 + 10 * i, 6, 40 + i as u64))
        .collect();
    let solver = TaxiSolver::new(TaxiConfig::new().with_seed(17).with_threads(1));

    let before = run_arm(&solver, &workload, false);
    let after = run_arm(&solver, &workload, true);

    let speedup = after.instances_per_sec / before.instances_per_sec;
    let alloc_ratio = before.allocations_per_solve / after.allocations_per_solve.max(1.0);
    println!("context-reuse ablation (single-threaded, ising-macro backend)");
    println!(
        "  before (fresh context/solve): {:8.2} instances/s, {:10.0} allocations/solve",
        before.instances_per_sec, before.allocations_per_solve
    );
    println!(
        "  after  (persistent context):  {:8.2} instances/s, {:10.0} allocations/solve",
        after.instances_per_sec, after.allocations_per_solve
    );
    println!("  speedup {speedup:.3}x, allocation reduction {alloc_ratio:.1}x");

    let json = format!(
        "{{\n  \"bench\": \"context_reuse\",\n  \"workload_instances\": {},\n  \
         \"before\": {{ \"instances_per_sec\": {:.3}, \"allocations_per_solve\": {:.1} }},\n  \
         \"after\": {{ \"instances_per_sec\": {:.3}, \"allocations_per_solve\": {:.1} }},\n  \
         \"speedup\": {:.4},\n  \"allocation_reduction\": {:.2}\n}}\n",
        workload.len(),
        before.instances_per_sec,
        before.allocations_per_solve,
        after.instances_per_sec,
        after.allocations_per_solve,
        speedup,
        alloc_ratio,
    );
    let path = taxi_bench::artifact_path("BENCH_context.json");
    std::fs::write(&path, json).expect("write BENCH_context.json");
    println!("wrote {}", path.display());
}
