//! Solution-cache load harness: quantifies what serving-side memoization buys under
//! realistic repeat-heavy traffic, emitting `BENCH_cache.json` (a CI artifact
//! alongside `BENCH_dispatch.json`).
//!
//! Three experiments:
//!
//! * **Hit rate vs. skew** — a popular-routes workload replayed through a cached
//!   service at increasing Zipf exponents. The more skewed the popularity, the more
//!   traffic the cache absorbs; exponent 0 (uniform over the pool) lower-bounds the
//!   benefit at pool-size/requests.
//! * **Throughput uplift vs. cache-off** — the same Zipf-skewed closed loop
//!   (a pool of client threads, one request in flight each) against a cache-on and
//!   a cache-off service. Cache-on serves repeats at admission — no queue, no
//!   worker, no solve — so achieved throughput is bounded by the fingerprint probe,
//!   not the solver. The acceptance bar for this artifact is a ≥ 5x uplift.
//! * **Coalescing under burst** — a cold-cache burst of identical requests. The
//!   first becomes the singleflight leader; everything else coalesces onto its
//!   solve (or hits the cache at admission after it lands). The coalescing factor
//!   is completed-per-fresh-solve.
//!
//! Run with `cargo run --release --example cache_bench`; set `TAXI_CACHE_SMOKE=1`
//! (CI) for a fast smoke-scale run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use taxi::cache::CachePolicy;
use taxi::{SolutionCache, SolverBackend, TaxiConfig};
use taxi_bench::json::{JsonArray, JsonObject};
use taxi_dispatch::{
    AdmissionPolicy, BatchPolicy, DispatchConfig, DispatchRequest, DispatchService, Scenario,
    ServiceSnapshot, Ticket, Workload, WorkloadConfig,
};
use taxi_tsplib::TspInstance;

struct Scale {
    smoke: bool,
    workers: usize,
    clients: usize,
    replay_requests: usize,
    closed_duration: Duration,
    burst: usize,
}

impl Scale {
    fn detect() -> Self {
        let smoke = std::env::var("TAXI_CACHE_SMOKE").is_ok_and(|v| v != "0");
        if smoke {
            Self {
                smoke,
                workers: 2,
                clients: 16,
                replay_requests: 150,
                closed_duration: Duration::from_millis(400),
                burst: 24,
            }
        } else {
            Self {
                smoke,
                workers: 4,
                clients: 48,
                replay_requests: 1200,
                closed_duration: Duration::from_secs(2),
                burst: 64,
            }
        }
    }
}

/// The serving configuration: clustered "popular route" geometries under the
/// NN+2-opt backend — cheap enough to saturate quickly, expensive enough that a
/// fingerprint probe beats a solve by orders of magnitude.
fn solver_config() -> TaxiConfig {
    TaxiConfig::new()
        .with_seed(29)
        .with_backend(SolverBackend::NnTwoOpt)
}

fn service(scale: &Scale, cache: Option<Arc<SolutionCache>>) -> DispatchService {
    let mut config = DispatchConfig::new()
        .with_solver(solver_config())
        .with_workers(scale.workers)
        .with_queue_capacity((scale.clients / 2).max(8))
        .with_admission(AdmissionPolicy::Block)
        .with_batch(
            BatchPolicy::new()
                .with_max_batch(8)
                .with_linger(Duration::from_micros(200)),
        );
    if let Some(cache) = cache {
        config = config.with_cache(cache);
    }
    DispatchService::start(config)
}

fn zipf_instances(requests: usize, routes: usize, exponent: f64, seed: u64) -> Vec<TspInstance> {
    Workload::generate(
        WorkloadConfig::new(Scenario::CityDistricts { districts: 4 })
            .with_requests(requests)
            .with_size_range(40, 60)
            .with_interactive_fraction(0.0)
            .with_popular_routes(routes, exponent)
            .with_seed(seed),
    )
    .into_events()
    .into_iter()
    .map(|event| event.request.instance)
    .collect()
}

struct SkewArm {
    exponent: f64,
    snapshot: ServiceSnapshot,
}

/// Replays a Zipf workload through a cached service whose cache is deliberately
/// **smaller than the route pool** (8 entries vs 32 routes): with uniform
/// popularity the LRU thrashes, while Zipf skew keeps the head routes resident —
/// this is where skew, not just repetition, earns hit rate. Submissions are waited
/// in windows so hits can land behind the solve that seeds them.
fn hit_rate_vs_skew(scale: &Scale, exponent: f64, routes: usize) -> SkewArm {
    let instances = zipf_instances(scale.replay_requests, routes, exponent, 31);
    let small_cache = SolutionCache::new(
        CachePolicy::new()
            .with_shards(1)
            .with_max_entries(routes / 4),
    );
    let service = service(scale, Some(Arc::new(small_cache)));
    let mut tickets: Vec<Ticket> = Vec::with_capacity(64);
    for chunk in instances.chunks(64) {
        for instance in chunk {
            tickets.push(
                service
                    .submit(DispatchRequest::new(instance.clone()))
                    .expect("admitted"),
            );
        }
        for ticket in tickets.drain(..) {
            let _ = ticket.wait();
        }
    }
    SkewArm {
        exponent,
        snapshot: service.shutdown(),
    }
}

struct ClosedArm {
    throughput_per_sec: f64,
    snapshot: ServiceSnapshot,
}

/// Closed-loop saturation over a Zipf-skewed request stream, cache on or off.
fn closed_loop(scale: &Scale, cache: Option<Arc<SolutionCache>>) -> ClosedArm {
    let stream = Arc::new(zipf_instances(512, 16, 1.1, 47));
    let service = service(scale, cache);
    let completed = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..scale.clients {
            let service = &service;
            let stream = Arc::clone(&stream);
            let completed = &completed;
            let deadline = started + scale.closed_duration;
            scope.spawn(move || {
                let mut i = client;
                while Instant::now() < deadline {
                    let instance = stream[i % stream.len()].clone();
                    i += scale.clients;
                    let Ok(ticket) = service.submit(DispatchRequest::new(instance)) else {
                        break;
                    };
                    if ticket.wait().solved().is_some() {
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();
    ClosedArm {
        throughput_per_sec: completed.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64(),
        snapshot: service.shutdown(),
    }
}

/// Cold-cache burst of identical requests: measures the coalescing factor. The
/// burst service uses the paper's Ising-macro backend (a solve costing
/// milliseconds, not microseconds), a queue deep enough to hold the whole burst,
/// and small zero-linger batches across all workers — so several workers drain
/// duplicates *while* the leader is still solving, exercising the in-flight
/// attachment path (not just late cache hits).
fn coalescing_burst(scale: &Scale) -> ServiceSnapshot {
    let instance = zipf_instances(1, 1, 0.0, 53).pop().expect("one route");
    let service = DispatchService::start(
        DispatchConfig::new()
            .with_solver(TaxiConfig::new().with_seed(29))
            .with_workers(scale.workers)
            .with_queue_capacity(scale.burst)
            .with_admission(AdmissionPolicy::Block)
            .with_batch(
                BatchPolicy::new()
                    .with_max_batch(2)
                    .with_linger(Duration::ZERO),
            )
            .with_cache(Arc::new(SolutionCache::with_defaults())),
    );
    let tickets: Vec<Ticket> = (0..scale.burst)
        .map(|_| {
            service
                .submit(DispatchRequest::new(instance.clone()))
                .expect("admitted")
        })
        .collect();
    for ticket in tickets {
        let _ = ticket.wait();
    }
    service.shutdown()
}

fn main() {
    let scale = Scale::detect();
    println!(
        "cache load harness ({} scale: {} workers, {} clients)",
        if scale.smoke { "smoke" } else { "full" },
        scale.workers,
        scale.clients,
    );

    // Hit rate vs. Zipf skew (cache capacity-constrained to a quarter of the pool).
    let routes = 32;
    let skew_arms: Vec<SkewArm> = [0.0, 0.6, 1.1]
        .into_iter()
        .map(|exponent| {
            let arm = hit_rate_vs_skew(&scale, exponent, routes);
            println!(
                "  skew s={exponent:>3.1}: {:.1}% of {} requests avoided a solve ({} fresh)",
                arm.snapshot.solve_avoidance_rate() * 100.0,
                arm.snapshot.completed,
                arm.snapshot.solved_fresh(),
            );
            arm
        })
        .collect();

    // Throughput uplift at skewed load, cache-on vs cache-off.
    let off = closed_loop(&scale, None);
    let on = closed_loop(&scale, Some(Arc::new(SolutionCache::with_defaults())));
    let uplift = on.throughput_per_sec / off.throughput_per_sec;
    println!(
        "  closed loop cache-off: {:8.0} req/s | cache-on: {:8.0} req/s | uplift {uplift:.2}x",
        off.throughput_per_sec, on.throughput_per_sec,
    );
    println!("    off: {}", off.snapshot.one_line());
    println!("    on:  {}", on.snapshot.one_line());

    // Coalescing under a cold burst.
    let burst = coalescing_burst(&scale);
    let coalescing_factor = burst.completed as f64 / burst.solved_fresh().max(1) as f64;
    println!(
        "  burst of {}: {} fresh solve(s), {} coalesced, {} cache hits → factor {:.1}x",
        scale.burst,
        burst.solved_fresh(),
        burst.coalesced,
        burst.cache_hits,
        coalescing_factor,
    );

    let skew_arm = |arm: &SkewArm| {
        JsonObject::new()
            .num("exponent", arm.exponent, 2)
            .uint("routes", routes as u64)
            .uint("requests", arm.snapshot.completed)
            .uint("solved_fresh", arm.snapshot.solved_fresh())
            .uint("cache_hits", arm.snapshot.cache_hits)
            .uint("coalesced", arm.snapshot.coalesced)
            .num("solve_avoidance", arm.snapshot.solve_avoidance_rate(), 4)
            .num(
                "cache_hit_rate",
                arm.snapshot.cache.as_ref().map_or(0.0, |c| c.hit_rate()),
                4,
            )
            .raw("snapshot", &arm.snapshot.to_json())
    };
    let artifact = JsonObject::new()
        .str("bench", "cache")
        .bool("smoke", scale.smoke)
        .uint("workers", scale.workers as u64)
        .object(
            "hit_rate_vs_skew",
            JsonObject::new().array(
                "arms",
                JsonArray::from_objects(skew_arms.iter().map(skew_arm)),
            ),
        )
        .object(
            "throughput_uplift",
            JsonObject::new()
                .uint("clients", scale.clients as u64)
                .num("duration_secs", scale.closed_duration.as_secs_f64(), 3)
                .num("cache_off_per_sec", off.throughput_per_sec, 1)
                .num("cache_on_per_sec", on.throughput_per_sec, 1)
                .num("uplift", uplift, 3)
                .raw("cache_on_snapshot", &on.snapshot.to_json()),
        )
        .object(
            "coalescing",
            JsonObject::new()
                .uint("burst", scale.burst as u64)
                .uint("completed", burst.completed)
                .uint("solved_fresh", burst.solved_fresh())
                .uint("coalesced", burst.coalesced)
                .uint("cache_hits", burst.cache_hits)
                .num("coalescing_factor", coalescing_factor, 2),
        );
    let path = taxi_bench::artifact_path("BENCH_cache.json");
    std::fs::write(&path, artifact.render()).expect("write BENCH_cache.json");
    println!("wrote {}", path.display());
}
