//! Backend comparison: the same hierarchical pipeline driven by every built-in
//! [`taxi::TourSolver`] backend, plus a live pipeline-stage trace and a batched solve.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example backend_comparison
//! ```

use taxi::pipeline::{PipelineObserver, Stage, StageReport};
use taxi::{SolverBackend, TaxiConfig, TaxiError, TaxiSolver};
use taxi_tsplib::generator::clustered_instance;

/// Prints each pipeline stage as it completes.
struct StagePrinter;

impl PipelineObserver for StagePrinter {
    fn on_stage_end(&mut self, report: &StageReport) {
        println!(
            "    stage {:<14} {:>9.3} ms host, {:>5} items, {:>9.3} ms modelled",
            format!("{:?}", report.stage),
            report.seconds * 1e3,
            report.items,
            report.modeled_seconds * 1e3,
        );
    }

    fn on_level_solved(&mut self, level_index: Option<usize>, subproblems: usize) {
        match level_index {
            Some(level) => println!("    level {level}: {subproblems} sub-problems"),
            None => println!("    level (single macro): 1 sub-problem"),
        }
    }
}

fn main() -> Result<(), TaxiError> {
    let instance = clustered_instance("backends400", 400, 16, 42);
    println!(
        "instance: {} ({} cities)\n",
        instance.name(),
        instance.dimension()
    );

    // 1. The same pipeline under every built-in backend.
    println!("backend matrix (identical clustering / fixing / assembly):");
    for backend in SolverBackend::ALL {
        let config = TaxiConfig::new().with_seed(42).with_backend(backend);
        let solution = TaxiSolver::new(config).solve(&instance)?;
        println!(
            "  {:<12} tour {:>8.1}, {:>3} sub-problems, solve {:>7.1} ms",
            backend.label(),
            solution.length,
            solution.subproblems,
            solution.software_solve_seconds * 1e3,
        );
    }

    // 2. Observe the staged pipeline on the default (Ising macro) backend.
    println!("\nstaged pipeline trace (ising-macro backend):");
    let solver = TaxiSolver::new(TaxiConfig::new().with_seed(42));
    let solution = solver.solve_with_observer(&instance, &mut StagePrinter)?;
    let account = solution
        .stage_report(Stage::Account)
        .expect("account stage ran");
    println!(
        "    modelled hardware latency: {:.3} ms",
        account.modeled_seconds * 1e3
    );

    // 3. Batched solving: one worker pool shared across the whole batch.
    let batch: Vec<_> = (0..4)
        .map(|i| clustered_instance("wave", 150, 8, 1000 + i))
        .collect();
    let results = solver.solve_batch(&batch);
    println!("\nsolve_batch over {} instances:", batch.len());
    for (instance, result) in batch.iter().zip(&results) {
        let solution = result.as_ref().expect("batch instance solves");
        println!(
            "  {:<8} {:>4} cities → tour {:>8.1}",
            instance.name(),
            instance.dimension(),
            solution.length
        );
    }
    Ok(())
}
