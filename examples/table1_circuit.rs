//! Regenerates Table I: circuit-level characterisation of one Ising-macro iteration.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example table1_circuit
//! ```

use taxi::experiments::tables::run_table1;

fn main() {
    let report = run_table1();
    println!("{report}");
    println!("Phase latencies (superposition / optimization / spin-storage update) are the");
    println!("paper's published 3 / 4 / 2 ns; power and energy come from the analytical");
    println!("circuit model calibrated to the paper's Spectre results (see DESIGN.md).");
}
