//! Fleet load harness: quantifies what fingerprint-affinity routing and the
//! reconciling control plane buy over a sharded service, emitting
//! `BENCH_fleet.json` (a CI artifact alongside the other `BENCH_*.json` files).
//!
//! Two experiments:
//!
//! * **Affinity vs. scatter under Zipf** — the same popular-routes workload
//!   replayed through identical fleets that differ only in routing policy. Each
//!   shard's private cache is deliberately smaller than the full route pool but
//!   larger than its ring share of it: affinity partitions the key space so each
//!   cache holds exactly its own hot routes, while scatter makes every cache
//!   chase the whole pool — duplicated cold misses plus LRU thrash. The
//!   acceptance bar: affinity's fleet-wide cache hit rate strictly beats
//!   scatter's (p99 end-to-end is recorded for both). A hotspot-shift arm
//!   replays the same pool with rotating popularity ranks: consistent-hash
//!   ownership is keyed by geometry, not rank, so affinity's hit rate survives
//!   the shift.
//! * **Drain under load** — a live fleet loses a shard to an operator drain
//!   mid-stream. The acceptance bar: every accepted ticket resolves with a
//!   solution (the drained backlog is re-adopted by survivors — zero lost, zero
//!   failed), and the drained shard returns to `Serving` (recovery time
//!   recorded).
//!
//! Run with `cargo run --release --example fleet_bench`; set `TAXI_FLEET_SMOKE=1`
//! (CI) for a fast smoke-scale run.

use std::time::{Duration, Instant};

use taxi::cache::CachePolicy;
use taxi_bench::json::{JsonArray, JsonObject};
use taxi_dispatch::{
    AdmissionPolicy, BatchPolicy, DispatchConfig, DispatchRequest, Scenario, Ticket, Workload,
    WorkloadConfig,
};
use taxi_fleet::{Fleet, FleetConfig, FleetSnapshot, RoutingPolicy, ShardId, ShardState};
use taxi_tsplib::TspInstance;

struct Scale {
    smoke: bool,
    shards: usize,
    workers_per_shard: usize,
    routes: usize,
    requests: usize,
    drain_requests: usize,
}

impl Scale {
    fn detect() -> Self {
        let smoke = std::env::var("TAXI_FLEET_SMOKE").is_ok_and(|v| v != "0");
        if smoke {
            Self {
                smoke,
                shards: 3,
                workers_per_shard: 1,
                routes: 24,
                requests: 300,
                drain_requests: 90,
            }
        } else {
            Self {
                smoke,
                shards: 4,
                workers_per_shard: 2,
                routes: 48,
                requests: 1500,
                drain_requests: 240,
            }
        }
    }

    /// Per-shard cache capacity: smaller than the route pool (scatter thrashes)
    /// but comfortably above one shard's ring share of it (affinity fits).
    fn cache_entries(&self) -> usize {
        (self.routes * 2) / self.shards
    }
}

fn fleet(scale: &Scale, routing: RoutingPolicy) -> Fleet {
    Fleet::start(
        FleetConfig::new()
            .with_shards(scale.shards)
            .with_shard_config(
                DispatchConfig::new()
                    .with_workers(scale.workers_per_shard)
                    .with_queue_capacity(64)
                    .with_admission(AdmissionPolicy::Block)
                    .with_batch(
                        BatchPolicy::new()
                            .with_max_batch(8)
                            .with_linger(Duration::from_micros(200)),
                    ),
            )
            .with_cache_policy(
                CachePolicy::new()
                    .with_shards(1)
                    .with_max_entries(scale.cache_entries()),
            )
            .with_routing(routing)
            .with_reconcile_interval(Duration::from_millis(5)),
    )
}

fn zipf_instances(scale: &Scale, hotspot_phases: Option<usize>) -> Vec<TspInstance> {
    let mut config = WorkloadConfig::new(Scenario::CityDistricts { districts: 4 })
        .with_requests(scale.requests)
        .with_size_range(40, 60)
        .with_interactive_fraction(0.0)
        .with_seed(61);
    config = match hotspot_phases {
        Some(phases) => config.with_hotspot_shift(scale.routes, 1.1, phases),
        None => config.with_popular_routes(scale.routes, 1.1),
    };
    Workload::generate(config)
        .into_events()
        .into_iter()
        .map(|event| event.request.instance)
        .collect()
}

struct RoutingArm {
    label: &'static str,
    hit_rate: f64,
    p99: Duration,
    snapshot: FleetSnapshot,
}

/// Replays `instances` through a fresh fleet in waited windows (so repeats can
/// land behind the solves that seed the caches) and reports the fleet-wide
/// cache hit rate and merged p99.
fn routing_arm(
    scale: &Scale,
    routing: RoutingPolicy,
    label: &'static str,
    instances: &[TspInstance],
) -> RoutingArm {
    let fleet = fleet(scale, routing);
    let mut tickets: Vec<Ticket> = Vec::with_capacity(32);
    for chunk in instances.chunks(32) {
        for instance in chunk {
            tickets.push(
                fleet
                    .submit(DispatchRequest::new(instance.clone()))
                    .expect("admitted"),
            );
        }
        for ticket in tickets.drain(..) {
            assert!(ticket.wait().solved().is_some(), "replay solve");
        }
    }
    let snapshot = fleet.shutdown();
    assert_eq!(snapshot.service.completed as usize, instances.len());
    RoutingArm {
        label,
        hit_rate: snapshot.service.cache.map_or(0.0, |c| c.hit_rate()),
        p99: snapshot.service.end_to_end.p99,
        snapshot,
    }
}

struct DrainRun {
    accepted: usize,
    solved: usize,
    recovery: Duration,
    snapshot: FleetSnapshot,
}

/// Drains a shard in the middle of a live stream: half the requests are
/// submitted (unwaited — queues stay hot), the drain lands, the rest of the
/// stream keeps flowing, then every ticket is awaited.
fn drain_under_load(scale: &Scale) -> DrainRun {
    let fleet = fleet(scale, RoutingPolicy::FingerprintAffinity);
    let instances: Vec<TspInstance> = zipf_instances(scale, None)
        .into_iter()
        .take(scale.drain_requests)
        .collect();
    let midpoint = instances.len() / 2;
    let mut tickets: Vec<Ticket> = Vec::with_capacity(instances.len());
    for instance in &instances[..midpoint] {
        tickets.push(
            fleet
                .submit(DispatchRequest::new(instance.clone()))
                .expect("admitted"),
        );
    }
    let drained_at = Instant::now();
    fleet.drain(ShardId::new(0));
    for instance in &instances[midpoint..] {
        tickets.push(
            fleet
                .submit(DispatchRequest::new(instance.clone()))
                .expect("admitted"),
        );
    }
    let accepted = tickets.len();
    let solved = tickets
        .into_iter()
        .filter_map(|ticket| ticket.wait().solved())
        .count();
    // Auto-restart returns the drained shard to rotation; time it.
    let deadline = Instant::now() + Duration::from_secs(30);
    let recovery = loop {
        fleet.reconcile_now();
        let snapshot = fleet.snapshot();
        let shard = &snapshot.shards[0];
        if shard.state == ShardState::Serving && shard.generation >= 2 {
            break drained_at.elapsed();
        }
        assert!(
            Instant::now() < deadline,
            "drained shard never recovered:\n{snapshot}"
        );
    };
    DrainRun {
        accepted,
        solved,
        recovery,
        snapshot: fleet.shutdown(),
    }
}

fn main() {
    let scale = Scale::detect();
    println!(
        "fleet load harness ({} scale: {} shards x {} workers, {} routes, cache {} entries/shard)",
        if scale.smoke { "smoke" } else { "full" },
        scale.shards,
        scale.workers_per_shard,
        scale.routes,
        scale.cache_entries(),
    );

    // Affinity vs. scatter on the identical Zipf stream, plus a hotspot-shift
    // arm under affinity (ownership is geometric, so the shift costs nothing
    // beyond the cold misses the new head routes were always going to pay).
    let zipf = zipf_instances(&scale, None);
    let shifted = zipf_instances(&scale, Some(3));
    let arms = [
        routing_arm(
            &scale,
            RoutingPolicy::FingerprintAffinity,
            "affinity",
            &zipf,
        ),
        routing_arm(&scale, RoutingPolicy::Scatter, "scatter", &zipf),
        routing_arm(
            &scale,
            RoutingPolicy::FingerprintAffinity,
            "affinity-hotspot-shift",
            &shifted,
        ),
    ];
    for arm in &arms {
        println!(
            "  {:<24} hit rate {:5.1}%  p99 {:?}  ({})",
            arm.label,
            arm.hit_rate * 100.0,
            arm.p99,
            arm.snapshot.one_line(),
        );
    }
    let affinity = &arms[0];
    let scatter = &arms[1];
    assert!(
        affinity.hit_rate > scatter.hit_rate,
        "acceptance: affinity hit rate ({:.3}) must beat scatter ({:.3})",
        affinity.hit_rate,
        scatter.hit_rate,
    );

    // Drain under load: zero lost tickets, shard recovers.
    let drain = drain_under_load(&scale);
    println!(
        "  drain-under-load: {}/{} solved, {} resubmitted, recovery {:?}",
        drain.solved, drain.accepted, drain.snapshot.resubmitted, drain.recovery,
    );
    assert_eq!(
        drain.solved, drain.accepted,
        "acceptance: every accepted ticket must resolve with a solution"
    );
    assert_eq!(drain.snapshot.service.failed, 0, "no ticket may fail");
    assert_eq!(drain.snapshot.orphaned, 0, "no pending left orphaned");

    let routing_json = |arm: &RoutingArm| {
        JsonObject::new()
            .str("arm", arm.label)
            .uint("requests", arm.snapshot.service.completed)
            .uint("cache_hits", arm.snapshot.service.cache_hits)
            .num("fleet_cache_hit_rate", arm.hit_rate, 4)
            .num("p99_end_to_end_ms", arm.p99.as_secs_f64() * 1e3, 3)
            .num(
                "solve_avoidance",
                arm.snapshot.service.solve_avoidance_rate(),
                4,
            )
            .raw("aggregate", &arm.snapshot.service.to_json())
    };
    let artifact = JsonObject::new()
        .str("bench", "fleet")
        .bool("smoke", scale.smoke)
        .uint("shards", scale.shards as u64)
        .uint("workers_per_shard", scale.workers_per_shard as u64)
        .uint("routes", scale.routes as u64)
        .uint("cache_entries_per_shard", scale.cache_entries() as u64)
        .object(
            "affinity_vs_scatter",
            JsonObject::new()
                .array(
                    "arms",
                    JsonArray::from_objects(arms.iter().map(routing_json)),
                )
                .bool(
                    "affinity_beats_scatter",
                    affinity.hit_rate > scatter.hit_rate,
                )
                .num(
                    "hit_rate_uplift",
                    affinity.hit_rate / scatter.hit_rate.max(1e-9),
                    3,
                ),
        )
        .object(
            "drain_under_load",
            JsonObject::new()
                .uint("accepted", drain.accepted as u64)
                .uint("solved", drain.solved as u64)
                .uint("lost", (drain.accepted - drain.solved) as u64)
                .uint("resubmitted", drain.snapshot.resubmitted)
                .uint("failed", drain.snapshot.service.failed)
                .num("recovery_secs", drain.recovery.as_secs_f64(), 3)
                .uint(
                    "drained_shard_generation",
                    drain.snapshot.shards[0].generation,
                ),
        );
    let path = taxi_bench::artifact_path("BENCH_fleet.json");
    std::fs::write(&path, artifact.render()).expect("write BENCH_fleet.json");
    println!("wrote {}", path.display());
}
