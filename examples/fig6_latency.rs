//! Regenerates the latency/energy figures of the paper (Fig. 6a and 6b).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fig6_latency                 # both figures, quick scale
//! cargo run --release --example fig6_latency -- --figure 6b  # one figure only
//! TAXI_FULL_SCALE=1 cargo run --release --example fig6_latency   # the full 20-instance suite
//! ```

use taxi::experiments::fig6::{run_fig6a, run_fig6b};
use taxi::{ExperimentScale, TaxiError};

fn main() -> Result<(), TaxiError> {
    let figure = std::env::args()
        .skip_while(|a| a != "--figure")
        .nth(1)
        .unwrap_or_else(|| "all".to_string());
    let scale = ExperimentScale::from_env();
    println!(
        "running Fig 6 experiments at {} scale (set TAXI_FULL_SCALE=1 for the full suite)\n",
        if scale == ExperimentScale::full() {
            "full"
        } else {
            "quick"
        }
    );

    if figure == "6a" || figure == "all" {
        let report = run_fig6a(scale, &[12, 14, 16, 18, 20])?;
        println!("{report}");
    }
    if figure == "6b" || figure == "all" {
        let report = run_fig6b(scale)?;
        println!("{report}");
        println!(
            "geometric-mean speed-up over the Neuro-Ising comparison model: {:.1}x (paper: 8x)",
            report.mean_speedup_over_neuro_ising()
        );
    }
    Ok(())
}
